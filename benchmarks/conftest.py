"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure via
:mod:`repro.experiments`, prints the rows/series the paper reports,
persists the payload under ``results/``, and asserts the paper's
qualitative claims (orderings, crossovers, stability regions).  Absolute
values are not expected to match — the substrate is a synthetic-data CPU
simulation (see DESIGN.md) — but the *shape* of every result is checked.

Every test collected from this directory is auto-marked ``bench`` so the
tier-1 suite (which deselects ``-m "not bench"`` via ``pytest.ini``)
never runs them.  Run with ``pytest -m bench`` (or ``pytest -m bench
benchmarks/bench_schedule_comparison.py`` for one file); set
``REPRO_SCALE=paper`` for full-size runs.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.utils import ResultStore, format_table

warnings.filterwarnings("ignore", category=RuntimeWarning)

_STORE = ResultStore()

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench`` (tier-1 deselects)."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - defensive
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def store() -> ResultStore:
    return _STORE


def run_and_save(benchmark, exp_id: str) -> dict:
    """Run an experiment exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id), rounds=1, iterations=1
    )
    _STORE.save(exp_id, result)
    return result


def print_rows(exp_id: str, result: dict) -> None:
    if "rows" in result:
        print()
        print(format_table(result["rows"], title=f"[{exp_id}] regenerated"))
    if "meta" in result and "paper" in result["meta"]:
        print(f"[{exp_id}] paper: {result['meta']['paper']}")
