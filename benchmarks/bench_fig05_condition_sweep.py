"""Figure 5 — min half-life vs condition number (delay 1)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig05")
def test_fig05_condition_sweep(benchmark):
    result = run_and_save(benchmark, "fig05")
    kappas = np.asarray(result["kappa"])
    series = {k: np.asarray(v) for k, v in result["series"].items()}
    print()
    print(format_series(kappas, series, x_name="kappa", floatfmt="{:.3g}"))

    hi = -1  # largest condition number
    gdm = series["GDM D=1"]
    # every mitigation improves on delayed GDM at high kappa
    assert series["SC_D D=1"][hi] < gdm[hi]
    assert series["LWP_D D=1"][hi] < gdm[hi]
    # the combination performs best (paper caption)
    combo = series["LWPw_D+SC_D D=1"]
    assert combo[hi] <= series["SC_D D=1"][hi]
    assert combo[hi] <= series["LWP_D D=1"][hi]
    # half-life grows monotonically-ish with kappa for every method
    for name, vals in series.items():
        finite = np.isfinite(vals)
        assert vals[finite][-1] >= vals[finite][0], name
    # the no-delay baseline lower-bounds the delayed ones
    assert series["GDM D=0"][hi] <= gdm[hi]
