"""Table 1/5 — CIFAR suite: SGDM vs PB vs PB+LWPv_D+SC_D, all networks."""

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="table1")
def test_table1_cifar_suite(benchmark):
    result = run_and_save(benchmark, "table1")
    print_rows("table1", result)

    rows = {r["net"]: r for r in result["rows"]}
    # the paper's stage counts are reproduced exactly
    from repro.models import PAPER_STAGE_COUNTS

    for net, row in rows.items():
        assert row["stages"] == PAPER_STAGE_COUNTS[net]

    # every SGDM reference trains above chance; mitigated PB does too on
    # the ResNets (plain PB collapsing on the deepest pipelines at bench
    # scale is the paper's depth-degradation finding, exaggerated — see
    # EXPERIMENTS.md)
    for net, row in rows.items():
        assert row["SGDM"] > 0.15, (net, row["SGDM"])
        if net.startswith("rn"):
            assert row["PB+LWPv_D+SC_D"] > 0.1, (net, row)

    # paper shape 1: PB's degradation vs SGDM grows with pipeline depth.
    # The paper's trend is within the ResNet family (VGG gaps stay small
    # at paper scale but its architecture differs too much for a cross-
    # family depth comparison at bench scale).
    rn_rows = sorted(
        (r for r in rows.values() if r["net"].startswith("rn")),
        key=lambda r: r["stages"],
    )
    assert len(rn_rows) >= 2
    gap_shallow = rn_rows[0]["SGDM"] - rn_rows[0]["PB"]
    gap_deep = rn_rows[-1]["SGDM"] - rn_rows[-1]["PB"]
    assert gap_deep >= gap_shallow - 0.05

    # paper shape 2: the combined mitigation recovers accuracy — on
    # average over the suite it beats plain PB
    mean_pb = np.mean([r["PB"] for r in rows.values()])
    mean_combo = np.mean([r["PB+LWPv_D+SC_D"] for r in rows.values()])
    assert mean_combo > mean_pb

    # paper shape 3: mitigation closes most of the SGDM gap on average
    mean_sgdm = np.mean([r["SGDM"] for r in rows.values()])
    assert (mean_sgdm - mean_combo) < (mean_sgdm - mean_pb)
