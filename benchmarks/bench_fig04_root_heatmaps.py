"""Figure 4 — dominant-root heatmaps over (eta*lambda, momentum)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils import ascii_heatmap


@pytest.mark.benchmark(group="fig04")
def test_fig04_root_heatmaps(benchmark):
    result = run_and_save(benchmark, "fig04")
    panels = {k: np.asarray(v) for k, v in result["panels"].items()}
    areas = result["stable_areas"]

    print()
    for name in ("GDM D=1", "SC_D D=1"):
        grid = panels[name].copy()
        grid[grid >= 1.0] = np.nan  # paper blacks out the unstable region
        print(
            ascii_heatmap(
                grid[::6],
                title=f"[fig04] |r_max| {name} (rows: momentum hi->lo)",
                vmin=0.0,
                vmax=1.0,
            )
        )
    print(f"[fig04] stable areas: {areas}")

    # delay shrinks the stable region (GDM D=1 vs D=0)
    assert areas["GDM D=1"] < areas["GDM D=0"]
    # SC_D strictly increases the region of stability over delayed GDM
    gdm_stable = panels["GDM D=1"] < 1.0
    sc_stable = panels["SC_D D=1"] < 1.0
    assert np.all(sc_stable | ~gdm_stable)  # superset
    assert areas["SC_D D=1"] > areas["GDM D=1"]
    # the combination's stability pattern resembles no-delay Nesterov far
    # more than delayed GDM does (paper: 'resemble the ones for the
    # no-delay Nesterov baseline')
    nesterov = panels["Nesterov D=0"] < 1.0
    combo = panels["LWPw_D+SC_D D=1"] < 1.0
    gdm = panels["GDM D=1"] < 1.0
    agree_combo = (combo == nesterov).mean()
    agree_gdm = (gdm == nesterov).mean()
    assert agree_combo > agree_gdm
    # at high momentum, mitigation methods admit larger learning rates
    high_m = slice(-12, None)  # rows with momentum closest to 1
    assert sc_stable[high_m].sum() > gdm_stable[high_m].sum()
