"""Schedule comparison — PB vs fill-drain vs GPipe vs 1F1B.

Regenerates the ``schedule_comparison`` extension experiment (steps-to-
loss and utilization per schedule through the unified engine), measures
the vectorized micro-batch hot path against the per-sample loop on the
Figure-2 utilization workload, and persists both as
``results/BENCH_schedules.json``.

Runs only under ``pytest -m bench`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


def _time_executor(mode: str, n: int, repeats: int = 3, **kw) -> float:
    """Best-of-``repeats`` seconds to stream ``n`` samples through a
    fresh small CNN (min over repeats suppresses scheduler noise)."""
    from repro.models.simple import small_cnn
    from repro.pipeline.executor import PipelineExecutor

    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 10, size=n)
    best = float("inf")
    for _ in range(repeats):
        model = small_cnn(num_classes=10, widths=(8, 16), seed=3)
        ex = PipelineExecutor(model, lr=0.01, momentum=0.9, mode=mode, **kw)
        t0 = time.perf_counter()
        ex.train(X, Y)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="schedules")
def test_schedule_comparison(benchmark, store):
    result = run_and_save(benchmark, "schedule_comparison")
    print_rows("schedule_comparison", result)

    rows = {r["schedule"]: r for r in result["rows"]}
    assert set(rows) == {"pb", "fill_drain", "gpipe", "1f1b"}
    # PB and 1F1B share the continuous-injection timing: near-full
    # utilization, strictly above synchronous fill/drain (eq. 1)
    assert rows["pb"]["utilization"] > rows["fill_drain"]["utilization"]
    assert rows["1f1b"]["utilization"] == pytest.approx(
        rows["pb"]["utilization"]
    )
    # micro-batching finishes the same stream in fewer pipeline steps
    assert rows["gpipe"]["time_steps"] < rows["fill_drain"]["time_steps"]
    # steps-to-loss: PB reaches the shared target in fewer pipeline steps
    # than synchronous fill/drain (the paper's §2 efficiency argument)
    if rows["pb"]["steps_to_loss"] and rows["fill_drain"]["steps_to_loss"]:
        assert rows["pb"]["steps_to_loss"] < rows["fill_drain"]["steps_to_loss"]

    # -- vectorized hot path: (B, ...) packets vs the per-sample loop ----
    n, N, B = 256, 32, 32
    _time_executor("fill_drain", 32, repeats=1, update_size=N)  # warm caches
    per_sample = _time_executor("fill_drain", n, update_size=N)
    vectorized = _time_executor(
        "gpipe", n, update_size=N, micro_batch_size=B
    )
    speedup = per_sample / vectorized
    print(
        f"\n[schedules] per-sample {per_sample * 1e3:.1f} ms vs "
        f"micro-batch({B}) {vectorized * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"vectorized micro-batch path only {speedup:.2f}x faster than the "
        "per-sample loop (acceptance floor is 3x)"
    )

    store.save(
        "BENCH_schedules",
        {
            "rows": result["rows"],
            "target_loss": result["target_loss"],
            "samples": result["samples"],
            "vectorization": {
                "samples": n,
                "update_size": N,
                "micro_batch": B,
                "per_sample_seconds": per_sample,
                "vectorized_seconds": vectorized,
                "speedup": speedup,
            },
            "meta": result["meta"],
        },
    )
