"""Serving benchmark — pipelined inference vs sequential forward.

Closed-loop load generation (``concurrency`` clients, each with one
request in flight) against the same frozen weights served two ways:

* **sequential** — one request at a time through ``model.forward``
  behind a lock: serving without a pipeline;
* **pipelined** — :class:`repro.serve.PipelineServer`: dynamic
  micro-batching (max-batch cap x coalescing deadline) feeding a
  persistent forward-only pipeline stream on each runtime backend.

The sweep covers offered load (closed-loop concurrency) x batcher
deadline x runtime backend, and the headline assertion is the
acceptance bar of the serving subsystem: **the best pipelined
configuration sustains >= 1.5x the sequential throughput at
equal-or-better p99** on a multi-stage model.  Response correctness is
checked on every run: the closed-loop harness already fails loudly on
any dropped or duplicated response, and every returned logits row must
match the offline full-batch forward (allclose + identical argmax —
bit-level parity against the per-packet offline reference is pinned in
``tests/test_serve_session.py``, since dynamic batch composition varies
with timing while BLAS rounding varies with GEMM width).

Persists ``results/BENCH_serving.json``.  Set ``REPRO_BENCH_SMOKE=1``
for a minutes-scale CI variant (fewer requests, smaller sweep) that
still exercises the sequential baseline and both a thread- and a
process-backed server.  Runs only under ``pytest -m bench``.
"""

from __future__ import annotations

import os
from functools import partial

import pytest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _build_trained_model():
    """A 5-stage CNN with briefly trained (non-noise) weights."""
    from repro.data.synthetic import SyntheticCifar
    from repro.pipeline.runtime import make_pipeline_engine

    factory = partial(_serving_model, seed=11)
    model = factory()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=128, val_size=96)
    engine = make_pipeline_engine("sim", model, lr=0.02, momentum=0.9,
                                  mode="pb")
    engine.train(ds.x_train[:96], ds.y_train[:96])
    return model, factory, ds.x_val


def _serving_model(seed: int = 11):
    from repro.models.simple import small_cnn

    return small_cnn(num_classes=10, widths=(16, 32), seed=seed)


def _sequential_run(model, x_pool, num_requests, concurrency):
    from repro.serve.loadgen import sequential_closed_loop

    return sequential_closed_loop(
        model, x_pool, num_requests, concurrency=concurrency,
        label=f"sequential/c{concurrency}",
    )


def _pipelined_run(
    model, factory, x_pool, num_requests, backend, deadline_ms,
    concurrency, max_batch,
):
    from repro.serve import InferenceSession
    from repro.serve.loadgen import pipelined_closed_loop

    session = InferenceSession(
        model,
        runtime=backend,
        micro_batch=max_batch,
        sample_shape=x_pool.shape[1:],
        model_factory=factory,
    )
    return pipelined_closed_loop(
        session, x_pool, num_requests, concurrency=concurrency,
        max_batch=max_batch, max_wait=deadline_ms / 1e3,
        label=f"{backend}/d{deadline_ms}ms/c{concurrency}",
    )


def _check_outputs(result, ref_full, x_pool_size):
    """Every response allclose + argmax-identical to the offline
    full-batch forward (zero tolerance on predictions)."""
    from repro.serve.loadgen import count_bad_outputs

    return count_bad_outputs(result.outputs, ref_full, x_pool_size)


@pytest.mark.benchmark(group="serving")
def test_serving_benchmark(benchmark, store):
    from repro.serve import InferenceSession

    model, factory, x_pool = _build_trained_model()
    session_ref = InferenceSession(
        model, runtime="sim", micro_batch=x_pool.shape[0],
        sample_shape=x_pool.shape[1:],
    )
    ref_full = session_ref.forward_reference(
        x_pool, micro_batch=x_pool.shape[0]
    )

    num_requests = 150 if SMOKE else 600
    max_batch = 8
    backends = ["threaded", "process"] if SMOKE else [
        "sim", "threaded", "process"
    ]
    deadlines_ms = [2.0] if SMOKE else [0.5, 2.0]
    concurrencies = [8] if SMOKE else [4, 16]

    def _run_all():
        rows = []
        seq_by_c = {}
        for concurrency in concurrencies:
            seq = _sequential_run(model, x_pool, num_requests, concurrency)
            seq_by_c[concurrency] = seq
            row = seq.as_row()
            row.update(backend="sequential", deadline_ms=None,
                       speedup=1.0, p99_ratio=1.0, mean_batch=1.0,
                       bad_outputs=_check_outputs(
                           seq, ref_full, x_pool.shape[0]))
            rows.append(row)
        for backend in backends:
            for deadline_ms in deadlines_ms:
                for concurrency in concurrencies:
                    result, snapshot = _pipelined_run(
                        model, factory, x_pool, num_requests, backend,
                        deadline_ms, concurrency, max_batch,
                    )
                    seq = seq_by_c[concurrency]
                    row = result.as_row()
                    row.update(
                        backend=backend,
                        deadline_ms=deadline_ms,
                        speedup=result.throughput_rps / seq.throughput_rps,
                        p99_ratio=result.latency_p99 / seq.latency_p99,
                        mean_batch=snapshot["mean_batch_size"],
                        bad_outputs=_check_outputs(
                            result, ref_full, x_pool.shape[0]
                        ),
                    )
                    rows.append(row)
        return rows

    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    for row in rows:
        print(
            f"[serving] {row['label']:>24s}: "
            f"{row['throughput_rps']:8.1f} rps, "
            f"p99 {row['p99_ms']:7.2f} ms, speedup {row['speedup']:.2f}x, "
            f"p99 ratio {row['p99_ratio']:.2f}"
        )

    # response correctness: nothing dropped (run_closed_loop enforces),
    # nothing wrong
    assert all(r["bad_outputs"] == 0 for r in rows), (
        f"wrong responses: {[(r['label'], r['bad_outputs']) for r in rows]}"
    )
    pipelined = [r for r in rows if r["backend"] != "sequential"]
    # the acceptance bar: some pipelined configuration reaches >= 1.5x
    # sequential throughput at equal-or-better p99.  Smoke mode (CI
    # containers with noisy neighbors) asserts the softer "pipelining
    # must not lose" floor; the recorded JSON carries the honest
    # numbers either way.
    winners = [
        r for r in pipelined
        if r["speedup"] >= 1.5 and r["p99_ratio"] <= 1.0
    ]
    best = max(pipelined, key=lambda r: r["speedup"])
    if SMOKE:
        assert best["speedup"] >= 1.0, (
            f"pipelined serving slower than sequential everywhere "
            f"(best {best['label']} at {best['speedup']:.2f}x)"
        )
    else:
        assert winners, (
            "no pipelined configuration reached 1.5x sequential "
            "throughput at equal-or-better p99; best was "
            f"{best['label']} at {best['speedup']:.2f}x / "
            f"p99 ratio {best['p99_ratio']:.2f}"
        )

    store.save(
        "BENCH_serving",
        {
            "rows": rows,
            "num_requests": num_requests,
            "max_batch": max_batch,
            "cpu_count": os.cpu_count() or 1,
            "smoke": SMOKE,
            "acceptance": {
                "target_speedup": 1.5,
                "winners": [r["label"] for r in winners],
                "best": best["label"],
                "best_speedup": best["speedup"],
                "best_p99_ratio": best["p99_ratio"],
            },
            "meta": {
                "paper": "Serving extension of the paper's utilization "
                "argument: a forward-only pipeline with dynamic "
                "micro-batching beats sequential single-request "
                "forward on throughput at bounded p99 — small packets, "
                "busy stages, no large batches.",
            },
        },
    )
