"""Collect every ``results/BENCH_*.json`` into one summary table.

Each benchmark persists its payload under ``results/`` via
:class:`repro.utils.ResultStore`; this script is the roll-up: one row
per ``BENCH_*`` file with its timestamp, smoke flag, row count and a
benchmark-specific headline metric, rendered with the same
:func:`repro.utils.format_table` the benches print with.  CI's
bench-smoke job runs it after the smoke benches so the job log ends
with the whole suite's numbers in one place.

Usage::

    PYTHONPATH=src python benchmarks/collect.py [results_dir]

Exits non-zero if the results directory holds no ``BENCH_*`` files
(a smoke job that produced nothing is a broken job).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any


def _fmt(v: float, spec: str = "{:.2f}") -> str:
    return spec.format(v)


def _headline(name: str, p: dict[str, Any]) -> str:
    """One human line per known benchmark; generic fallback otherwise."""
    try:
        if name == "BENCH_precision":
            ratios = p["float32_ratio_by_runtime"]
            best = min(ratios, key=ratios.get)
            return (
                f"float32 {_fmt(ratios[best])}x float64 ({best}); "
                f"ring bytes {_fmt(p['ring_bytes']['ratio'])}x"
            )
        if name == "BENCH_runtime":
            cases = p["speedup_cases"]
            best = max(cases, key=lambda c: c["speedup"])
            line = f"free {_fmt(best['speedup'])}x lockstep ({best['case']})"
            control = best.get("control")
            if control:
                line += (
                    f"; control {_fmt(control['msgs_per_step'])} vs "
                    f"{control['baseline_msgs_per_step']} msgs/step"
                )
            return line
        if name == "BENCH_optim":
            rows = [r for r in p["rows"] if "alloc_kb_naive" in r]
            if rows:
                r = rows[0]
                return (
                    f"in-place {_fmt(r['alloc_kb_inplace'])} KiB/step vs "
                    f"naive {_fmt(r['alloc_kb_naive'])}"
                )
        if name == "BENCH_replicas":
            pts = p.get("scaling") or []
            if pts:
                last = pts[-1]
                return (
                    f"{last.get('replicas', '?')} replicas: "
                    f"{_fmt(float(last.get('speedup_vs_1', 0)))}x vs 1"
                )
        if name == "BENCH_partition":
            acc = p.get("acceptance")
            if acc is not None:
                return f"acceptance: {acc}"
        if name == "BENCH_serving":
            rows = p.get("rows") or []
            if rows:
                r = rows[-1]
                for key in ("p99_ms", "p95_ms", "latency_p99_ms"):
                    if key in r:
                        return f"{r.get('case', 'slo')}: {key} {_fmt(float(r[key]))}"
        if name == "BENCH_fleet":
            acc = p["acceptance"]
            return (
                f"fleet sustains c={acc['fleet_max_sustained']} vs "
                f"single c={acc['single_max_sustained']} "
                f"(interactive p99 <= "
                f"{_fmt(float(p['interactive_deadline_ms']), '{:.0f}')} ms, "
                f"across rolling hot-swap, "
                f"{acc['dropped']} dropped / {acc['duplicates']} dup)"
            )
    except (KeyError, TypeError, ValueError, IndexError):
        pass  # fall through to the generic summary
    for key in ("rows", "comparison_rows", "parity_rows", "scaling"):
        if isinstance(p.get(key), list):
            return f"{len(p[key])} {key}"
    return ", ".join(sorted(p.keys())[:4])


def collect(results_dir: str | Path = "results") -> list[dict[str, Any]]:
    """One summary row per ``BENCH_*.json`` under ``results_dir``."""
    rows = []
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append({
                "benchmark": path.stem, "written_at": "-", "smoke": "-",
                "headline": f"unreadable: {exc}",
            })
            continue
        payload = record.get("payload", {})
        rows.append({
            "benchmark": path.stem,
            "written_at": record.get("written_at", "-"),
            "smoke": payload.get("smoke", "-"),
            "headline": _headline(path.stem, payload),
        })
    return rows


def main(argv: list[str]) -> int:
    results_dir = Path(argv[1]) if len(argv) > 1 else Path("results")
    rows = collect(results_dir)
    if not rows:
        print(f"no BENCH_*.json under {results_dir}/", file=sys.stderr)
        return 1
    try:
        from repro.utils import format_table

        print(format_table(rows, title=f"[collect] {results_dir}/BENCH_*"))
    except ImportError:  # pragma: no cover - PYTHONPATH=src not set
        for r in rows:
            print(r)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
