"""Appendix A — memory and communication: batch vs pipeline parallelism."""

import pytest

from benchmarks.conftest import store  # noqa: F401  (fixture)
from repro.models import resnet20, resnet_tiny
from repro.pipeline import (
    batch_parallel_activation_elements,
    data_parallel_comm_per_update,
    pipeline_comm_per_step,
    pipeline_cost_model,
)
from repro.utils import ResultStore, format_table


@pytest.mark.benchmark(group="appendix_a")
def test_appendix_a_costs(benchmark):
    def compute():
        model = resnet20()
        shape = (3, 32, 32)
        cm = pipeline_cost_model(model, shape)
        comm = pipeline_comm_per_step(model, shape)
        return {
            "stage_rows": [
                {
                    "stage": sc.index,
                    "name": sc.name,
                    "in_flight": sc.max_in_flight,
                    "stash_elems": sc.stash_elements,
                }
                for sc in cm.stage_costs[:4] + cm.stage_costs[-4:]
            ],
            "pipeline_total_stash": cm.total_stash_elements,
            "pipeline_peak_stage_stash": cm.peak_stage_stash,
            "batch_parallel_per_worker": batch_parallel_activation_elements(
                model, shape, per_worker_batch=1
            ),
            "dp_comm_per_update": data_parallel_comm_per_update(model),
            "pipe_comm_per_step_max": max(comm),
            "num_stages": model.num_stages,
            "params": model.num_parameters(),
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    ResultStore().save("appendix_a", result)
    print()
    print(format_table(result["stage_rows"],
                       title="[appendix A] RN20 per-stage stash (ends)"))
    print(f"[appendix A] pipeline total stash: "
          f"{result['pipeline_total_stash']:,} elements; "
          f"one batch-parallel worker: "
          f"{result['batch_parallel_per_worker']:,} elements")
    print(f"[appendix A] comm: data-parallel {result['dp_comm_per_update']:,} "
          f"elements/update vs pipeline <= "
          f"{result['pipe_comm_per_step_max']:,} elements/step/worker")

    # per-worker memory is very uneven in the pipeline: early stages hold
    # the most (first worker stores for ~2W steps)
    rows = result["stage_rows"]
    assert rows[0]["in_flight"] > rows[-2]["in_flight"]
    # total activation memory is the same order as W batch-parallel
    # workers (Appendix A: 'comes out to be approximately the same')
    total_bp = result["num_stages"] * result["batch_parallel_per_worker"]
    ratio = result["pipeline_total_stash"] / total_bp
    assert 0.02 < ratio < 50.0
    # a pipeline worker's per-step traffic is far below a full-gradient
    # exchange for this conv net
    assert result["pipe_comm_per_step_max"] < result["dp_comm_per_update"]
