"""Figure 8 — CIFAR ResNet20 trained with true fine-grained PB."""

import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="fig08")
def test_fig08_cifar_resnet20(benchmark):
    result = run_and_save(benchmark, "fig08")
    print_rows("fig08", result)
    accs = {r["method"]: r["val_acc"] for r in result["rows"]}
    chance = 0.1

    # everything trains above chance
    for method, acc in accs.items():
        assert acc > chance, f"{method} failed to train ({acc:.3f})"
    # plain PB degrades relative to the SGDM reference (34-stage pipeline,
    # max delay 66 samples)
    assert accs["PB"] < accs["SGDM"]
    # the combined mitigation improves over plain PB...
    combo = accs["PB+LWPv_D+SC_D"]
    assert combo > accs["PB"]
    # ...and the best mitigation closes most of the PB gap (paper:
    # mitigation matches/exceeds SGDM; at micro scale the per-method
    # ranking among LWP/SC/combo is noise, the recovery is not)
    best_mit = max(combo, accs["PB+LWP_D"], accs["PB+SC_D"])
    gap_pb = accs["SGDM"] - accs["PB"]
    gap_best = accs["SGDM"] - best_mit
    assert gap_best < gap_pb * 0.6
