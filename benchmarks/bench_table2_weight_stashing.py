"""Table 2 — weight stashing does not help fine-grained PB."""

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="table2")
def test_table2_weight_stashing(benchmark):
    result = run_and_save(benchmark, "table2")
    print_rows("table2", result)

    for row in result["rows"]:
        # PB and PB+WS land close together: stashing neither rescues nor
        # destroys training at these delays (paper: differences within
        # run-to-run noise; where deep-pipeline PB collapses, stashing
        # does not save it — weight inconsistency is not the problem)
        assert abs(row["PB"] - row["PB+WS"]) < 0.1, row

    # across the suite, stashing gives no systematic improvement
    mean_pb = np.mean([r["PB"] for r in result["rows"]])
    mean_ws = np.mean([r["PB+WS"] for r in result["rows"]])
    assert mean_ws < mean_pb + 0.1
