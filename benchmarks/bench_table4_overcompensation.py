"""Table 4 — overcompensation (LWP_2D / SC_2D) vs the defaults."""

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="table4")
def test_table4_overcompensation(benchmark):
    result = run_and_save(benchmark, "table4")
    print_rows("table4", result)

    rows = {r["net"]: r for r in result["rows"]}
    methods = ["PB", "PB+LWP_D", "PB+LWP_2D", "PB+SC_D", "PB+SC_2D"]

    shallow = min(rows.values(), key=lambda r: 0 if r["net"] != "rn110" else 1)
    # on shallower nets all mitigation variants stay in a sane band around
    # plain PB (no collapse)
    for m in methods:
        assert shallow[m] > 0.1, (shallow["net"], m)

    # averaged over the shallower nets, overcompensation is at least
    # competitive with the defaults (paper: 2D helps most nets)
    non_deep = [r for r in result["rows"] if r["net"] != "rn110"]
    if non_deep:
        mean_1d = np.mean([r["PB+LWP_D"] for r in non_deep]
                          + [r["PB+SC_D"] for r in non_deep])
        mean_2d = np.mean([r["PB+LWP_2D"] for r in non_deep]
                          + [r["PB+SC_2D"] for r in non_deep])
        assert mean_2d > mean_1d - 0.1

    # the deepest pipeline is where overcompensation is risky (paper:
    # RN110+LWP_2D was unstable); we only require it not to be *better*
    # than the default beyond noise
    if "rn110" in rows:
        r = rows["rn110"]
        assert r["PB+LWP_2D"] <= r["PB+LWP_D"] + 0.15
