"""Figure 6 — min half-life vs delay (kappa = 1e3)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig06")
def test_fig06_delay_sweep(benchmark):
    result = run_and_save(benchmark, "fig06")
    delays = np.asarray(result["delay"])
    series = {k: np.asarray(v) for k, v in result["series"].items()}
    print()
    print(format_series(delays, series, x_name="delay", floatfmt="{:.4g}"))

    gdm = series["GDM"]
    combo = series["LWPw_D+SC_D"]
    lwp = series["LWP_D"]
    # at zero delay everything coincides with plain GDM
    assert combo[0] == pytest.approx(gdm[0], rel=0.05)
    # delay hurts GDM
    assert gdm[-1] > gdm[0]
    # mitigations beat GDM at every positive delay; combination is best
    for i in range(1, len(delays)):
        assert lwp[i] <= gdm[i] * 1.01
        assert combo[i] <= lwp[i] * 1.01
    # the onset of delay hits GDM far harder than the combination
    # (paper: the combo curve is nearly flat next to GDM's)
    assert gdm[1] / gdm[0] > 3.0 * (combo[1] / combo[0])
    assert gdm[-1] > 3 * combo[-1]
