"""In-place SGDM step — the allocation win, measured.

The optimizer satellite of the process-runtime PR rewrote ``SGDM.step``
onto ``np.multiply/add/subtract(..., out=...)`` with cached scratch
buffers: velocity update, weight-decay fold and weight update all run
without allocating.  This bench pins both halves of the claim:

* **bit-exactness** — the in-place step walks the same trajectory as a
  naive out-of-place reference implementation, to the bit, for the full
  (momentum, weight-decay, nesterov) grid;
* **allocation win** — tracemalloc sees (near-)zero steady-state
  allocation from the in-place step vs. one fresh array per parameter
  per step for the naive form, and wall-clock does not regress.

Persists ``results/BENCH_optim.json``.  Runs only under
``pytest -m bench``.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGDM


def _naive_step(params, velocity, lr, momentum, weight_decay, nesterov):
    """The pre-satellite out-of-place update (reference semantics)."""
    for p in params:
        if p.grad is None:
            continue
        g = p.grad
        if weight_decay:
            g = g + weight_decay * p.data
        v = velocity[id(p)]
        v *= momentum
        v += g
        update = momentum * v + g if nesterov else v
        p.data = p.data - lr * update


def _fresh(shapes, seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.normal(size=s)) for s in shapes]


def _steady_state_alloc_kb(step_fn, params, grads, steps=50) -> float:
    """Peak new allocation per step once caches are warm (KiB)."""
    for g_set in grads[:2]:  # warm scratch caches outside the window
        for p, g in zip(params, g_set):
            p.grad = g
        step_fn()
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for g_set in grads[2 : 2 + steps]:
        for p, g in zip(params, g_set):
            p.grad = g
        step_fn()
    snap = tracemalloc.take_snapshot()
    tracemalloc.stop()
    total = sum(
        s.size_diff for s in snap.compare_to(base, "filename")
        if s.size_diff > 0
    )
    return total / 1024.0 / steps


@pytest.mark.benchmark(group="optim")
def test_sgdm_inplace_step(benchmark, store):
    shapes = [(64, 64), (128,), (32, 3, 3, 3), (256, 64)]
    rng = np.random.default_rng(7)
    n_steps = 60
    grads = [
        [rng.normal(size=s) for s in shapes] for _ in range(n_steps)
    ]

    rows = []
    for momentum, wd, nesterov in [
        (0.9, 0.0, False),
        (0.9, 5e-4, False),
        (0.9, 5e-4, True),
        (0.0, 5e-4, False),
    ]:
        # -- bit-exactness against the naive reference ------------------
        params = _fresh(shapes)
        opt = SGDM(params, lr=0.05, momentum=momentum, weight_decay=wd,
                   nesterov=nesterov)
        ref_params = _fresh(shapes)
        ref_velocity = {id(p): np.zeros_like(p.data) for p in ref_params}
        for g_set in grads:
            for p, rp, g in zip(params, ref_params, g_set):
                p.grad = g.copy()
                rp.grad = g.copy()
            opt.step()
            _naive_step(ref_params, ref_velocity, 0.05, momentum, wd,
                        nesterov)
        for p, rp in zip(params, ref_params):
            assert np.array_equal(p.data, rp.data), (
                f"in-place step drifted (m={momentum}, wd={wd}, "
                f"nesterov={nesterov})"
            )

        # -- steady-state allocation ------------------------------------
        params = _fresh(shapes)
        opt = SGDM(params, lr=0.05, momentum=momentum, weight_decay=wd,
                   nesterov=nesterov)
        inplace_kb = _steady_state_alloc_kb(opt.step, params, grads)
        ref_params = _fresh(shapes)
        ref_velocity = {id(p): np.zeros_like(p.data) for p in ref_params}
        naive_kb = _steady_state_alloc_kb(
            lambda: _naive_step(ref_params, ref_velocity, 0.05, momentum,
                                wd, nesterov),
            ref_params, grads,
        )

        # -- wall-clock ---------------------------------------------------
        def timed(step_fn, ps):
            t0 = time.perf_counter()
            for g_set in grads:
                for p, g in zip(ps, g_set):
                    p.grad = g
                step_fn()
            return time.perf_counter() - t0

        params = _fresh(shapes)
        opt = SGDM(params, lr=0.05, momentum=momentum, weight_decay=wd,
                   nesterov=nesterov)
        opt.step()  # warm scratch
        inplace_s = timed(opt.step, params)
        ref_params = _fresh(shapes)
        ref_velocity = {id(p): np.zeros_like(p.data) for p in ref_params}
        naive_s = timed(
            lambda: _naive_step(ref_params, ref_velocity, 0.05, momentum,
                                wd, nesterov),
            ref_params,
        )
        rows.append(
            {
                "momentum": momentum,
                "weight_decay": wd,
                "nesterov": nesterov,
                "bit_exact": True,
                "naive_alloc_kib_per_step": round(naive_kb, 1),
                "inplace_alloc_kib_per_step": round(inplace_kb, 1),
                "naive_ms": round(naive_s / n_steps * 1e3, 4),
                "inplace_ms": round(inplace_s / n_steps * 1e3, 4),
                "speedup": round(naive_s / max(inplace_s, 1e-12), 3),
            }
        )
        print(
            f"[optim] m={momentum} wd={wd} nesterov={nesterov}: "
            f"alloc {naive_kb:.1f} -> {inplace_kb:.1f} KiB/step, "
            f"{naive_s/n_steps*1e3:.3f} -> {inplace_s/n_steps*1e3:.3f} "
            f"ms/step"
        )
        # the satellite's claim: the steady-state allocation collapses
        # (naive allocates one buffer per parameter per step)
        assert inplace_kb < naive_kb * 0.25, (
            f"in-place step still allocating {inplace_kb:.1f} KiB/step vs "
            f"{naive_kb:.1f} naive"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    store.save(
        "BENCH_optim",
        {
            "rows": rows,
            "meta": {
                "paper": "infrastructure satellite: PB updates every "
                "stage once per time step (update size one), so the "
                "optimizer step is on the per-packet hot path — it must "
                "not thrash the allocator.",
            },
        },
    )
