"""Concurrent runtime parallelism — free-running vs lockstep wall-clock.

Regenerates the ``runtime_comparison`` experiment (simulator vs threaded
lockstep vs threaded free-running per schedule, with the bit-exactness
check), then times the headline claim on two multi-stage models: with
per-stage worker threads and no barrier, the pipeline finishes the same
stream **faster** than the same workers forced into lockstep.  Persists
everything as ``results/BENCH_runtime.json``.

Honest-measurement note: on a single-CPU host (this container) threads
cannot overlap compute, so the free-running win is pure synchronization
savings — no per-step scatter/gather barrier, no waiting for the
slowest stage each step.  On multi-core hosts the gap additionally
includes real compute overlap wherever NumPy/BLAS release the GIL; the
JSON records ``cpu_count`` so readers can interpret the number.

Runs only under ``pytest -m bench`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


def _best_wall_seconds(
    build_model, n: int, shape: tuple, mode: str, lockstep: bool,
    repeats: int = 5, **kw,
) -> tuple[float, object]:
    """Best-of-``repeats`` wall seconds for a fresh model each round
    (min suppresses scheduler noise; each round re-trains from init so
    lockstep and free-running do identical numerical work)."""
    from repro.pipeline import ConcurrentPipelineRunner

    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, *shape))
    Y = rng.integers(0, 10, size=n)
    best, best_stats = float("inf"), None
    for _ in range(repeats):
        model = build_model()
        runner = ConcurrentPipelineRunner(
            model, lr=0.01, momentum=0.9, mode=mode, lockstep=lockstep, **kw
        )
        t0 = time.perf_counter()
        stats = runner.train(X, Y)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, best_stats = elapsed, stats
    return best, best_stats


def _speedup_case(name: str, build_model, n: int, shape: tuple, mode: str,
                  **kw) -> dict:
    lock_s, _ = _best_wall_seconds(
        build_model, n, shape, mode, lockstep=True, **kw
    )
    free_s, free_stats = _best_wall_seconds(
        build_model, n, shape, mode, lockstep=False, **kw
    )
    rt = free_stats.runtime
    return {
        "case": name,
        "num_stages": rt.num_stages,
        "schedule": mode,
        "samples": n,
        "lockstep_seconds": lock_s,
        "free_seconds": free_s,
        "speedup": lock_s / free_s,
        "mean_busy_fraction": rt.mean_busy_fraction,
        "per_stage_busy_fraction": [
            rt.busy_fraction(s) for s in range(rt.num_stages)
        ],
    }


@pytest.mark.benchmark(group="runtime")
def test_runtime_parallelism(benchmark, store):
    # -- parity + three-way engine comparison (the registry experiment) --
    result = run_and_save(benchmark, "runtime_comparison")
    print_rows("runtime_comparison", result)
    rows = {r["schedule"]: r for r in result["rows"]}
    assert set(rows) == {"pb", "fill_drain", "gpipe", "1f1b"}
    # the bit-exact contract: lockstep == simulator for every schedule
    assert all(r["parity"] for r in rows.values()), (
        "lockstep threaded runtime diverged from the simulator"
    )

    # -- free-running beats lockstep on multi-stage models ----------------
    from repro.models.simple import mlp, small_cnn

    cases = [
        # 7 stages, matmul-heavy: the widest free-vs-lockstep margin
        _speedup_case(
            "mlp7_gpipe",
            lambda: mlp(192, 10, hidden=(256, 256, 256, 256), seed=3),
            n=256, shape=(3, 8, 8), mode="gpipe",
            update_size=32, micro_batch_size=16,
        ),
        # 5 stages, continuous pb injection
        _speedup_case(
            "cnn5_pb",
            lambda: small_cnn(num_classes=10, widths=(32, 64), seed=3),
            n=96, shape=(3, 16, 16), mode="pb",
        ),
    ]
    for case in cases:
        print(
            f"\n[runtime] {case['case']} ({case['num_stages']} stages, "
            f"{case['schedule']}): lockstep {case['lockstep_seconds']*1e3:.0f} ms"
            f" vs free-running {case['free_seconds']*1e3:.0f} ms -> "
            f"{case['speedup']:.2f}x  (mean busy "
            f"{case['mean_busy_fraction']:.2f})"
        )
        assert case["num_stages"] >= 4
    # acceptance: free-running beats lockstep wall-clock on a >=4-stage
    # model.  The 7-stage matmul case carries the hard floor (observed
    # 1.19-1.54x on a single CPU); every case must at least not regress.
    assert cases[0]["speedup"] >= 1.02, (
        f"free-running only {cases[0]['speedup']:.3f}x vs lockstep on "
        f"{cases[0]['case']} (floor 1.02x)"
    )
    assert max(c["speedup"] for c in cases) >= 1.05

    store.save(
        "BENCH_runtime",
        {
            "comparison_rows": result["rows"],
            "speedup_cases": cases,
            "cpu_count": os.cpu_count(),
            "meta": {
                "paper": "§2: pipelined backpropagation keeps every "
                "stage busy in wall-clock time.  Lockstep is the bit-"
                "exact contract; free-running is the performance mode — "
                "on one CPU the gap is barrier-sync savings, on many "
                "cores it adds real compute overlap.",
            },
        },
    )
