"""Concurrent runtime parallelism — sim vs threaded vs process backends.

Regenerates the ``runtime_comparison`` experiment (simulator, threaded
lockstep/free, process lockstep/free per schedule, with both bit-exactness
checks), then times the headline claims on two multi-stage models:

* **free-running beats lockstep** within the threaded backend (no
  per-step scatter/gather barrier);
* **process beats threads** for free-running once real cores exist: the
  process backend's stages execute in separate interpreters, so NumPy
  work overlaps fully instead of serializing on the GIL, and packets
  cross stage boundaries through shared-memory rings (one memcpy, no
  pickling).

Persists everything as ``results/BENCH_runtime.json``.

Honest-measurement note: on a single-CPU host neither threads nor
processes can overlap compute, so the process backend only *pays* its
transport/fork overhead there — the JSON records ``cpu_count`` and the
measured ratio either way, and the hard process>threads assertion only
arms on hosts with enough cores to run the stages concurrently.

Set ``REPRO_BENCH_SMOKE=1`` to run a minutes-scale CI smoke version
(fewer repeats, shorter streams) that still exercises every backend and
both parity checks.

Runs only under ``pytest -m bench`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _engine(backend: str):
    from repro.pipeline import ConcurrentPipelineRunner, ProcessPipelineRunner

    return {
        "threaded": ConcurrentPipelineRunner,
        "process": ProcessPipelineRunner,
    }[backend]


def _best_wall_seconds(
    build_model, n: int, shape: tuple, mode: str, backend: str,
    lockstep: bool, repeats: int, **kw,
) -> tuple[float, object]:
    """Best-of-``repeats`` wall seconds for a fresh model each round
    (min suppresses scheduler noise; each round re-trains from init so
    every configuration does identical numerical work)."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, *shape))
    Y = rng.integers(0, 10, size=n)
    if backend == "process":
        # spawn-safe on non-Linux hosts (build_model is a partial)
        kw = dict(kw, model_factory=build_model)
    best, best_stats = float("inf"), None
    for _ in range(repeats):
        model = build_model()
        runner = _engine(backend)(
            model, lr=0.01, momentum=0.9, mode=mode, lockstep=lockstep, **kw
        )
        t0 = time.perf_counter()
        stats = runner.train(X, Y)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, best_stats = elapsed, stats
    return best, best_stats


def _speedup_case(name: str, build_model, n: int, shape: tuple, mode: str,
                  repeats: int, **kw) -> dict:
    """Free-vs-lockstep within the threaded backend, plus the process
    backend (lockstep and free) on the same workload."""
    thr_lock_s, _ = _best_wall_seconds(
        build_model, n, shape, mode, "threaded", True, repeats, **kw
    )
    thr_free_s, thr_stats = _best_wall_seconds(
        build_model, n, shape, mode, "threaded", False, repeats, **kw
    )
    proc_lock_s, proc_lock_stats = _best_wall_seconds(
        build_model, n, shape, mode, "process", True, repeats, **kw
    )
    proc_free_s, proc_stats = _best_wall_seconds(
        build_model, n, shape, mode, "process", False, repeats, **kw
    )
    thr_rt = thr_stats.runtime
    proc_rt = proc_stats.runtime
    return {
        "case": name,
        "num_stages": thr_rt.num_stages,
        "schedule": mode,
        "samples": n,
        "lockstep_seconds": thr_lock_s,
        "free_seconds": thr_free_s,
        "speedup": thr_lock_s / thr_free_s,
        "process_lockstep_seconds": proc_lock_s,
        "process_free_seconds": proc_free_s,
        "process_vs_threaded_free": thr_free_s / proc_free_s,
        "process_samples": int(proc_stats.samples),
        "process_mean_loss": float(proc_stats.mean_loss),
        "mean_busy_fraction": thr_rt.mean_busy_fraction,
        "process_mean_busy_fraction": proc_rt.mean_busy_fraction,
        "per_stage_busy_fraction": [
            thr_rt.busy_fraction(s) for s in range(thr_rt.num_stages)
        ],
        "process_per_stage_busy_fraction": [
            proc_rt.busy_fraction(s) for s in range(proc_rt.num_stages)
        ],
        # control-plane cost of the lockstep process run: the batched
        # step protocol's pipe traffic vs the modeled 2 msgs/worker/tick
        # (1 command + 1 ack) of a per-tick round-trip protocol
        "control": proc_lock_stats.runtime.control,
    }


@pytest.mark.benchmark(group="runtime")
def test_runtime_parallelism(benchmark, store):
    # -- parity + five-way engine comparison (the registry experiment) --
    result = run_and_save(benchmark, "runtime_comparison")
    print_rows("runtime_comparison", result)
    rows = {r["schedule"]: r for r in result["rows"]}
    assert set(rows) == {"pb", "fill_drain", "gpipe", "1f1b"}
    # the bit-exact contract: lockstep == simulator for every schedule,
    # for BOTH concurrent backends
    assert all(r["parity"] for r in rows.values()), (
        "lockstep threaded runtime diverged from the simulator"
    )
    assert all(r["proc_parity"] for r in rows.values()), (
        "lockstep process runtime diverged from the simulator"
    )

    # -- concurrency speedups on multi-stage models -----------------------
    from functools import partial

    from repro.models.simple import mlp, small_cnn

    repeats = 2 if SMOKE else 5
    n_mlp, n_cnn = (96, 32) if SMOKE else (256, 96)
    cases = [
        # 7 stages, matmul-heavy: the widest free-vs-lockstep margin
        _speedup_case(
            "mlp7_gpipe",
            partial(mlp, 192, 10, hidden=(256, 256, 256, 256), seed=3),
            n=n_mlp, shape=(3, 8, 8), mode="gpipe", repeats=repeats,
            update_size=32, micro_batch_size=16,
        ),
        # 5 stages, continuous pb injection
        _speedup_case(
            "cnn5_pb",
            partial(small_cnn, num_classes=10, widths=(32, 64), seed=3),
            n=n_cnn, shape=(3, 16, 16), mode="pb", repeats=repeats,
        ),
    ]
    cpu_count = os.cpu_count() or 1
    for case in cases:
        print(
            f"\n[runtime] {case['case']} ({case['num_stages']} stages, "
            f"{case['schedule']}): thr-lockstep "
            f"{case['lockstep_seconds']*1e3:.0f} ms, thr-free "
            f"{case['free_seconds']*1e3:.0f} ms ({case['speedup']:.2f}x), "
            f"proc-free {case['process_free_seconds']*1e3:.0f} ms "
            f"(proc/thr free {case['process_vs_threaded_free']:.2f}x, "
            f"{cpu_count} cpu)"
        )
        assert case["num_stages"] >= 4
        # the process backend must complete every workload correctly;
        # its wall-clock ratio is recorded honestly either way
        assert case["process_samples"] == case["samples"]
        assert case["process_mean_loss"] > 0.0  # CE losses are positive
        # control-plane: the batched lockstep protocol must beat the
        # modeled per-tick round-trip baseline (2 pipe msgs/worker/tick)
        control = case["control"]
        assert control is not None and control["protocol"] == "batched-step"
        print(
            f"[runtime]   control plane: {control['msgs_per_step']:.2f} "
            f"pipe msgs/step vs {control['baseline_msgs_per_step']} "
            f"baseline ({control['acks_received']} acks over "
            f"{control['time_steps']} steps, ack every "
            f"{control['ack_interval']})"
        )
        assert control["msgs_per_step"] < control["baseline_msgs_per_step"]
    if not SMOKE:
        # free-running beats lockstep wall-clock on a >=4-stage model.
        # The 7-stage matmul case carries the hard floor (observed
        # 1.19-1.54x on a single CPU); every case must at least not
        # regress.
        assert cases[0]["speedup"] >= 1.02, (
            f"free-running only {cases[0]['speedup']:.3f}x vs lockstep on "
            f"{cases[0]['case']} (floor 1.02x)"
        )
        assert max(c["speedup"] for c in cases) >= 1.05
    if cpu_count >= 4 and not SMOKE:
        # with real cores, escaping the GIL must win on a >=4-stage model
        assert max(c["process_vs_threaded_free"] for c in cases) >= 1.0, (
            "process backend slower than threads despite "
            f"{cpu_count} cores: "
            f"{[round(c['process_vs_threaded_free'], 3) for c in cases]}"
        )

    store.save(
        "BENCH_runtime",
        {
            "comparison_rows": result["rows"],
            "speedup_cases": cases,
            "cpu_count": cpu_count,
            "smoke": SMOKE,
            "meta": {
                "paper": "§2: pipelined backpropagation keeps every "
                "stage busy in wall-clock time.  Lockstep is the bit-"
                "exact contract (threads and processes); free-running "
                "is the performance mode — on one CPU the thread gap is "
                "barrier-sync savings, and only the process backend can "
                "turn spare cores into real compute overlap (its "
                "process_vs_threaded_free ratio is reported against "
                "cpu_count honestly).",
            },
        },
    )
