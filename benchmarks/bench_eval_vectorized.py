"""Vectorized ``evaluate()`` — batched forward path vs per-sample loop.

``repro.train.metrics.evaluate`` streams a split through the model in
vectorized ``(B, ...)`` batches with one fused NumPy loss pass per
batch.  This bench measures what that buys over the per-sample form
(``batch_size=1`` — one forward op and one loss reduction per sample)
and records the factor.  The bit-exactness pin against the historical
Tensor-``cross_entropy`` loop lives in ``tests/test_train.py::
test_evaluate_bit_exact_with_pre_vectorization_loop`` (one oracle, one
place); this bench only asserts the two forms agree numerically while
timing them.

Persists ``results/BENCH_eval.json``.  Runs only under
``pytest -m bench``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="eval")
def test_eval_vectorized(benchmark, store):
    from repro.data.synthetic import SyntheticCifar
    from repro.models.simple import small_cnn
    from repro.train.metrics import evaluate

    ds = SyntheticCifar(seed=0, image_size=8, train_size=64, val_size=256)
    model = small_cnn(num_classes=ds.num_classes, widths=(16, 32), seed=3)
    x, y = ds.x_val, ds.y_val

    def _run():
        # sanity: both forms compute the same metrics (the hex-level
        # refactor pin lives in tests/test_train.py)
        batched = evaluate(model, x, y, batch_size=64)
        per_sample = evaluate(model, x, y, batch_size=1)
        assert batched[0] == pytest.approx(per_sample[0], rel=1e-9)
        assert batched[1] == per_sample[1]
        batched_s = _time(lambda: evaluate(model, x, y, batch_size=64), 3)
        per_sample_s = _time(lambda: evaluate(model, x, y, batch_size=1), 3)
        return batched_s, per_sample_s

    batched_s, per_sample_s = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = per_sample_s / batched_s
    print(
        f"[eval] per-sample {per_sample_s*1e3:.1f} ms, batched(64) "
        f"{batched_s*1e3:.1f} ms -> {speedup:.1f}x"
    )
    # the batched path must be a real win, not noise
    assert speedup >= 2.0, (
        f"batched evaluate only {speedup:.2f}x over per-sample"
    )
    store.save(
        "BENCH_eval",
        {
            "samples": int(x.shape[0]),
            "per_sample_seconds": per_sample_s,
            "batched_seconds": batched_s,
            "batch_size": 64,
            "speedup": speedup,
            "meta": {
                "paper": "Evaluation uses the same vectorized (B, ...) "
                "hot path as the micro-batched executor: one forward "
                "op and one fused loss pass per batch.",
            },
        },
    )
