"""Figure 10 — stale gradients vs inconsistent weights."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig10")
def test_fig10_inconsistency(benchmark):
    result = run_and_save(benchmark, "fig10")
    delays = result["delays"]
    series = {k: np.asarray(v) for k, v in result["series"].items()}
    print()
    print(format_series(delays, series, x_name="delay"))

    consistent = series["consistent"]
    forward_only = series["forward_only"]
    # even modest *consistent* delay costs accuracy (the paper's headline
    # for this figure: staleness alone is damaging)
    assert consistent[-1] < consistent[0] * 0.7
    # at zero delay both modes are identical training procedures
    assert consistent[0] == pytest.approx(forward_only[0], abs=0.25)
    # inconsistency does not add much damage at small delays (the curves
    # track each other within noise at D <= 2)
    small = slice(0, 3)
    assert np.allclose(consistent[small], forward_only[small], atol=0.3)
