"""Mixed-precision training — step-time, ring bytes and parity, measured.

The precision PR's performance claim: on GEMM-heavy pipelines the
float32 mode buys real wall-clock (NumPy dispatches the float32 BLAS
kernels and every array halves its memory traffic) while staying inside
the policy's loss tolerance vs the float64 reference.  Three headline
numbers are pinned:

* **step-time ratio** — float32 epoch wall-clock / float64 epoch
  wall-clock per runtime (sim / threaded lockstep / process lockstep);
  the hard floor (non-smoke) is ``<= 0.75`` on at least one runtime;
* **ring bytes** — the process runtime's boundary ring slots, probed
  per dtype: float32 slots are (about) half the float64 bytes, the
  shm-transport half of the claim;
* **parity** — each reduced mode's loss curve stays within its policy
  tolerance of the float64 reference on the same workload (the same
  contract ``tests/test_precision.py`` pins across every schedule).

Persists ``results/BENCH_precision.json``.  Set ``REPRO_BENCH_SMOKE=1``
for the minutes-scale CI version (smaller model, fewer repeats, ratio
assertions recorded but not armed).  Runs only under ``pytest -m bench``.
"""

from __future__ import annotations

import os
import time
from functools import partial

import numpy as np
import pytest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: non-smoke hard floor: float32 epoch time vs float64, best runtime
RATIO_FLOOR = 0.75


def _workload(n: int):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 10, size=n)
    return X, Y


def _build_factory(width: int):
    from repro.models.simple import mlp

    # GEMM-heavy: wide hidden layers so BLAS dtype dominates step time
    return partial(mlp, 192, 10, hidden=(width, width, width), seed=3)


def _train_once(factory, runtime: str, precision: str, X, Y, **kw):
    from repro.pipeline import make_pipeline_engine

    model = factory()
    engine_kw = dict(
        lr=0.01, momentum=0.9, precision=precision,
        mode="gpipe", update_size=16, micro_batch_size=16, **kw,
    )
    if runtime != "sim":
        engine_kw["lockstep"] = True
    if runtime == "process":
        engine_kw["model_factory"] = factory
    engine = make_pipeline_engine(runtime, model, **engine_kw)
    t0 = time.perf_counter()
    stats = engine.train(X, Y)
    return time.perf_counter() - t0, stats


def _best(factory, runtime, precision, X, Y, repeats):
    best, best_stats = float("inf"), None
    for _ in range(repeats):
        elapsed, stats = _train_once(factory, runtime, precision, X, Y)
        if elapsed < best:
            best, best_stats = elapsed, stats
    return best, best_stats


def _ring_bytes(factory, precision: str, micro_batch: int = 16) -> int:
    """Total boundary-ring payload bytes per slot for one micro-batch,
    summed over the pipeline's stage boundaries, at ``precision``."""
    from repro.pipeline import PipelineExecutor
    from repro.pipeline.transport import probe_boundary_layouts, slot_layout

    engine = PipelineExecutor(factory(), lr=0.01, precision=precision)
    probe = np.zeros((micro_batch, 3, 8, 8))
    probe = engine.precision.cast_array(probe)
    layouts = probe_boundary_layouts(engine.stages, probe)
    return sum(slot_layout(specs)[1] for specs in layouts)


@pytest.mark.benchmark(group="precision")
def test_precision_step_time_and_parity(benchmark, store):
    from repro.precision import resolve_precision

    width = 128 if SMOKE else 384
    n = 64 if SMOKE else 192
    repeats = 2 if SMOKE else 4
    factory = _build_factory(width)
    X, Y = _workload(n)

    runtimes = ["sim", "threaded", "process"]
    rows = []
    ref_losses: dict[str, np.ndarray] = {}
    for runtime in runtimes:
        t64, s64 = _best(factory, runtime, "float64", X, Y, repeats)
        ref_losses[runtime] = np.asarray(s64.losses, dtype=np.float64)
        rows.append({
            "runtime": runtime, "precision": "float64",
            "seconds": t64, "ratio_vs_float64": 1.0,
            "samples_per_sec": n / t64,
            "mean_loss": float(s64.mean_loss),
            "max_loss_dev": 0.0, "within_tolerance": True,
        })
        modes = ["float32", "bf16"] if runtime == "sim" else ["float32"]
        for mode in modes:
            t_red, s_red = _best(factory, runtime, mode, X, Y, repeats)
            policy = resolve_precision(mode)
            got = np.asarray(s_red.losses, dtype=np.float64)
            ref = ref_losses[runtime]
            dev = float(
                np.max(np.abs(got - ref) / (np.abs(ref) + policy.loss_atol))
            )
            within = bool(
                np.allclose(
                    got, ref, rtol=policy.loss_rtol, atol=policy.loss_atol
                )
            )
            rows.append({
                "runtime": runtime, "precision": mode,
                "seconds": t_red, "ratio_vs_float64": t_red / t64,
                "samples_per_sec": n / t_red,
                "mean_loss": float(s_red.mean_loss),
                "max_loss_dev": dev, "within_tolerance": within,
            })

    # -- the shm-transport half: float32 ring slots are ~half the bytes --
    bytes64 = _ring_bytes(factory, "float64")
    bytes32 = _ring_bytes(factory, "float32")

    for r in rows:
        print(
            f"[precision] {r['runtime']:>8s} {r['precision']:>8s}: "
            f"{r['seconds']*1e3:7.0f} ms ({r['ratio_vs_float64']:.2f}x "
            f"float64), mean loss {r['mean_loss']:.4f}, "
            f"max dev {r['max_loss_dev']:.2e}"
        )
    print(
        f"[precision] boundary ring bytes/slot: float64 {bytes64}, "
        f"float32 {bytes32} ({bytes32 / bytes64:.2f}x)"
    )

    # parity is non-negotiable even in smoke
    assert all(r["within_tolerance"] for r in rows), (
        "a reduced-precision loss curve left its policy tolerance: "
        f"{[(r['runtime'], r['precision']) for r in rows if not r['within_tolerance']]}"
    )
    # float32 halves every float64 boundary array; alignment padding on
    # sub-cache-line arrays keeps the total a shade above exactly half
    assert bytes32 <= 0.6 * bytes64
    float32_ratios = {
        r["runtime"]: r["ratio_vs_float64"]
        for r in rows if r["precision"] == "float32"
    }
    if not SMOKE:
        best_runtime = min(float32_ratios, key=float32_ratios.get)
        assert float32_ratios[best_runtime] <= RATIO_FLOOR, (
            f"float32 step-time ratio {float32_ratios} never reached the "
            f"{RATIO_FLOOR} floor (best: {best_runtime})"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    store.save(
        "BENCH_precision",
        {
            "rows": rows,
            "ring_bytes": {
                "float64": bytes64,
                "float32": bytes32,
                "ratio": bytes32 / bytes64,
            },
            "float32_ratio_by_runtime": float32_ratios,
            "ratio_floor": RATIO_FLOOR,
            "model": f"mlp 192->({width},)*3->10",
            "samples": n,
            "repeats": repeats,
            "cpu_count": os.cpu_count() or 1,
            "smoke": SMOKE,
            "meta": {
                "paper": "mixed-precision serving/training modes: float32 "
                "runs the float32 BLAS kernels and halves every shm ring "
                "slot, bf16 emulates bf16-storage/fp32-compute, and both "
                "stay within their policy loss tolerance of the float64 "
                "reference (which remains hex-exact and is untouched).",
            },
        },
    )
