"""Figure 12 — prediction-scale sweep on the convex quadratic."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig12")
def test_fig12_prediction_scale(benchmark):
    result = run_and_save(benchmark, "fig12")
    scales = np.asarray(result["prediction_scale"])
    series = {k: np.asarray(v) for k, v in result["series_log10_halflife"].items()}
    print()
    print(format_series(scales, series, x_name="alpha", floatfmt="{:.3f}"))

    for name, vals in series.items():
        best_alpha = scales[int(np.nanargmin(vals))]
        # the optimum over-compensates: alpha in (1, 4) around T = 2D
        assert 1.0 <= best_alpha <= 4.0, (name, best_alpha)
        # alpha ~ 2 beats no prediction (alpha = 0)
        idx2 = int(np.argmin(np.abs(scales - 2.0)))
        assert vals[idx2] < vals[0], name
        # very large horizons degrade again (U-shape)
        assert vals[-1] > np.nanmin(vals), name
