"""Figure 17 — eq. 9 hyperparameter scaling: batch-1 tracks the reference."""

import pytest

from benchmarks.conftest import run_and_save


@pytest.mark.benchmark(group="fig17")
def test_fig17_hparam_scaling(benchmark):
    result = run_and_save(benchmark, "fig17")
    final = result["final_acc"]
    print()
    for name, curve in result["curves"].items():
        pts = ", ".join(f"{s}:{a:.3f}" for s, a in curve)
        print(f"[fig17] {name}: {pts}")

    ref = final["batch32_reference"]
    scaled = final["batch1_eq9_scaled"]
    naive = final["batch1_naive_unscaled"]
    # the scaled batch-1 run lands close to the reference...
    assert abs(scaled - ref) < 0.15
    # ...and much closer than the naive (unscaled) batch-1 run, which uses
    # a 32x-too-large per-sample contribution
    assert abs(scaled - ref) <= abs(naive - ref)
    assert scaled > naive - 0.02
