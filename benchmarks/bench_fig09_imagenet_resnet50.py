"""Figure 9 — ImageNet-like ResNet50 (78 stages) with PB mitigation."""

import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="fig09")
def test_fig09_imagenet_resnet50(benchmark):
    result = run_and_save(benchmark, "fig09")
    print_rows("fig09", result)
    accs = {r["method"]: r["val_acc"] for r in result["rows"]}
    chance = 1.0 / 20.0

    # the reference trains above chance on the harder 20-class task
    assert accs["SGDM"] > 2 * chance
    # the combined mitigation trains and is competitive with the best
    # non-combined method (paper: only the combination recovers RN50)
    combo = accs["PB+LWPv_D+SC_D"]
    assert combo > 2 * chance
    best_other = max(accs["PB"], accs["PB+LWP_D"], accs["PB+SC_D"])
    assert combo >= best_other * 0.8
    # mitigation does not destabilize training (all runs finite/above 0)
    for method, acc in accs.items():
        assert acc >= 0.0
