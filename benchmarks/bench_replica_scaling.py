"""Hybrid parallelism — replica-count vs wall-clock scaling.

Regenerates the ``hybrid_parallelism`` experiment (R data-parallel
pipeline replicas vs one pipeline at ``R*U``, with the bit-exactness
check for the synchronous schedules and the per-replica eq.-5 staleness
check for pb/1f1b), then times the scaling claim directly: a fixed
global update size ``G`` is trained by ``R`` process-runtime pipeline
replicas at per-replica update size ``G/R`` for ``R`` in 1, 2, 4.  By
the replica-parity contract every configuration computes the *identical*
trajectory (asserted bit-exactly on the losses), so the wall-clock
column isolates the cost/benefit of data-parallel scale-out.

Persists everything as ``results/BENCH_replicas.json``.

Honest-measurement note: R replicas each stream ``n/R`` samples, but
also spawn ``R`` times the worker processes and pay a chain all-reduce
per barrier — on a host without ``R * num_stages`` spare cores the
replicas time-slice and the speedup column can sit below 1.  The JSON
records ``cpu_count`` next to the measured ratios either way; no
speedup is asserted, only bit-exact equivalence.

Set ``REPRO_BENCH_SMOKE=1`` for a minutes-scale CI smoke version (fewer
repeats, shorter streams, R up to 2) that still exercises the reduce
plane and both parity checks.

Runs only under ``pytest -m bench`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import os
import time
from functools import partial

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _wall_seconds(build_model, X, Y, global_update: int, replicas: int,
                  repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall seconds for R replicas at per-replica
    update size ``global_update // replicas`` (fresh model each round so
    every configuration does identical numerical work)."""
    from repro.pipeline import ProcessPipelineRunner, ReplicatedPipelineRunner

    update = global_update // replicas
    best, best_stats = float("inf"), None
    for _ in range(repeats):
        model = build_model()
        if replicas == 1:
            runner = ProcessPipelineRunner(
                model, lr=0.01, momentum=0.9, mode="fill_drain",
                update_size=global_update, model_factory=build_model,
            )
        else:
            runner = ReplicatedPipelineRunner(
                model, lr=0.01, momentum=0.9, mode="fill_drain",
                update_size=update, replicas=replicas,
                model_factory=build_model,
            )
        t0 = time.perf_counter()
        stats = runner.train(X, Y)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, best_stats = elapsed, stats
    return best, best_stats


@pytest.mark.benchmark(group="replicas")
def test_replica_scaling(benchmark, store):
    # -- parity + staleness checks (the registry experiment) --------------
    result = run_and_save(benchmark, "hybrid_parallelism")
    print_rows("hybrid_parallelism", result)
    rows = {r["schedule"]: r for r in result["rows"]}
    assert set(rows) == {"pb", "fill_drain", "gpipe", "1f1b"}
    # synchronous schedules: R replicas at U must be bit-identical to
    # one pipeline at R*U (losses and final weights)
    assert rows["fill_drain"]["parity"] and rows["gpipe"]["parity"], (
        "replicated synchronous run diverged from the R*U simulator"
    )
    # asynchronous schedules: every replica obeys the eq.-5 ceiling
    assert rows["pb"]["staleness_ok"] and rows["1f1b"]["staleness_ok"], (
        "a replica exceeded the eq.-5 staleness ceiling"
    )

    # -- replica-count vs wall-clock on one fixed workload ----------------
    from repro.models.simple import small_cnn

    repeats = 1 if SMOKE else 3
    n = 48 if SMOKE else 192
    global_update = 8
    replica_counts = (1, 2) if SMOKE else (1, 2, 4)
    build_model = partial(small_cnn, num_classes=10, widths=(8, 16), seed=3)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 10, size=n)

    cpu_count = os.cpu_count() or 1
    scaling = []
    base_s = None
    base_losses = None
    for replicas in replica_counts:
        wall_s, stats = _wall_seconds(
            build_model, X, Y, global_update, replicas, repeats
        )
        if base_s is None:
            base_s = wall_s
            base_losses = np.asarray(stats.losses).copy()
        losses_equal = bool(
            np.array_equal(base_losses, np.asarray(stats.losses))
        )
        row = {
            "replicas": replicas,
            "update_size": global_update // replicas,
            "global_update": global_update,
            "samples": n,
            "wall_seconds": wall_s,
            "speedup_vs_1": base_s / wall_s,
            "losses_equal_r1": losses_equal,
            "mean_loss": float(stats.mean_loss),
            "mean_busy_fraction": stats.runtime.mean_busy_fraction,
        }
        scaling.append(row)
        print(
            f"\n[replicas] R={replicas} (U={row['update_size']}): "
            f"{wall_s*1e3:.0f} ms ({row['speedup_vs_1']:.2f}x vs R=1, "
            f"{cpu_count} cpu), losses_equal={losses_equal}"
        )
        # the contract: every replica count computes the identical
        # trajectory — bit-exact losses against the R=1 run
        assert losses_equal, (
            f"R={replicas} losses diverged from the single-pipeline run"
        )
        assert stats.samples == n

    store.save(
        "BENCH_replicas",
        {
            "parity_rows": result["rows"],
            "scaling": scaling,
            "cpu_count": cpu_count,
            "smoke": SMOKE,
            "meta": {
                "paper": "Hybrid parallelism: data-parallel replication "
                "of the fine-grained pipeline.  R replicas at update "
                "size G/R chain-reduce per-packet gradient segments in "
                "rank order, reproducing one pipeline at update size G "
                "bit-for-bit (losses_equal_r1 must be True for every "
                "R); wall-clock vs replica count is recorded honestly "
                "against cpu_count.",
            },
        },
    )
