"""Figure 14 — momentum effects under delay (consistent + inconsistent)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig14")
def test_fig14_momentum_effects(benchmark):
    result = run_and_save(benchmark, "fig14")
    momenta = result["momentum"]
    print()
    for panel, series in result["panels"].items():
        print(f"[fig14] {panel}:")
        print(format_series(momenta, series, x_name="momentum"))

    for panel in ("consistent", "inconsistent"):
        series = {k: np.asarray(v) for k, v in result["panels"][panel].items()}
        combo = series["LWPv_D+SC_D"]
        delayed = series["delayed"]
        # the compensation methods obtain their best accuracy at large
        # momentum values (paper: 'best accuracy is obtained for large
        # momentum values')
        assert momenta[int(np.argmax(combo))] >= 0.99, panel
        # at the highest momentum the combination beats the plain delayed
        # baseline
        assert combo[-1] > delayed[-1] - 0.02, panel
        # the combination at its best is competitive with the no-delay
        # baseline's best
        assert combo.max() > 0.5 * series["no_delay"].max(), panel
