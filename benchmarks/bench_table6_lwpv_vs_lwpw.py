"""Table 6 — velocity-form vs weight-difference-form LWP in the combo."""

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="table6")
def test_table6_lwpv_vs_lwpw(benchmark):
    result = run_and_save(benchmark, "table6")
    print_rows("table6", result)

    for row in result["rows"]:
        # both combined forms improve on (or at least match) plain PB —
        # plain PB itself may sit at chance on the deepest pipelines
        for m in ("PB+LWPv_D+SC_D", "PB+LWPw_D+SC_D"):
            assert row[m] >= row["PB"] - 0.03, (row["net"], m, row)

    # the two forms genuinely differ when combined with SC (eq. 26): the
    # accuracies must not be bitwise-identical across the suite
    diffs = [
        abs(r["PB+LWPv_D+SC_D"] - r["PB+LWPw_D+SC_D"])
        for r in result["rows"]
    ]
    assert max(diffs) > 0.0

    # paper: LWPv >= LWPw on average (the weight form's velocity estimate
    # is noisier at small batch sizes)
    mean_v = np.mean([r["PB+LWPv_D+SC_D"] for r in result["rows"]])
    mean_w = np.mean([r["PB+LWPw_D+SC_D"] for r in result["rows"]])
    assert mean_v >= mean_w - 0.1
