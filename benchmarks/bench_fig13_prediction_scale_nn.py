"""Figure 13 — prediction-scale sweep on a network (delay 4)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="fig13")
def test_fig13_prediction_scale_nn(benchmark):
    result = run_and_save(benchmark, "fig13")
    alphas = np.asarray(result["prediction_scale"])
    accs = np.asarray(result["val_acc"])
    losses = np.asarray(result["final_train_loss"])
    print()
    print(
        format_series(
            alphas,
            {"val_acc": accs, "train_loss": losses},
            x_name="alpha",
        )
    )

    # predicting (alpha in [1, 2]) improves the final loss over alpha=0
    best_small = losses[(alphas >= 1.0) & (alphas <= 2.0)].min()
    assert best_small <= losses[0]
    # the best accuracy occurs at a positive prediction scale
    assert alphas[int(np.argmax(accs))] >= 1.0
