"""Figure 16 — executor validation: fill&drain SGD == batch SGD."""

import pytest

from benchmarks.conftest import run_and_save


@pytest.mark.benchmark(group="fig16")
def test_fig16_executor_validation(benchmark):
    result = run_and_save(benchmark, "fig16")
    print()
    print(f"[fig16] max |w_pipeline - w_reference| = "
          f"{result['max_param_diff']:.3e}")
    print(f"[fig16] val acc pipeline={result['val_acc_pipeline']:.4f} "
          f"reference={result['val_acc_reference']:.4f}")

    # the cycle-accurate pipeline in fill&drain mode IS mini-batch SGD
    assert result["max_param_diff"] < 1e-9
    assert result["val_acc_pipeline"] == pytest.approx(
        result["val_acc_reference"], abs=1e-12
    )
