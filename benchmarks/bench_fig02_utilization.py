"""Figure 2 / eq. 1 — pipeline utilization: fill-drain SGD vs PB."""

import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="fig02")
def test_fig02_utilization(benchmark):
    result = run_and_save(benchmark, "fig02")
    print_rows("fig02", result)
    print(result["ascii_fill_drain"])

    rows = {(r["net"], r["batch"]): r for r in result["rows"]}
    # eq. 1: the bound is below the exact value and both grow with batch
    for (net, batch), r in rows.items():
        assert r["eq1_upper_bound"] <= r["fill_drain_util"] + 1e-12
    # larger batches utilize better (Figure 2 top vs middle)
    assert rows[("rn20", 128)]["fill_drain_util"] > rows[("rn20", 1)][
        "fill_drain_util"
    ]
    # PB over an epoch beats even batch-128 fill/drain (Figure 2 bottom)
    for net in ("vgg11", "rn20", "rn50", "rn110"):
        assert rows[(net, 128)]["pb_util_50k"] > rows[(net, 128)][
            "fill_drain_util"
        ]
    # deeper pipelines suffer more from fill/drain
    assert rows[("rn110", 32)]["fill_drain_util"] < rows[("rn20", 32)][
        "fill_drain_util"
    ]
    # the occupancy-grid model agrees with the closed forms exactly
    gc = result["grid_check"]
    assert gc["fill_drain_grid"] == pytest.approx(gc["fill_drain_formula"])
    assert gc["pb_grid"] == pytest.approx(gc["pb_formula"])
