"""Extension ablations: BN-vs-GN delay tolerance, warmup, grad shrinking.

These check the paper's §5 discussion claims that its evaluation section
does not tabulate (see DESIGN.md).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_rows, run_and_save
from repro.utils.render import format_series


@pytest.mark.benchmark(group="ablations")
def test_ablation_bn_vs_gn(benchmark):
    result = run_and_save(benchmark, "ablation_bn_vs_gn")
    delays = result["delays"]
    series = {k: np.asarray(v) for k, v in result["series"].items()}
    print()
    print(format_series(delays, series, x_name="delay"))

    bn, gn = series["bn"], series["gn"]
    # both train at zero delay
    assert bn[0] > 0.3 and gn[0] > 0.3
    # the paper's exploratory claim: BN retains more accuracy under delay
    # (checked as relative retention at the largest delay)
    bn_retention = bn[-1] / bn[0]
    gn_retention = gn[-1] / gn[0]
    assert bn_retention >= gn_retention - 0.15


@pytest.mark.benchmark(group="ablations")
def test_ablation_warmup(benchmark):
    result = run_and_save(benchmark, "ablation_warmup")
    print_rows("ablation_warmup", result)
    rows = {(r["warmup_frac"], r["delay"]): r["val_acc"]
            for r in result["rows"]}
    # warmup must not hurt the delayed run, and the delayed runs benefit
    # at least as much as the no-delay runs (paper §5 rationale)
    gain_delayed = rows[(0.3, 4)] - rows[(0.0, 4)]
    gain_clean = rows[(0.3, 0)] - rows[(0.0, 0)]
    assert gain_delayed >= -0.05
    assert gain_delayed >= gain_clean - 0.1


@pytest.mark.benchmark(group="ablations")
def test_ablation_gradient_shrinking(benchmark):
    result = run_and_save(benchmark, "ablation_gradient_shrinking")
    print_rows("ablation_gradient_shrinking", result)
    accs = {r["method"]: r["val_acc"] for r in result["rows"]}
    # the paper's re-timing methods dominate gradient shrinking under
    # identical staleness (shrinking reduces harm by reducing signal)
    assert accs["LWPv_D+SC_D"] >= accs["grad_shrink"]
    assert accs["SC_D"] >= accs["grad_shrink"]
    assert accs["LWP_D"] >= accs["grad_shrink"]
    # re-timing also improves on the unmitigated delayed baseline
    assert accs["LWPv_D+SC_D"] >= accs["delayed"] - 0.02
