"""Figure 7 — half-life vs momentum for LWP horizons (kappa=1e3, D=5)."""

import numpy as np
import pytest

from benchmarks.conftest import run_and_save


@pytest.mark.benchmark(group="fig07")
def test_fig07_horizon_momentum(benchmark):
    result = run_and_save(benchmark, "fig07")
    momenta = np.asarray(result["momentum"])
    series = {k: np.asarray(v) for k, v in result["series"].items()}
    print()
    for name, vals in series.items():
        best = momenta[int(np.nanargmin(vals))]
        print(f"[fig07] {name:16s} best half-life {np.nanmin(vals):10.1f} "
              f"at m={best:.5f}")

    t0 = series["LWP T=0"]
    t10 = series["LWP T=10"]  # T = 2D for D=5
    combo = series["LWPw_D+SC_D"]
    # without mitigation, large momentum is catastrophic
    assert t0[-1] > 2 * np.nanmin(t0)
    # T = 2D beats T = 0 at its best point and prefers high momentum
    assert np.nanmin(t10) < np.nanmin(t0)
    assert momenta[int(np.nanargmin(t10))] > 0.5
    # extended horizons do not beat the combination (paper §3.5)
    for name in ("LWP T=0", "LWP T=3", "LWP T=5", "LWP T=10", "LWP T=20"):
        assert np.nanmin(combo) <= np.nanmin(series[name]) * 1.02, name
    # the combination restores the benefit of momentum: optimum at high m
    assert momenta[int(np.nanargmin(combo))] > 0.9
