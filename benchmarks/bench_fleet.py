"""Fleet serving benchmark — multi-replica router vs a single replica.

The fleet claim, measured: a :class:`repro.serve.fleet.FleetRouter`
over R replicas **sustains strictly higher offered load** than a single
replica — *while a rolling weight hot-swap runs underneath it* — with
zero dropped or duplicated requests.

Setup: the same briefly-trained 5-stage CNN checkpoint serves behind a
router with R=1 (the single-replica baseline) and R=3 (the fleet), each
swept over closed-loop concurrency (offered load).  Traffic is the
stock 70/30 interactive/batch SLO mix; every *fleet* level additionally
runs a mid-run :func:`~repro.serve.fleet.reload.rolling_reload` onto an
alternate checkpoint, so the fleet's numbers honestly include the swap
turbulence the zero-downtime claim is about.

A load level is **sustained** when every request completes and the
interactive class's closed-loop (client-side, retry-inclusive) p99
stays under its deadline.  On a single box the replicas share the same
cores, so the fleet's advantage is *not* raw compute: it is aggregate
bounded-admission capacity (``R x max_queue``) plus per-replica queue
depths staying shallow, which is exactly what the least-loaded router +
SLO admission are supposed to buy — the single replica saturates its
one admission queue and burns client time in Overloaded retries while
the fleet keeps queue waits (and therefore deadline pressure) low.

Persists ``results/BENCH_fleet.json``.  ``REPRO_BENCH_SMOKE=1`` runs a
minutes-scale variant (two load levels, fewer requests) with the same
assertions.  Runs only under ``pytest -m bench``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from functools import partial

import pytest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: client-side (retry-inclusive) p99 budget for the interactive class —
#: the deadline a level must hold to count as sustained
INTERACTIVE_DEADLINE_S = 0.05
BATCH_DEADLINE_S = 1.0


def _slo_classes():
    from repro.serve.fleet import SLOClass

    return {
        "interactive": SLOClass(
            "interactive",
            deadline_s=INTERACTIVE_DEADLINE_S,
            max_wait_s=0.0,
            queue_share=0.5,
        ),
        "batch": SLOClass(
            "batch",
            deadline_s=BATCH_DEADLINE_S,
            max_wait_s=0.002,
            queue_share=1.0,
        ),
    }


def _make_checkpoints(tmp: str):
    """Two PR-4 checkpoints of the same architecture with different
    weights (the rolling reload alternates between them), plus the
    request pool."""
    from repro.data.synthetic import SyntheticCifar
    from repro.models.simple import small_cnn
    from repro.pipeline.checkpoint import capture_checkpoint, save_checkpoint
    from repro.pipeline.runtime import make_pipeline_engine

    factory = partial(small_cnn, num_classes=10, widths=(16, 32), seed=11)
    ds = SyntheticCifar(seed=0, image_size=8, train_size=128, val_size=96)
    paths = []
    for name, n_train in (("a.ckpt", 48), ("b.ckpt", 96)):
        model = factory()
        engine = make_pipeline_engine(
            "sim", model, lr=0.02, momentum=0.9, mode="pb"
        )
        engine.train(ds.x_train[:n_train], ds.y_train[:n_train])
        path = os.path.join(tmp, name)
        save_checkpoint(path, capture_checkpoint(engine))
        paths.append(path)
    return factory, ds.x_val, paths[0], paths[1]


def _run_level(
    factory, x_pool, checkpoint, replicas, concurrency, num_requests,
    reload_to=None,
):
    """One (R, concurrency) cell: fresh router, mixed closed loop,
    optional mid-run rolling reload.  Returns the result row."""
    from repro.serve.fleet import FleetRouter, ReplicaSpec, rolling_reload
    from repro.serve.loadgen import run_classed_loop

    spec = ReplicaSpec(
        model_factory=factory,
        sample_shape=tuple(x_pool.shape[1:]),
        runtime="sim",
        micro_batch=8,
        max_queue=8,
    )
    reload_report = []
    with FleetRouter(
        spec, replicas, checkpoint=checkpoint, classes=_slo_classes()
    ) as router:

        def mid_run_swap() -> None:
            time.sleep(0.1)
            reload_report.append(rolling_reload(router, reload_to))

        swapper = None
        if reload_to is not None:
            swapper = threading.Thread(target=mid_run_swap)
            swapper.start()
        failed_reason = None
        try:
            result = run_classed_loop(
                lambda x, slo: router.submit(x, slo).future.result(60.0),
                x_pool,
                num_requests,
                concurrency=concurrency,
                mix={"interactive": 0.7, "batch": 0.3},
                label=f"R{replicas}/c{concurrency}",
                retry_backoff=1e-3,
                timeout=120.0,
            )
        except RuntimeError as exc:
            # a starved/failed closed loop means the level was NOT
            # sustained — that is a data point, not a bench crash
            result = None
            failed_reason = repr(exc)
        if swapper is not None:
            swapper.join()
        # let the last done-callbacks land before reading the proof
        deadline = time.monotonic() + 10.0
        while router.outstanding and time.monotonic() < deadline:
            time.sleep(1e-3)
        snap = router.snapshot()

    row = {
        "label": f"R{replicas}/c{concurrency}",
        "replicas": replicas,
        "concurrency": concurrency,
        "requests": num_requests,
        "reloaded": reload_to is not None,
        "submitted": snap["submitted"],
        "resolved": snap["resolved"],
        "duplicates": snap["duplicates"],
        "failed": snap["failed"],
        "outstanding": sum(snap["outstanding"].values()),
    }
    if reload_report:
        rep = reload_report[0]
        row["reload_min_ready"] = rep.min_ready_observed
        row["reload_swapped"] = rep.replicas_swapped
    if result is None:
        row.update(sustained=False, failed_reason=failed_reason)
        return row
    inter = result.per_class["interactive"]
    batch = result.per_class["batch"]
    row.update(
        throughput_rps=round(result.combined.throughput_rps, 1),
        interactive_p50_ms=round(inter.latency_p50 * 1e3, 3),
        interactive_p99_ms=round(inter.latency_p99 * 1e3, 3),
        batch_p99_ms=round(batch.latency_p99 * 1e3, 3),
        rejected_retries=result.combined.rejected_retries,
        sustained=(
            inter.latency_p99 <= INTERACTIVE_DEADLINE_S
            and batch.latency_p99 <= BATCH_DEADLINE_S
        ),
    )
    return row


@pytest.mark.benchmark(group="fleet")
def test_fleet_benchmark(benchmark, store):
    levels = [4, 16] if SMOKE else [4, 8, 16, 24]
    num_requests = 120 if SMOKE else 240
    fleet_size = 3

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        factory, x_pool, ck_a, ck_b = _make_checkpoints(tmp)

        def _run_all():
            rows = []
            for replicas in (1, fleet_size):
                for concurrency in levels:
                    rows.append(
                        _run_level(
                            factory, x_pool, ck_a, replicas, concurrency,
                            num_requests,
                            # every fleet level measures across a live
                            # rolling hot-swap; the single-replica
                            # baseline runs undisturbed
                            reload_to=(
                                ck_b if replicas > 1 else None
                            ),
                        )
                    )
            return rows

        rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    for row in rows:
        print(
            f"[fleet] {row['label']:>8s}: "
            + (
                f"{row['throughput_rps']:8.1f} rps, "
                f"interactive p99 {row['interactive_p99_ms']:7.1f} ms, "
                f"retries {row['rejected_retries']:5d}, "
                f"sustained={row['sustained']}"
                if "throughput_rps" in row
                else f"NOT SUSTAINED ({row.get('failed_reason')})"
            )
        )

    # -- the no-drop / no-duplicate proof, on every cell ---------------------
    for row in rows:
        assert row["duplicates"] == 0, row
        assert row["submitted"] == row["resolved"], row
        assert row["failed"] == 0, row
        assert row["outstanding"] == 0, row

    # -- zero-downtime: every fleet cell swapped all replicas while at
    #    least one stayed ready ----------------------------------------------
    fleet_rows = [r for r in rows if r["replicas"] > 1]
    for row in fleet_rows:
        assert row["reload_swapped"] == fleet_size, row
        assert row["reload_min_ready"] >= 1, row

    # -- the headline: the fleet sustains strictly higher offered load
    #    than the single replica, interactive p99 under deadline -------------
    def max_sustained(rs):
        good = [r["concurrency"] for r in rs if r.get("sustained")]
        return max(good) if good else 0

    single_max = max_sustained([r for r in rows if r["replicas"] == 1])
    fleet_max = max_sustained(fleet_rows)
    assert fleet_max > single_max, (
        f"fleet (R={fleet_size}) sustained c={fleet_max}, single replica "
        f"sustained c={single_max} — expected the fleet to sustain "
        f"strictly higher offered load (interactive p99 <= "
        f"{INTERACTIVE_DEADLINE_S * 1e3:.0f} ms)"
    )

    store.save(
        "BENCH_fleet",
        {
            "rows": rows,
            "levels": levels,
            "num_requests": num_requests,
            "fleet_size": fleet_size,
            "interactive_deadline_ms": INTERACTIVE_DEADLINE_S * 1e3,
            "cpu_count": os.cpu_count() or 1,
            "smoke": SMOKE,
            "acceptance": {
                "single_max_sustained": single_max,
                "fleet_max_sustained": fleet_max,
                "duplicates": 0,
                "dropped": 0,
            },
            "meta": {
                "paper": "Fleet extension of the paper's availability "
                "argument: R bounded-admission pipeline replicas behind "
                "a least-loaded SLO-aware router sustain strictly "
                "higher offered load than one replica at the same "
                "interactive deadline, and keep serving while weights "
                "hot-swap replica by replica — no flush, no downtime, "
                "no dropped or duplicated requests.",
            },
        },
    )
