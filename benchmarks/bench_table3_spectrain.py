"""Table 3 — SpecTrain vs our combined mitigation."""

import pytest

from benchmarks.conftest import print_rows, run_and_save


@pytest.mark.benchmark(group="table3")
def test_table3_spectrain(benchmark):
    result = run_and_save(benchmark, "table3")
    print_rows("table3", result)

    for row in result["rows"]:
        # all methods train above chance
        for m in ("SGDM", "PB", "PB+LWPv_D+SC_D", "PB+SpecTrain"):
            assert row[m] > 0.1, (row["net"], m)
        # both mitigation methods improve on plain PB
        assert row["PB+LWPv_D+SC_D"] >= row["PB"] - 0.03, row
        assert row["PB+SpecTrain"] >= row["PB"] - 0.05, row
        # SpecTrain is competitive: within a band of the combined method
        # (paper: matches on CIFAR, slightly behind on ImageNet)
        assert row["PB+SpecTrain"] >= row["PB+LWPv_D+SC_D"] - 0.2, row
