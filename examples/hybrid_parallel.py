"""Hybrid parallelism: data-parallel replicas of a pipelined model.

Trains the same model/stream three ways and shows the replica-parity
contract from ``tests/test_replica_parity.py`` live:

1. one discrete-time pipeline at global update size ``R*U`` (the
   reference trajectory);
2. ``R`` process-runtime pipeline replicas at per-replica update size
   ``U`` — disjoint block-cyclic shards, gradients chain-reduced across
   replicas at every barrier.  Bit-identical to (1);
3. the same replicated run through ``PipelinedTrainer(...,
   replicas=R)``, which applies the paper's eq.-9 hyperparameter
   scaling to the *effective* update size ``R*U`` automatically.

Run:  PYTHONPATH=src python examples/hybrid_parallel.py
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.data import SyntheticCifar
from repro.models import small_cnn
from repro.pipeline import PipelineExecutor, ReplicatedPipelineRunner
from repro.train import PipelinedTrainer
from repro.utils import format_table

REPLICAS = 2
UPDATE = 4          # per-replica update size; global update = REPLICAS*UPDATE
SAMPLES = 64
LR, MOMENTUM, WEIGHT_DECAY = 0.05, 0.9, 1e-4


def main() -> None:
    data = SyntheticCifar(seed=0, image_size=8, train_size=128, val_size=64)
    factory = partial(small_cnn, num_classes=data.num_classes,
                      widths=(8, 16), seed=11)
    rng = np.random.default_rng(42)
    order = rng.permutation(data.x_train.shape[0])[:SAMPLES]
    X, Y = data.x_train[order], data.y_train[order]

    # 1. the reference: one pipeline, one big update of R*U samples
    ref_model = factory()
    ref = PipelineExecutor(
        ref_model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        mode="fill_drain", update_size=REPLICAS * UPDATE,
    ).train(X, Y)

    # 2. R replicas at U: disjoint shards + chain reduce at each barrier
    rep_model = factory()
    runner = ReplicatedPipelineRunner(
        rep_model, lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY,
        mode="fill_drain", update_size=UPDATE, replicas=REPLICAS,
        model_factory=factory,
    )
    rep = runner.train(X, Y)

    losses_equal = bool(np.array_equal(ref.losses, rep.losses))
    weights_equal = all(
        np.array_equal(a.data, b.data)
        for a, b in zip(ref_model.parameters(), rep_model.parameters())
    )
    print(format_table(
        [
            {
                "run": f"1 pipeline, update {REPLICAS * UPDATE}",
                "updates": ref.updates_per_stage[0],
                "mean_loss": ref.mean_loss,
            },
            {
                "run": f"{REPLICAS} replicas, update {UPDATE}",
                "updates": rep.updates_per_stage[0],
                "mean_loss": rep.mean_loss,
            },
        ],
        title="Replica parity (fill_drain)",
    ))
    print(f"\nper-sample losses bit-identical: {losses_equal}")
    print(f"final weights bit-identical:     {weights_equal}")
    assert losses_equal and weights_equal, "replica parity violated"

    # 3. the trainer front-end: eq. 9 keys off the effective R*U update
    trainer = PipelinedTrainer(
        factory(), data, mode="fill_drain", update_size=UPDATE,
        runtime="process", replicas=REPLICAS, seed=0,
        model_factory=factory,
    )
    print(f"\nPipelinedTrainer(replicas={REPLICAS}): eq.-9 scaled "
          f"lr={trainer.hyperparams.lr:.4g} for effective update "
          f"{REPLICAS * UPDATE} (engine update_size="
          f"{trainer.executor.update_size})")
    history = trainer.train_epochs(epochs=1)
    print(f"one epoch through {REPLICAS} replicas: "
          f"val_acc={history.final_val_acc:.3f}")
    print("\n(pb/1f1b replicas skip the reduce and average weight deltas "
          "at the drain barrier instead — see README 'Hybrid "
          "parallelism'.)")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
