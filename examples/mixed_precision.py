"""Mixed precision end to end: train float32/bf16, serve int8.

Walks the :mod:`repro.precision` subsystem through one small workload:

1. a **float64 reference** run (the hex-exact mode — byte-for-byte the
   engine's behavior before precision existed);
2. the same run in **float32** on the process runtime — float32 BLAS
   kernels, every shared-memory ring slot half the bytes, loss curve
   inside the policy tolerance, control-plane pipe traffic printed
   from ``RuntimeStats.control``;
3. the same run in **bf16** (bf16-storage/fp32-compute emulation) with
   a :class:`~repro.precision.LossScaler` on a standalone ``SGDM`` to
   show the bit-neutral overflow skip;
4. the trained weights checkpointed and served back **int8-quantized**
   via ``InferenceSession.from_checkpoint(precision="int8")``, logits
   compared against the float64 serving session.

Run with::

    PYTHONPATH=src python examples/mixed_precision.py
"""

import os
import tempfile
from functools import partial

import numpy as np

from repro.models.simple import small_cnn
from repro.nn import Parameter
from repro.optim import SGDM
from repro.pipeline import PipelineExecutor, make_pipeline_engine
from repro.pipeline.checkpoint import capture_checkpoint, save_checkpoint
from repro.precision import LossScaler, resolve_precision
from repro.serve import InferenceSession

factory = partial(small_cnn, num_classes=4, widths=(4, 8), seed=2024)
rng = np.random.default_rng(99)
X = rng.normal(size=(32, 3, 8, 8))
Y = rng.integers(0, 4, size=32)
common = dict(lr=0.05, momentum=0.9, mode="gpipe", update_size=8,
              micro_batch_size=8)

# -- 1. float64 reference ----------------------------------------------------

ref_engine = PipelineExecutor(factory(), precision="float64", **common)
ref = ref_engine.train(X, Y)
print(f"float64 sim:      mean loss {ref.mean_loss:.6f} (reference)")

# -- 2. float32 on the process runtime ---------------------------------------

engine32 = make_pipeline_engine(
    "process", factory(), lockstep=True, precision="float32",
    model_factory=factory, **common,
)
got = engine32.train(X, Y)
policy = resolve_precision("float32")
dev = np.max(np.abs(np.asarray(got.losses) - np.asarray(ref.losses)))
assert np.allclose(got.losses, ref.losses,
                   rtol=policy.loss_rtol, atol=policy.loss_atol)
control = got.runtime.control
print(f"float32 process:  mean loss {got.mean_loss:.6f} "
      f"(max dev {dev:.2e}, tolerance rtol={policy.loss_rtol})")
print(f"  control plane:  {control['msgs_per_step']:.2f} pipe msgs/step "
      f"vs {control['baseline_msgs_per_step']} baseline "
      f"(ack every {control['ack_interval']} steps)")
for p in engine32.model.parameters():
    assert p.data.dtype == np.float32

# -- 3. bf16 + dynamic loss scaling ------------------------------------------

bf16 = PipelineExecutor(factory(), precision="bf16", **common).train(X, Y)
policy = resolve_precision("bf16")
assert np.allclose(bf16.losses, ref.losses,
                   rtol=policy.loss_rtol, atol=policy.loss_atol)
print(f"bf16 sim:         mean loss {bf16.mean_loss:.6f} "
      f"(tolerance rtol={policy.loss_rtol})")

scaler = LossScaler(init_scale=2.0**10)
params = [Parameter(rng.normal(size=(8, 4)).astype(np.float32))]
opt = SGDM(params, lr=0.05, momentum=0.9, precision="float32",
           loss_scaler=scaler)
before = params[0].data.tobytes()
params[0].grad = np.full_like(params[0].data, np.inf)  # simulated overflow
opt.step()
assert params[0].data.tobytes() == before  # bit-neutral skip
print(f"loss scaler:      overflow skipped bit-neutrally, scale "
      f"{2.0**10:.0f} -> {scaler.scale:.0f}")

# -- 4. serve the trained weights int8-quantized -----------------------------

with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "train.ckpt")
    save_checkpoint(path, capture_checkpoint(ref_engine))
    serve_kw = dict(runtime="sim", micro_batch=8, sample_shape=(3, 8, 8))
    s64 = InferenceSession.from_checkpoint(path, factory, **serve_kw)
    s8 = InferenceSession.from_checkpoint(path, factory, precision="int8",
                                          **serve_kw)
    Xq = rng.normal(size=(8, 3, 8, 8))
    out64 = np.asarray(s64.infer(Xq).outputs, dtype=np.float64)
    out8 = np.asarray(s8.infer(Xq).outputs, dtype=np.float64)
    agree = np.mean(np.argmax(out64, axis=1) == np.argmax(out8, axis=1))
    print(f"int8 serving:     {s8.describe()}")
    print(f"  logits max |dev| {np.max(np.abs(out8 - out64)):.4f} vs "
          f"float64 serving; argmax agreement {agree:.0%}")
