"""Pipeline schedules, utilization and delay structure (Figures 1-2).

Renders fill-and-drain vs pipelined-backpropagation occupancy grids,
tabulates utilization for the paper's networks (eq. 1), and prints the
per-stage delay law for a real stage-partitioned model.

Run:  python examples/pipeline_schedules.py
"""

from __future__ import annotations

from repro.models import build_model, PAPER_STAGE_COUNTS
from repro.pipeline import (
    fill_drain_occupancy,
    fill_drain_utilization,
    pb_occupancy,
    pb_utilization,
    render_occupancy,
    schedule_utilization,
    stage_delay_table,
    utilization_upper_bound,
)
from repro.utils import format_table


def schedules() -> None:
    print("Fill-and-drain mini-batch SGD, 4 stages, batch 3, 2 batches")
    print("(F forward, B backward, X both, . idle):\n")
    occ = fill_drain_occupancy(num_stages=4, batch_size=3, num_batches=2)
    print(render_occupancy(occ))
    print(f"utilization: {schedule_utilization(occ):.3f}\n")

    print("Pipelined backpropagation, 4 stages, continuous stream:")
    occ = pb_occupancy(num_stages=4, num_samples=20)
    print(render_occupancy(occ))
    print(f"utilization over 20 samples: {schedule_utilization(occ):.3f} "
          "(approaches 1 as the stream grows)\n")


def utilization_table() -> None:
    rows = []
    for net, S in PAPER_STAGE_COUNTS.items():
        rows.append(
            {
                "net": net,
                "stages": S,
                "fill_drain@N=32": fill_drain_utilization(S, 32),
                "eq1_bound@N=32": utilization_upper_bound(S, 32),
                "PB (50k stream)": pb_utilization(S, 50_000),
            }
        )
    print(format_table(rows, title="Utilization by network (paper stage "
                                   "counts)"))
    print()


def delay_structure() -> None:
    model = build_model("rn20")
    rows = stage_delay_table(model)
    print(f"{model.name}: {model.num_stages} stages; per-stage gradient "
          "delay 2(S-1-s) in samples (first/last stages shown):")
    print(format_table(rows[:5] + rows[-5:]))


if __name__ == "__main__":
    schedules()
    utilization_table()
    delay_structure()
