"""Pipeline schedules, utilization and delay structure (Figures 1-2).

Renders the occupancy grids of all four schedules the unified engine
supports (``pb``, ``fill_drain``, ``gpipe``, ``1f1b``), runs each of them
through the cycle-accurate executor on one tiny model for a numeric
side-by-side, tabulates utilization for the paper's networks (eq. 1),
prints the per-stage delay law for a real stage-partitioned model, and
finishes with the concurrent multi-worker runtime (``--runtime
threaded``): lockstep bit-exactness vs the simulator, then a
free-running run with *measured* per-stage busy fractions.

Run:  python examples/pipeline_schedules.py
"""

from __future__ import annotations

import numpy as np

from repro.models import build_model, small_cnn, PAPER_STAGE_COUNTS
from repro.pipeline import (
    ConcurrentPipelineRunner,
    PipelineExecutor,
    SCHEDULE_NAMES,
    fill_drain_occupancy,
    fill_drain_utilization,
    gpipe_occupancy,
    make_schedule,
    one_f_one_b_occupancy,
    pb_occupancy,
    pb_utilization,
    render_occupancy,
    schedule_utilization,
    stage_delay_table,
    utilization_upper_bound,
)
from repro.utils import format_table


def schedules() -> None:
    print("Fill-and-drain mini-batch SGD, 4 stages, batch 3, 2 batches")
    print("(F forward, B backward, X both, . idle):\n")
    occ = fill_drain_occupancy(num_stages=4, batch_size=3, num_batches=2)
    print(render_occupancy(occ))
    print(f"utilization: {schedule_utilization(occ):.3f}\n")

    print("Pipelined backpropagation, 4 stages, continuous stream:")
    occ = pb_occupancy(num_stages=4, num_samples=20)
    print(render_occupancy(occ))
    print(f"utilization over 20 samples: {schedule_utilization(occ):.3f} "
          "(approaches 1 as the stream grows)\n")


def schedule_zoo() -> None:
    """All four schedules side by side: timing grids, then numerics."""
    print("=" * 64)
    print("Schedule zoo — one engine, four schedules")
    print("=" * 64)

    print("\ngpipe, 4 stages, 3 micro-batches/update, 2 updates")
    print("(each cell is a vectorized micro-batch op, not one sample):")
    occ = gpipe_occupancy(num_stages=4, num_micro_batches=3, num_batches=2)
    print(render_occupancy(occ))
    print(f"slot utilization: {schedule_utilization(occ):.3f} "
          "(= fill/drain at micro-batch granularity)\n")

    print("1f1b, 4 stages, continuous stream (PB timing, PipeDream weight")
    print("stashing — the grid is identical to pb, the weights are not):")
    occ = one_f_one_b_occupancy(num_stages=4, num_samples=20)
    print(render_occupancy(occ))
    print()

    # numeric side-by-side through the cycle-accurate executor
    n, update_size, micro = 64, 8, 4
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 10, size=n)
    rows = []
    for name in SCHEDULE_NAMES:
        sched = make_schedule(
            name, update_size=update_size, micro_batch_size=micro
        )
        model = small_cnn(num_classes=10, widths=(4, 8), seed=42)
        stats = PipelineExecutor(
            model, lr=0.02, momentum=0.9, schedule=sched
        ).train(X, Y)
        rows.append(
            {
                "schedule": name,
                "update_size": sched.update_size,
                "micro_batch": sched.micro_batch,
                "stashing": sched.stash_weights,
                "time_steps": stats.time_steps,
                "utilization": round(stats.utilization, 4),
                "mean_loss": round(stats.mean_loss, 4),
            }
        )
    print(format_table(
        rows,
        title=f"{n} samples through a small_cnn (same stream, same init)",
    ))
    print(
        "\npb/1f1b: per-gradient updates, continuous injection (high\n"
        "utilization; 1f1b additionally stashes forward weights so each\n"
        "sample's backward is consistent).  fill_drain/gpipe: synchronous\n"
        "averaged updates; gpipe moves micro-batches as single (B, ...)\n"
        "vectorized ops, finishing the same stream in fewer steps.\n"
    )


def utilization_table() -> None:
    rows = []
    for net, S in PAPER_STAGE_COUNTS.items():
        rows.append(
            {
                "net": net,
                "stages": S,
                "fill_drain@N=32": fill_drain_utilization(S, 32),
                "eq1_bound@N=32": utilization_upper_bound(S, 32),
                "PB (50k stream)": pb_utilization(S, 50_000),
            }
        )
    print(format_table(rows, title="Utilization by network (paper stage "
                                   "counts)"))
    print()


def delay_structure() -> None:
    model = build_model("rn20")
    rows = stage_delay_table(model)
    print(f"{model.name}: {model.num_stages} stages; per-stage gradient "
          "delay 2(S-1-s) in samples (first/last stages shown):")
    print(format_table(rows[:5] + rows[-5:]))


def threaded_runtime() -> None:
    """The concurrent runtime: same schedules, real worker threads.

    ``--runtime threaded`` (on the experiments CLI and the trainer)
    swaps the discrete-time simulator for
    :class:`~repro.pipeline.runtime.ConcurrentPipelineRunner` — one
    worker thread per stage, packets through per-stage queues.

    * **lockstep** (``lockstep=True``): a per-time-step barrier makes
      the run bit-exact with the simulator for every schedule.  Use it
      whenever reproducibility matters (goldens, regression tests,
      paper-number regeneration).
    * **free-running** (the default for ``--runtime threaded``): no
      barrier; stages run the moment a packet arrives.  ``pb``/``1f1b``
      trajectories then depend on thread timing (staleness is still
      bounded by eq. 5 — never worse than the model), while
      ``fill_drain``/``gpipe`` stay exact because they only update on a
      fully drained pipeline.  Use it to *measure* busy/idle wall-clock
      per stage rather than model it.
    """
    print("=" * 64)
    print("Concurrent runtime — lockstep parity, then measured busy time")
    print("=" * 64)
    n = 48
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, 3, 8, 8))
    Y = rng.integers(0, 10, size=n)

    sim_model = small_cnn(num_classes=10, widths=(4, 8), seed=42)
    sim = PipelineExecutor(
        sim_model, lr=0.02, momentum=0.9, mode="pb"
    ).train(X, Y)
    lock_model = small_cnn(num_classes=10, widths=(4, 8), seed=42)
    lock = ConcurrentPipelineRunner(
        lock_model, lr=0.02, momentum=0.9, mode="pb", lockstep=True
    ).train(X, Y)
    print(
        "\nlockstep vs simulator (pb): losses bit-identical ="
        f" {bool(np.array_equal(sim.losses, lock.losses))}"
    )

    free_model = small_cnn(num_classes=10, widths=(4, 8), seed=42)
    runner = ConcurrentPipelineRunner(
        free_model, lr=0.02, momentum=0.9, mode="pb", lockstep=False
    )
    stats = runner.train(X, Y)
    rt = stats.runtime
    print(
        f"free-running (pb, {n} samples): wall {rt.wall_seconds*1e3:.1f} ms,"
        f" measured per-stage busy fractions below (modeled utilization"
        f" {stats.utilization:.3f}):"
    )
    print(format_table(rt.summary_rows()))

    # the process backend: same contract, stages in separate processes,
    # packets through shared-memory rings (zero-copy, no pickling).  The
    # factory keeps this portable: non-Linux hosts default to spawn,
    # whose workers rebuild their stage from it
    from functools import partial

    from repro.pipeline import ProcessPipelineRunner

    factory = partial(small_cnn, num_classes=10, widths=(4, 8), seed=42)
    proc = ProcessPipelineRunner(
        factory(), lr=0.02, momentum=0.9, mode="pb", lockstep=True,
        model_factory=factory,
    ).train(X, Y)
    print(
        "process backend, lockstep vs simulator (pb): losses "
        f"bit-identical = {bool(np.array_equal(sim.losses, proc.losses))}"
        f" (backend={proc.runtime.backend})"
    )
    print(
        "\nDeterminism caveats: free-running pb/1f1b losses and weights\n"
        "vary run to run (thread timing decides how fresh each forward's\n"
        "weights are, within the eq.-5 ceiling); fill_drain/gpipe stay\n"
        "exact.  Lockstep is always bit-exact with the simulator.\n"
    )


if __name__ == "__main__":
    schedules()
    schedule_zoo()
    utilization_table()
    delay_structure()
    threaded_runtime()
