"""Appendix-A memory/communication analysis for the paper's networks.

Compares per-worker activation memory and communication volume between
data parallelism and fine-grained pipeline parallelism for the real
stage-partitioned models.

Run:  python examples/memory_analysis.py
"""

from __future__ import annotations

from repro.models import build_model
from repro.pipeline import (
    batch_parallel_activation_elements,
    data_parallel_comm_per_update,
    pipeline_comm_per_step,
    pipeline_cost_model,
)
from repro.utils import format_table


def main() -> None:
    rows = []
    for name, shape in [("rn20", (3, 32, 32)), ("vgg11", (3, 32, 32))]:
        model = build_model(name)
        cm = pipeline_cost_model(model, shape)
        comm = pipeline_comm_per_step(model, shape)
        rows.append(
            {
                "net": name,
                "stages": model.num_stages,
                "params": model.num_parameters(),
                "pipe_stash_total": cm.total_stash_elements,
                "pipe_stash_peak_stage": cm.peak_stage_stash,
                "bp_per_worker(B=1)": batch_parallel_activation_elements(
                    model, shape, 1
                ),
                "dp_comm/update": data_parallel_comm_per_update(model),
                "pipe_comm/step(max)": max(comm),
            }
        )
    print(format_table(rows, title="Appendix-A cost model (elements)"))

    model = build_model("rn20")
    cm = pipeline_cost_model(model, (3, 32, 32))
    print("\nPer-stage stash profile for rn20 (first worker stores for "
          "~2S steps, last for none):")
    picks = cm.stage_costs[::6] + [cm.stage_costs[-1]]
    print(format_table(
        [
            {
                "stage": sc.index,
                "name": sc.name,
                "in_flight": sc.max_in_flight,
                "stash_elements": sc.stash_elements,
            }
            for sc in picks
        ]
    ))


if __name__ == "__main__":
    main()
