"""Durable training: checkpoint a pipelined run, "crash" it, resume it.

Demonstrates the :mod:`repro.pipeline.checkpoint` subsystem end to end:

1. a golden run trains straight through (same checkpoint cadence, no
   files) and records its final weight fingerprint;
2. a second identical run snapshots to disk every ``EVERY`` samples and
   is abandoned after the first snapshot — simulating a dead job;
3. a *freshly built* engine and data stream resume from the file and
   finish the run.

The resumed run lands on the **hex-identical** weight fingerprint: the
checkpoint holds every stage's weights/velocity/step counters plus the
data-stream cursor ``(epoch, index, rng state)``, and snapshots happen
only at drain barriers, so nothing about the trajectory depends on the
interruption.  The process runtime additionally survives SIGKILLed stage
workers *without* touching the disk checkpoint (``max_restarts``): it
respawns all workers from the entry drain barrier and replays the
partial batch.

Run with::

    PYTHONPATH=src python examples/durable_training.py
"""

import os
import tempfile
from functools import partial

from repro.data.loader import ResumableSampleStream
from repro.data.synthetic import SyntheticCifar
from repro.models.simple import small_cnn
from repro.pipeline import DurableRun, model_fingerprint
from repro.pipeline.runtime import make_pipeline_engine
from repro.utils.rng import new_rng

TOTAL = 96  # samples to train
EVERY = 32  # checkpoint cadence (a multiple of the update size)

ds = SyntheticCifar(seed=0, image_size=8, train_size=64, val_size=32)
factory = partial(small_cnn, num_classes=ds.num_classes, widths=(8, 16),
                  seed=11)


def build():
    """Fresh model + engine + stream, identically configured each time —
    the checkpoint rebinds their state."""
    model = factory()
    engine = make_pipeline_engine(
        "process", model, lr=0.05, momentum=0.9, mode="pb", lockstep=True,
        model_factory=factory, max_restarts=2,
    )
    epochs = -(-TOTAL // ds.x_train.shape[0])
    stream = ResumableSampleStream(
        ds.x_train, ds.y_train, epochs, new_rng(7)
    )
    return model, engine, stream


# 1. the golden: uninterrupted, cadence-matched
gold_model, gold_engine, gold_stream = build()
DurableRun(gold_engine, gold_stream, checkpoint_every=EVERY).run(
    max_samples=TOTAL
)
golden = model_fingerprint(gold_model)
print(f"golden run      : {gold_engine.samples_completed} samples, "
      f"weights {golden[:16]}…")

with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "run.ckpt")

    # 2. the "crashed" run: snapshot to disk, die after the first one
    model, engine, stream = build()
    DurableRun(
        engine, stream, checkpoint_path=path, checkpoint_every=EVERY
    ).run(max_samples=EVERY)
    print(f"interrupted run : died at {engine.samples_completed} samples "
          f"(checkpoint on disk)")

    # 3. resume a fresh engine + stream from the file and finish
    model, engine, stream = build()
    run = DurableRun.resume(path, engine, stream)
    run.run(max_samples=TOTAL - engine.samples_completed)
    resumed = model_fingerprint(model)
    print(f"resumed run     : {engine.samples_completed} samples, "
          f"weights {resumed[:16]}…")

assert resumed == golden, "resume parity violated!"
print("resume parity   : hex-identical final weights")
