"""The paper's convex-quadratic staleness analysis, in your terminal.

Reproduces the essence of Figures 4-7: dominant-root heatmaps of delayed
SGDM with and without mitigation, the stability regions, half-life vs
condition number, and a direct simulation confirming the root analysis.

Run:  python examples/quadratic_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.quadratic import (
    ConvexQuadratic,
    GDM,
    characteristic_coefficients,
    condition_number_sweep,
    dominant_root,
    empirical_rate,
    run_delayed_quadratic,
    simulate_recurrence,
)
from repro.quadratic.polynomials import combined_method, lwp_method, sc_method
from repro.quadratic.roots import rate_grid
from repro.core.compensation import spike_coefficients
from repro.utils import ascii_heatmap, format_table
from repro.utils.render import format_series


def heatmaps() -> None:
    """Figure-4-style heatmaps (X marks the unstable region)."""
    els = np.logspace(-6, 0, 49)
    u = np.linspace(0, 4, 17)
    ms = 1.0 - 10.0 ** (-u)
    for name, method in [
        ("GDM, delay=1", GDM),
        ("SC_D, delay=1", sc_method()),
        ("LWPw_D+SC_D, delay=1", combined_method()),
    ]:
        grid = rate_grid(method, 1, els, ms)
        grid = np.where(grid < 1.0, grid, np.nan)
        print(
            ascii_heatmap(
                grid[::-1],
                title=f"\n|r_max| for {name} "
                "(x: eta*lambda 1e-6..1, y: momentum 1-1e-4 .. 0)",
                vmin=0.9,
                vmax=1.0,
            )
        )


def halflife_table() -> None:
    """Figure-5-style: optimal half-life vs condition number."""
    methods = {
        "GDM D=1": GDM,
        "SC_D": sc_method(),
        "LWP_D": lwp_method(),
        "LWPw_D+SC_D": combined_method(),
    }
    kappas = np.logspace(1, 5, 5)
    res = condition_number_sweep(methods, kappas, delay=1, points_per_decade=8)
    print("\nOptimal error half-life on a convex quadratic (delay = 1):")
    print(format_series(kappas, res, x_name="kappa", floatfmt="{:.4g}"))


def roots_vs_simulation() -> None:
    """The dominant root predicts the simulated convergence rate."""
    rows = []
    m, D, el = 0.9, 4, 0.01
    for name, (a, b, T) in {
        "GDM": (1.0, 0.0, 0.0),
        "SC_D": (*spike_coefficients(m, D), 0.0),
        "LWP_D": (1.0, 0.0, float(D)),
        "combined": (*spike_coefficients(m, D), float(D)),
    }.items():
        root = dominant_root(
            characteristic_coefficients(el, m, D, a=a, b=b, T=T)
        )
        emp = empirical_rate(
            simulate_recurrence(el, m, D, a=a, b=b, T=T, steps=4000), tail=800
        )
        rows.append({"method": name, "predicted_rate": root, "simulated": emp})
    print()
    print(format_table(rows, title="Characteristic root vs simulation "
                                   "(eta*lambda=0.01, m=0.9, D=4)"))


def empirical_quadratic() -> None:
    """Full-spectrum run: mitigation rescues an ill-conditioned problem."""
    quad = ConvexQuadratic.log_spectrum(kappa=1e3, n=32)
    m, D, lr = 0.9, 6, 0.02
    plain = run_delayed_quadratic(quad, lr, m, D, steps=1500)
    a, b = spike_coefficients(m, D)
    combo = run_delayed_quadratic(quad, lr, m, D, a=a, b=b, T=float(D),
                                  steps=1500)
    print(f"\nkappa=1e3 quadratic, delay {D}: after 1500 steps error "
          f"plain={plain[-1]:.2e} vs combined={combo[-1]:.2e} "
          f"({plain[-1] / combo[-1]:.0f}x better)")


if __name__ == "__main__":
    heatmaps()
    halflife_table()
    roots_vs_simulation()
    empirical_quadratic()
