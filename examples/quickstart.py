"""Quickstart: train a small CNN with fine-grained pipelined backprop.

Builds a stage-graph model, streams samples through the cycle-accurate
pipeline executor at batch size one (the paper's setting), and compares
plain PB against PB with the combined mitigation (LWPv_D + SC_D).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MitigationConfig
from repro.data import SyntheticCifar
from repro.models import resnet_tiny
from repro.optim import HyperParams
from repro.train import PipelinedTrainer
from repro.utils import format_table

# A hotter reference than He et al. so a seconds-long demo shows movement;
# eq. 9 scales it to update size one automatically.
REFERENCE = HyperParams(lr=0.5, momentum=0.9, batch_size=32, weight_decay=1e-4)


def main() -> None:
    # A CIFAR-like synthetic task (no network access needed) and a small
    # pre-activation ResNet expressed as pipeline stages.
    data = SyntheticCifar(seed=0, image_size=8, train_size=512, val_size=256)
    print(data)

    model = resnet_tiny(num_classes=data.num_classes, widths=(4, 8, 16), seed=0)
    print(f"model: {model.name} with {model.num_stages} pipeline stages, "
          f"{model.num_parameters()} parameters")
    print(f"max gradient delay: {2 * (model.num_stages - 1)} samples\n")

    rows = []
    for mitigation in (MitigationConfig.none(), MitigationConfig.lwp_plus_sc()):
        m = resnet_tiny(num_classes=data.num_classes, widths=(4, 8, 16), seed=0)
        trainer = PipelinedTrainer(
            m, data, mitigation=mitigation, reference=REFERENCE, seed=0
        )
        print(f"training with {mitigation.name} "
              f"(lr={trainer.hyperparams.lr:.2e}, "
              f"m={trainer.hyperparams.momentum:.5f}, update size 1)...")
        history = trainer.train_epochs(epochs=3)
        rows.append(
            {
                "method": mitigation.name,
                "final_val_acc": history.final_val_acc,
                "best_val_acc": history.best_val_acc,
                "train_loss": history.final_train_loss,
            }
        )

    print()
    print(format_table(rows, title="Pipelined backpropagation quickstart"))
    print("\n(PB+LWPv_D+SC_D mitigates the per-stage gradient staleness "
          "2(S-1-s) that plain PB suffers.)")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
