"""ASGD-style random-staleness simulation (Appendix G.2's closing remark).

The delay simulator accepts a random delay profile modelling asynchronous
SGD, where the master-worker round-trip makes gradient age a random
variable.  This example compares constant vs random delay of the same
mean, with and without spike compensation.

Run:  python examples/asgd_simulation.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core import (
    ConstantDelay,
    DelayedSGDM,
    MitigationConfig,
    RandomDelay,
    delayed_train_step,
)
from repro.data import SyntheticCifar, iterate_batches
from repro.models import small_cnn
from repro.optim import HyperParams
from repro.train.metrics import evaluate
from repro.utils import format_table
from repro.utils.rng import derive_seed, new_rng

STEPS = 160
BATCH = 16
REFERENCE = HyperParams(lr=0.5, momentum=0.9, batch_size=32, weight_decay=1e-4)


def run(profile, mitigation, data, tag) -> float:
    hp = REFERENCE.scaled_to(BATCH)
    model = small_cnn(num_classes=data.num_classes, widths=(8, 16), seed=3)
    opt = DelayedSGDM(
        model, lr=hp.lr, momentum=hp.momentum, weight_decay=hp.weight_decay,
        delay=profile, mitigation=mitigation, consistent=True,
    )
    rng = new_rng(derive_seed(0, "asgd", tag))
    steps = 0
    while steps < STEPS:
        for xb, yb in iterate_batches(data.x_train, data.y_train, BATCH,
                                      rng=rng):
            delayed_train_step(opt, model, xb, yb)
            steps += 1
            if steps >= STEPS:
                break
    _, acc = evaluate(model, data.x_val, data.y_val)
    return acc


def main() -> None:
    warnings.filterwarnings("ignore", category=RuntimeWarning)
    data = SyntheticCifar(seed=0, image_size=8, train_size=512, val_size=256)

    rows = []
    for label, profile_fn in [
        ("no delay", lambda: ConstantDelay(0)),
        ("constant D=2", lambda: ConstantDelay(2)),
        ("random D~U[0,4] (ASGD)", lambda: RandomDelay(0, 4, seed=9)),
    ]:
        for mname, mit in [
            ("plain", MitigationConfig.none()),
            ("SC_D", MitigationConfig.sc()),
        ]:
            acc = run(profile_fn(), mit, data, f"{label}-{mname}")
            rows.append({"staleness": label, "method": mname, "val_acc": acc})
            print(f"  {label:26s} {mname:6s} -> {acc:.3f}")
    print()
    print(format_table(rows, title="Random (ASGD) vs constant staleness"))
    print("\nNote: SC_D resolves its coefficients from each step's delay, "
          "so it adapts to the random profile automatically.")


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
