"""Serving fleet: SLO classes, least-loaded routing, live weight swap.

Demonstrates the :mod:`repro.serve.fleet` subsystem end to end:

1. train the same architecture to two different checkpoints (the
   "old" and "new" weights of a deployment);
2. stand up a 3-replica :class:`~repro.serve.fleet.FleetRouter` on the
   old checkpoint — per-replica :class:`~repro.serve.PipelineServer`
   instances behind queue-depth-aware least-loaded dispatch with
   two-class SLO admission (tight-deadline ``interactive`` vs
   throughput-oriented ``batch``);
3. drive a mixed closed loop through the router while a **rolling
   zero-downtime reload** swaps every replica onto the new checkpoint
   (drain -> restore -> fingerprint-verify -> rejoin, one replica at a
   time);
4. hit the fleet's HTTP front door (``/infer`` with a class tag,
   ``/stats``, ``/readyz``) the way an external client would;
5. print the proof: every request resolved exactly once, all replicas
   on the new fingerprint, at least one replica ready throughout.

Run with::

    PYTHONPATH=src python examples/serving_fleet.py
"""

import json
import os
import tempfile
import threading
import time
import urllib.request
from functools import partial

from repro.data.synthetic import SyntheticCifar
from repro.models.simple import small_cnn
from repro.pipeline import capture_checkpoint, save_checkpoint
from repro.pipeline.checkpoint import checkpoint_fingerprint, load_checkpoint
from repro.pipeline.runtime import make_pipeline_engine
from repro.serve import run_classed_loop
from repro.serve.fleet import FleetRouter, ReplicaSpec, rolling_reload

model_factory = partial(small_cnn, num_classes=10, widths=(8, 16), seed=11)

# -- 1. two checkpoints of the same architecture ----------------------------
ds = SyntheticCifar(seed=0, image_size=8, train_size=128, val_size=64)
tmp = tempfile.mkdtemp(prefix="serving-fleet-")
ckpts = {}
for name, n_train in (("old", 48), ("new", 96)):
    engine = make_pipeline_engine(
        "sim", model_factory(), lr=0.02, momentum=0.9, mode="pb"
    )
    engine.train(ds.x_train[:n_train], ds.y_train[:n_train])
    path = os.path.join(tmp, f"{name}.ckpt")
    save_checkpoint(path, capture_checkpoint(engine))
    ckpts[name] = path
    fp = checkpoint_fingerprint(load_checkpoint(path))
    print(f"checkpoint {name!r}: {n_train} PB samples, "
          f"fingerprint {fp[:12]}...")

# -- 2. the fleet ------------------------------------------------------------
spec = ReplicaSpec(
    model_factory=model_factory,
    sample_shape=ds.x_val.shape[1:],
    runtime="sim",             # or "threaded" / "process" per replica
    micro_batch=8,
    max_queue=8,
)

with FleetRouter(spec, num_replicas=3, checkpoint=ckpts["old"]) as router:
    print(f"fleet up: {sorted(router.replicas)} "
          f"({router.num_ready} ready)")

    # -- 3. mixed SLO load across a rolling hot-swap ------------------------
    report = {}

    def swap() -> None:
        time.sleep(0.1)                 # let traffic build first
        report["reload"] = rolling_reload(router, ckpts["new"])

    swapper = threading.Thread(target=swap)
    swapper.start()
    result = run_classed_loop(
        lambda x, slo: router.submit(x, slo).future.result(60.0),
        ds.x_val, 300, concurrency=8,
        mix={"interactive": 0.7, "batch": 0.3},
        label="fleet",
    )
    swapper.join()

    for name, cls in sorted(result.per_class.items()):
        row = cls.as_row()
        print(f"  {name:>12s}: {row['requests']:4d} requests, "
              f"p50 {row['p50_ms']:6.2f} ms, p99 {row['p99_ms']:6.2f} ms")

    rep = report["reload"]
    print(f"rolling reload: {rep.replicas_swapped} replicas swapped to "
          f"{rep.fingerprint[:12]}..., min ready observed "
          f"{rep.min_ready_observed} (never 0 = zero downtime)")

    # -- 4. the HTTP front door ---------------------------------------------
    host, port = router.serve_http()
    body = json.dumps(
        {"x": ds.x_val[0].tolist(), "class": "interactive"}
    ).encode()
    req = urllib.request.Request(
        f"http://{host}:{port}/infer", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        payload = json.loads(resp.read())
    print(f"HTTP /infer (interactive) -> {len(payload['logits'])} logits "
          f"via {payload['replica']}")
    with urllib.request.urlopen(
        f"http://{host}:{port}/readyz", timeout=10
    ) as resp:
        ready = json.loads(resp.read())
    print(f"HTTP /readyz -> ready={ready['ready']} "
          f"({ready['num_ready']}/{len(router.replicas)} replicas)")

    # -- 5. the accounting proof --------------------------------------------
    deadline = time.monotonic() + 10.0
    while router.outstanding and time.monotonic() < deadline:
        time.sleep(1e-3)
    snap = router.snapshot()
    assert snap["duplicates"] == 0 and snap["failed"] == 0
    assert snap["submitted"] == snap["resolved"]
    fps = {r["fingerprint"] for r in snap["replicas"].values()}
    print(f"accounting: submitted={snap['submitted']} "
          f"resolved={snap['resolved']} duplicates=0 failed=0; "
          f"{len(fps)} distinct fingerprint across the fleet")
print("fleet drained and stopped cleanly")
