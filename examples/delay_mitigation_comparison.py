"""Compare delay mitigations with the Appendix-G.2 flat simulator.

Trains the same CNN with a constant gradient delay under every mitigation
the paper discusses — plain delayed SGDM, weight stashing, gradient
shrinking, SC_D, LWP_D (both forms), SpecTrain, and the combined method —
and tabulates final validation accuracy.

Run:  python examples/delay_mitigation_comparison.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core import DelayedSGDM, MitigationConfig, delayed_train_step
from repro.data import SyntheticCifar, iterate_batches
from repro.models import small_cnn
from repro.optim import HyperParams
from repro.train.metrics import evaluate
from repro.utils import format_table
from repro.utils.rng import derive_seed, new_rng

DELAY = 2  # in optimizer steps at batch 16 => 32 samples of staleness
STEPS = 160
BATCH = 16
REFERENCE = HyperParams(lr=0.5, momentum=0.9, batch_size=32, weight_decay=1e-4)


def run(mitigation: MitigationConfig, consistent: bool, delay: int, data) -> float:
    hp = REFERENCE.scaled_to(BATCH)
    model = small_cnn(num_classes=data.num_classes, widths=(8, 16), seed=3)
    opt = DelayedSGDM(
        model, lr=hp.lr, momentum=hp.momentum, weight_decay=hp.weight_decay,
        delay=delay, mitigation=mitigation, consistent=consistent,
    )
    rng = new_rng(derive_seed(0, "example", mitigation.name, consistent, delay))
    steps = 0
    while steps < STEPS:
        for xb, yb in iterate_batches(data.x_train, data.y_train, BATCH,
                                      rng=rng):
            delayed_train_step(opt, model, xb, yb)
            steps += 1
            if steps >= STEPS:
                break
    _, acc = evaluate(model, data.x_val, data.y_val)
    return acc


def main() -> None:
    warnings.filterwarnings("ignore", category=RuntimeWarning)
    data = SyntheticCifar(seed=0, image_size=8, train_size=512, val_size=256)

    configs = [
        ("no delay (reference)", MitigationConfig.none(), True, 0),
        ("delayed (consistent)", MitigationConfig.none(), True, DELAY),
        ("delayed (inconsistent)", MitigationConfig.none(), False, DELAY),
        ("weight stashing", MitigationConfig.stashing(), False, DELAY),
        ("gradient shrinking", MitigationConfig.gradient_shrinking(), True, DELAY),
        ("SC_D", MitigationConfig.sc(), True, DELAY),
        ("LWP_D (velocity)", MitigationConfig.lwp("v"), True, DELAY),
        ("LWP_D (weight diff)", MitigationConfig.lwp("w"), True, DELAY),
        ("SpecTrain", MitigationConfig.spectrain(), False, DELAY),
        ("LWPv_D + SC_D", MitigationConfig.lwp_plus_sc(), True, DELAY),
    ]
    rows = []
    for label, mit, consistent, delay in configs:
        acc = run(mit, consistent, delay, data)
        rows.append({"method": label, "delay": delay, "val_acc": acc})
        print(f"  {label:24s} -> {acc:.3f}")
    print()
    print(format_table(rows, title=f"Delay mitigation comparison "
                                   f"(D={DELAY}, {STEPS} steps)"))


if __name__ == "__main__":
    np.seterr(all="ignore")
    main()
