"""Pipelined inference serving: train, checkpoint, serve, measure.

Demonstrates the :mod:`repro.serve` subsystem end to end:

1. train a small multi-stage CNN a little and checkpoint it (the PR-4
   durable format);
2. build an :class:`~repro.serve.InferenceSession` **from the
   checkpoint file** — optimizer state stripped, weights frozen onto
   eval-mode pipeline stages — and verify its serving outputs are
   bit-exact with the offline batched forward over the same packets;
3. stand up a :class:`~repro.serve.PipelineServer` (dynamic
   micro-batching: max-batch cap x coalescing deadline, bounded
   admission queue with explicit ``Overloaded`` backpressure) and
   drive it with the closed-loop load generator, against the
   sequential single-request baseline;
4. hit the stdlib HTTP endpoint the way an external client would.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

import json
import os
import tempfile
import urllib.request
from functools import partial

import numpy as np

from repro.data.synthetic import SyntheticCifar
from repro.models.simple import small_cnn
from repro.pipeline import capture_checkpoint, save_checkpoint
from repro.pipeline.runtime import make_pipeline_engine
from repro.serve import (
    InferenceSession,
    PipelineServer,
    SequentialServer,
    run_closed_loop,
)

model_factory = partial(small_cnn, num_classes=10, widths=(8, 16), seed=11)

# -- 1. train + checkpoint ---------------------------------------------------
ds = SyntheticCifar(seed=0, image_size=8, train_size=128, val_size=64)
model = model_factory()
engine = make_pipeline_engine("sim", model, lr=0.02, momentum=0.9, mode="pb")
engine.train(ds.x_train[:96], ds.y_train[:96])

tmp = tempfile.mkdtemp(prefix="serving-demo-")
ckpt_path = os.path.join(tmp, "model.ckpt")
save_checkpoint(ckpt_path, capture_checkpoint(engine))
print(f"trained 96 PB samples, checkpointed to {ckpt_path}")

# -- 2. session from the checkpoint + the parity contract --------------------
session = InferenceSession.from_checkpoint(
    ckpt_path, model_factory,
    runtime="threaded",        # or "sim" / "process"
    micro_batch=8,
    sample_shape=ds.x_val.shape[1:],
)
print(session.describe())

ref = session.forward_reference(ds.x_val, micro_batch=8)
out = session.infer(ds.x_val).outputs
assert (out == ref).all(), "serving must be bit-exact with offline forward"
print(f"parity: {out.shape[0]} serving outputs bit-exact with the "
      "offline batched forward (same packets)")

# -- 3. closed-loop load: sequential baseline vs pipelined server ------------
NUM_REQUESTS, CONCURRENCY = 300, 8

seq = SequentialServer(model)
seq_res = run_closed_loop(
    seq.infer_one, ds.x_val, NUM_REQUESTS, concurrency=CONCURRENCY,
    label="sequential",
)
seq.close()

server = PipelineServer(session, max_batch=8, max_wait=0.002, max_queue=64)
with server:
    pipe_res = run_closed_loop(
        server.infer_one, ds.x_val, NUM_REQUESTS, concurrency=CONCURRENCY,
        label="pipelined",
    )
    snap = server.stats.snapshot()

    for res in (seq_res, pipe_res):
        row = res.as_row()
        print(f"  {row['label']:>10s}: {row['throughput_rps']:8.1f} rps, "
              f"p50 {row['p50_ms']:6.2f} ms, p99 {row['p99_ms']:6.2f} ms")
    print(f"  speedup {pipe_res.throughput_rps / seq_res.throughput_rps:.2f}x"
          f" | mean batch {snap['mean_batch_size']:.1f}"
          f" | queue-wait p95 {snap['queue_wait_s']['p95'] * 1e3:.2f} ms")

    # -- 4. the HTTP front door ---------------------------------------------
    host, port = server.serve_http()
    body = json.dumps({"x": ds.x_val[0].tolist()}).encode()
    req = urllib.request.Request(
        f"http://{host}:{port}/infer", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        payload = json.loads(resp.read())
    print(f"HTTP /infer -> {len(payload['logits'])} logits in "
          f"{payload['latency_ms']:.2f} ms")
    with urllib.request.urlopen(
        f"http://{host}:{port}/stats", timeout=10
    ) as resp:
        stats = json.loads(resp.read())
    print(f"HTTP /stats -> completed={stats['completed']} "
          f"rejected={stats['rejected']} "
          f"p99={stats['latency_s']['p99'] * 1e3:.2f} ms")
print("server drained and stopped cleanly")
