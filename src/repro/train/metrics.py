"""Evaluation metrics and training-curve records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, cross_entropy, no_grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of an ``(N, K)`` logit array."""
    preds = np.asarray(logits).argmax(axis=1)
    return float((preds == np.asarray(labels)).mean())


def evaluate(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 64,
) -> tuple[float, float]:
    """Mean loss and top-1 accuracy over a dataset split (eval mode).

    An empty split returns ``(nan, nan)`` — the no-data answer — rather
    than dividing by zero; callers aggregating curves can then filter on
    finiteness instead of crashing on a degenerate val set.
    """
    was_training = getattr(model, "training", True)
    n = x.shape[0]
    if n == 0:
        return float("nan"), float("nan")
    model.eval()
    losses = []
    correct = 0
    with no_grad():
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = model(Tensor(xb))
            losses.append(float(cross_entropy(logits, yb).data) * len(yb))
            correct += int((logits.data.argmax(axis=1) == yb).sum())
    model.train(was_training)
    return float(np.sum(losses) / n), correct / n


@dataclass
class TrainingHistory:
    """Per-evaluation-point curves for one training run."""

    label: str = "run"
    samples_seen: list[int] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_acc: list[float] = field(default_factory=list)

    def record(
        self,
        samples: int,
        train_loss: float,
        val_loss: float,
        val_acc: float,
    ) -> None:
        self.samples_seen.append(int(samples))
        self.train_loss.append(float(train_loss))
        self.val_loss.append(float(val_loss))
        self.val_acc.append(float(val_acc))

    @property
    def final_val_acc(self) -> float:
        return self.val_acc[-1] if self.val_acc else float("nan")

    @property
    def best_val_acc(self) -> float:
        return max(self.val_acc) if self.val_acc else float("nan")

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "samples_seen": list(self.samples_seen),
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "val_acc": list(self.val_acc),
        }
