"""Evaluation metrics and training-curve records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of an ``(N, K)`` logit array."""
    preds = np.asarray(logits).argmax(axis=1)
    return float((preds == np.asarray(labels)).mean())


def batch_nll(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample softmax cross-entropy of an ``(N, K)`` logit array.

    One fused, allocation-light NumPy pass — the op sequence is kept
    identical to :func:`repro.tensor.tensor.cross_entropy` (max-shift,
    log-sum-exp, gather) so its values are bit-equal to what the
    Tensor-based loss computes on the same logits; the evaluation loop
    below relies on that to stay bit-exact with its pre-vectorization
    form (pinned in ``tests/test_train.py``).
    """
    z = np.asarray(logits)
    labels = np.asarray(labels).astype(np.int64).reshape(-1)
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    return -log_probs[np.arange(z.shape[0]), labels]


def evaluate(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 64,
) -> tuple[float, float]:
    """Mean loss and top-1 accuracy over a dataset split (eval mode).

    The split streams through the model in vectorized ``(B, ...)``
    batches of ``batch_size`` samples — one forward op and one fused
    loss pass per batch, never a per-sample loop (the per-sample form
    is ~the batch speedup slower; ``benchmarks/bench_eval_vectorized.py``
    records the measured factor).  The per-batch reduction
    (``mean * len`` summed, divided by ``n``) is kept bit-identical to
    the historical implementation so curves pinned before the
    vectorization still match hex for hex.

    An empty split returns ``(nan, nan)`` — the no-data answer — rather
    than dividing by zero; callers aggregating curves can then filter on
    finiteness instead of crashing on a degenerate val set.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    was_training = getattr(model, "training", True)
    n = x.shape[0]
    if n == 0:
        return float("nan"), float("nan")
    model.eval()
    losses = []
    correct = 0
    with no_grad():
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = model(Tensor(xb)).data
            losses.append(float(batch_nll(logits, yb).mean()) * len(yb))
            correct += int((logits.argmax(axis=1) == yb).sum())
    model.train(was_training)
    return float(np.sum(losses) / n), correct / n


@dataclass
class TrainingHistory:
    """Per-evaluation-point curves for one training run."""

    label: str = "run"
    samples_seen: list[int] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_acc: list[float] = field(default_factory=list)

    def record(
        self,
        samples: int,
        train_loss: float,
        val_loss: float,
        val_acc: float,
    ) -> None:
        self.samples_seen.append(int(samples))
        self.train_loss.append(float(train_loss))
        self.val_loss.append(float(val_loss))
        self.val_acc.append(float(val_acc))

    @property
    def final_val_acc(self) -> float:
        return self.val_acc[-1] if self.val_acc else float("nan")

    @property
    def best_val_acc(self) -> float:
        return max(self.val_acc) if self.val_acc else float("nan")

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "samples_seen": list(self.samples_seen),
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "val_acc": list(self.val_acc),
        }
