"""Training harness: batch trainer, pipelined trainer, metrics."""

from repro.train.metrics import accuracy, evaluate, TrainingHistory
from repro.train.trainer import Trainer
from repro.train.pb_trainer import PipelinedTrainer

__all__ = [
    "accuracy",
    "evaluate",
    "TrainingHistory",
    "Trainer",
    "PipelinedTrainer",
]
