"""Pipelined-backpropagation trainer (drives the cycle-accurate executor).

Implements the paper's experimental protocol: hyperparameters come from a
*reference* batch-size configuration and are scaled to update size one via
eq. 9, the model trains sample-by-sample through the fine-grained pipeline,
and evaluation runs on the (master) weights between epochs.
"""

from __future__ import annotations

from typing import Callable

from repro.core.mitigation import MitigationConfig
from repro.data.loader import ResumableSampleStream
from repro.data.synthetic import Dataset
from repro.models.arch import StageGraphModel
from repro.optim.scaling import HE_CIFAR_REFERENCE, HyperParams
from repro.pipeline.runtime import make_pipeline_engine
from repro.pipeline.schedule import Schedule, make_schedule
from repro.train.metrics import TrainingHistory, evaluate
from repro.utils.rng import derive_seed, new_rng


class PipelinedTrainer:
    """Train a stage-graph model through the pipeline engine.

    Parameters
    ----------
    model:
        A :class:`StageGraphModel`.
    dataset:
        Train/val arrays.
    mitigation:
        The delay mitigation (default: none — plain PB).
    reference:
        Reference hyperparameters, scaled via eq. 9 to the schedule's
        effective update size — 1 for the per-gradient schedules (``pb``,
        ``1f1b``), ``update_size`` for the synchronous ones
        (``fill_drain``, ``gpipe``) — (default: the He et al. CIFAR
        setup).
    mode:
        Schedule name: ``"pb"``, ``"fill_drain"``, ``"gpipe"`` or
        ``"1f1b"`` (``update_size`` / ``micro_batch_size`` apply to the
        synchronous schedules).
    schedule:
        A ready-made :class:`~repro.pipeline.schedule.Schedule`; wins
        over ``mode`` when given.
    runtime:
        ``"sim"`` (default) trains through the discrete-time
        :class:`~repro.pipeline.executor.PipelineExecutor`;
        ``"threaded"`` through the concurrent
        :class:`~repro.pipeline.runtime.ConcurrentPipelineRunner` with
        one worker thread per stage; ``"process"`` through the
        :class:`~repro.pipeline.runtime.ProcessPipelineRunner` with one
        worker *process* per stage and shared-memory packet transport
        (the only backend whose stages execute on separate cores).
    lockstep:
        Only with the concurrent runtimes: ``True`` adds the
        per-time-step barrier that makes the run bit-exact with the
        simulator; the default ``False`` free-runs (fastest, but
        ``pb``/``1f1b`` trajectories then depend on worker timing — see
        ``runtime.py``).
    replicas:
        Hybrid parallelism: ``R > 1`` (process runtime only) trains
        ``R`` data-parallel pipeline replicas through a
        :class:`~repro.pipeline.runtime.ReplicatedPipelineRunner`.  For
        the synchronous schedules the *effective* update size becomes
        ``R * update_size`` (gradients reduce across replicas at every
        barrier), and the eq.-9 hyperparameter scaling keys off that
        effective size — so ``R`` replicas at update size ``U`` train
        the exact trajectory of one pipeline at ``R*U``.
    engine_kwargs:
        Extra engine-specific keyword arguments (e.g. ``model_factory``
        / ``start_method`` for the process backend).
    """

    def __init__(
        self,
        model: StageGraphModel,
        dataset: Dataset,
        mitigation: MitigationConfig | None = None,
        reference: HyperParams = HE_CIFAR_REFERENCE,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        augment=None,
        lr_schedule: Callable[[int], float] | None = None,
        seed: int = 0,
        label: str | None = None,
        schedule: Schedule | None = None,
        runtime: str = "sim",
        lockstep: bool = False,
        replicas: int = 1,
        **engine_kwargs,
    ):
        self.model = model
        self.dataset = dataset
        self.mitigation = mitigation or MitigationConfig.none()
        self.replicas = int(replicas)
        if schedule is None:
            schedule = make_schedule(
                mode, update_size=update_size, micro_batch_size=micro_batch_size
            )
        elif self.replicas > 1:
            raise ValueError(
                "replicas > 1 derives per-replica and global schedules "
                "from mode/update_size/micro_batch_size; a ready-made "
                "schedule object cannot be split across replicas"
            )
        self.schedule = schedule
        # eq. 9 scales to the *effective* update size: synchronous
        # replicas reduce into one global update of R*U samples, while
        # the asynchronous schedules keep per-gradient updates per
        # replica (update size unchanged)
        effective_update = schedule.update_size
        if self.replicas > 1 and not schedule.update_after_backward(0):
            effective_update *= self.replicas
        scaled = reference.scaled_to(effective_update)
        self.hyperparams = scaled
        self.runtime = runtime
        kwargs = dict(
            lr=scaled.lr,
            momentum=scaled.momentum,
            weight_decay=scaled.weight_decay,
            mitigation=self.mitigation,
            lr_schedule=lr_schedule,
            **engine_kwargs,
        )
        if self.replicas > 1:
            kwargs.update(
                mode=mode,
                update_size=update_size,
                micro_batch_size=micro_batch_size,
                replicas=self.replicas,
            )
        else:
            kwargs["schedule"] = schedule
        self.executor = make_pipeline_engine(
            runtime, model, lockstep=lockstep, **kwargs
        )
        self.augment = augment
        self.rng = new_rng(derive_seed(seed, "pb_trainer"))
        self.history = TrainingHistory(label=label or self.mitigation.name)

    def _stream(self, epochs: int) -> ResumableSampleStream:
        """The lazy shuffled sample stream for this trainer's dataset —
        one epoch in memory at a time, resumable cursor for the
        checkpoint subsystem."""
        ds = self.dataset
        return ResumableSampleStream(
            ds.x_train, ds.y_train, epochs, self.rng, augment=self.augment
        )

    def train_epochs(self, epochs: int, eval_every: int = 1) -> TrainingHistory:
        """Stream ``epochs`` shuffled passes through the pipeline.

        ``eval_every`` must be >= 1 (the final epoch is always
        evaluated); pass a value larger than ``epochs`` to evaluate only
        at the end.
        """
        if eval_every < 1:
            raise ValueError(
                f"eval_every must be >= 1, got {eval_every} (use a value "
                "larger than epochs to evaluate only at the end)"
            )
        ds = self.dataset
        stream = self._stream(int(epochs))
        per_epoch = stream.samples_per_epoch
        for epoch in range(int(epochs)):
            self.model.train()
            xs, ys = stream.next_chunk(per_epoch)
            stats = self.executor.train(xs, ys)
            if (epoch + 1) % eval_every == 0 or epoch == epochs - 1:
                val_loss, val_acc = evaluate(self.model, ds.x_val, ds.y_val)
                self.history.record(
                    self.executor.samples_completed,
                    stats.mean_loss,
                    val_loss,
                    val_acc,
                )
        return self.history

    def train_samples(self, num_samples: int) -> TrainingHistory:
        """Stream exactly ``num_samples`` (with reshuffled epochs) and
        evaluate once at the end."""
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        ds = self.dataset
        n = ds.x_train.shape[0]
        epochs = max(1, -(-num_samples // n))  # ceil
        stream = self._stream(epochs)
        xs, ys = stream.next_chunk(int(num_samples))
        self.model.train()
        stats = self.executor.train(xs, ys)
        val_loss, val_acc = evaluate(self.model, ds.x_val, ds.y_val)
        self.history.record(
            self.executor.samples_completed, stats.mean_loss, val_loss, val_acc
        )
        return self.history
