"""Batch trainer for plain and delay-simulated optimization.

Drives either :class:`~repro.optim.sgd.SGDM` (reference runs) or
:class:`~repro.core.delayed_sgd.DelayedSGDM` (Appendix-G.2 staleness
studies) over a dataset with optional augmentation and LR scheduling.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.delayed_sgd import DelayedSGDM
from repro.data.loader import iterate_batches
from repro.data.synthetic import Dataset
from repro.optim.sgd import SGDM
from repro.tensor.tensor import Tensor, cross_entropy
from repro.train.metrics import TrainingHistory, evaluate
from repro.utils.rng import derive_seed, new_rng


class Trainer:
    """Epoch-based training of a model on a dataset.

    Parameters
    ----------
    model, optimizer, dataset:
        The optimizer may be :class:`SGDM` or :class:`DelayedSGDM`; the
        trainer adapts the step protocol automatically.
    batch_size:
        Update size per step.
    augment:
        Optional callable ``(batch, rng) -> batch``.
    lr_schedule:
        Optional callable ``step -> lr`` applied before every update.
    """

    def __init__(
        self,
        model,
        optimizer: SGDM | DelayedSGDM,
        dataset: Dataset,
        batch_size: int = 32,
        augment=None,
        lr_schedule: Callable[[int], float] | None = None,
        seed: int = 0,
        label: str = "run",
    ):
        self.model = model
        self.optimizer = optimizer
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.augment = augment
        self.lr_schedule = lr_schedule
        self.rng = new_rng(derive_seed(seed, "trainer", label))
        self.history = TrainingHistory(label=label)
        self.step_count = 0
        self.samples_seen = 0

    def _train_step(self, xb: np.ndarray, yb: np.ndarray) -> float:
        if self.lr_schedule is not None:
            self.optimizer.lr = self.lr_schedule(self.step_count)
        if isinstance(self.optimizer, DelayedSGDM):
            opt = self.optimizer
            opt.begin_step()
            opt.load_forward_weights()
            loss = cross_entropy(self.model(Tensor(xb)), yb)
            opt.prepare_backward()
            opt.zero_grad()
            loss.backward()
            opt.step()
        else:
            loss = cross_entropy(self.model(Tensor(xb)), yb)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
        self.step_count += 1
        self.samples_seen += len(yb)
        return float(loss.data)

    def train_epochs(
        self, epochs: int, eval_every: int = 1
    ) -> TrainingHistory:
        """Run ``epochs`` passes; evaluate every ``eval_every`` epochs.

        ``eval_every`` must be >= 1 (1 evaluates after every epoch; the
        final epoch is always evaluated regardless).  There is no
        "never evaluate" setting — pass a value larger than ``epochs``
        to get only the final evaluation.
        """
        if eval_every < 1:
            raise ValueError(
                f"eval_every must be >= 1, got {eval_every} (use a value "
                "larger than epochs to evaluate only at the end)"
            )
        ds = self.dataset
        for epoch in range(int(epochs)):
            self.model.train()
            losses = []
            for xb, yb in iterate_batches(
                ds.x_train,
                ds.y_train,
                self.batch_size,
                rng=self.rng,
                augment=self.augment,
            ):
                losses.append(self._train_step(xb, yb))
            if (epoch + 1) % eval_every == 0 or epoch == epochs - 1:
                val_loss, val_acc = evaluate(self.model, ds.x_val, ds.y_val)
                self.history.record(
                    self.samples_seen,
                    float(np.mean(losses)) if losses else float("nan"),
                    val_loss,
                    val_acc,
                )
        return self.history
