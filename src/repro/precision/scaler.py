"""Dynamic loss scaling with overflow skip-and-rescale.

Reduced-precision gradients underflow long before float64 ones do, so
mixed-precision training multiplies the loss by a large power of two
before backprop and divides the gradients by the same factor at update
time.  Powers of two only touch the exponent — scaling and unscaling
are *exact* in floating point — so a run that never overflows follows
the unscaled trajectory bit for bit (within the storage precision).

The scale is adapted the standard way (cf. torch.cuda.amp.GradScaler,
Lightning's precision plugins):

* any non-finite gradient ⇒ the step is **skipped entirely** (weights
  and velocity stay byte-identical — pinned by a property test) and the
  scale is multiplied by ``backoff_factor``;
* ``growth_interval`` consecutive good steps ⇒ the scale is multiplied
  by ``growth_factor``.

:class:`LossScaler` is deliberately engine-agnostic: it owns nothing
but the scale state.  The caller multiplies the loss (or seeds the
backward with ``scale * dL``), and :meth:`repro.optim.sgd.SGDM.step`
does the unscale + finiteness check + skip when constructed with a
scaler.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["LossScaler"]


class LossScaler:
    """Dynamic loss-scale state machine (scale is always a power of 2)."""

    def __init__(
        self,
        init_scale: float = 2.0**15,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 200,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        if init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {init_scale}")
        if growth_factor <= 1.0:
            raise ValueError(
                f"growth_factor must be > 1, got {growth_factor}"
            )
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be in (0, 1), got {backoff_factor}"
            )
        if growth_interval < 1:
            raise ValueError(
                f"growth_interval must be >= 1, got {growth_interval}"
            )
        self.scale = float(init_scale)
        self.growth_factor = float(growth_factor)
        self.backoff_factor = float(backoff_factor)
        self.growth_interval = int(growth_interval)
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self._good_steps = 0
        self.overflow_skips = 0

    @staticmethod
    def found_overflow(grads: Iterable[np.ndarray | None]) -> bool:
        """True if any gradient carries a non-finite value."""
        for g in grads:
            if g is not None and not np.all(np.isfinite(g)):
                return True
        return False

    def update(self, overflow: bool) -> None:
        """Advance the state machine after one (possibly skipped) step."""
        if overflow:
            self.overflow_skips += 1
            self._good_steps = 0
            self.scale = max(
                self.min_scale, self.scale * self.backoff_factor
            )
        else:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self._good_steps = 0
                self.scale = min(
                    self.max_scale, self.scale * self.growth_factor
                )

    def state_dict(self) -> dict:
        return {
            "scale": self.scale,
            "good_steps": self._good_steps,
            "overflow_skips": self.overflow_skips,
        }

    def load_state_dict(self, state: dict) -> None:
        self.scale = float(state["scale"])
        self._good_steps = int(state["good_steps"])
        self.overflow_skips = int(state["overflow_skips"])

    def __repr__(self) -> str:
        return (
            f"LossScaler(scale={self.scale:g}, "
            f"overflow_skips={self.overflow_skips})"
        )
