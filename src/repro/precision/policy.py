"""Precision policies: float64 reference, float32, simulated bf16, int8.

The reproduction's numerics are float64 end to end so that the
simulator / threaded / process engines can promise *hex-exact* parity
(the analysis-grade contract pinned in ``tests/test_runtime_parity.py``).
That contract is also why mixed precision has to be a *policy* rather
than a global switch: the float64 path must stay byte-for-byte untouched
while the reduced-precision paths opt in explicitly, layer by layer.

A :class:`PrecisionPolicy` names one of four modes:

``float64``
    The reference mode.  No casting anywhere; engines behave exactly as
    before this module existed (hex-exact across runtimes in lockstep).
``float32``
    Parameters, buffers, activations and ring slots are float32 —
    every shared-memory slot is literally half the bytes, and NumPy's
    GEMMs run the float32 BLAS kernels.  Parity with float64 is a
    *tolerance* contract (see :attr:`PrecisionPolicy.loss_rtol`).
``bf16``
    Simulated bfloat16: values are stored on the bf16 grid (float32
    arrays whose low 16 mantissa bits are zero — see
    :func:`simulate_bf16`) while compute runs in float32.  This is the
    classic "bf16 storage, fp32 accumulate" mixed precision without
    needing hardware bf16: weights are re-truncated after every
    optimizer update and inputs are truncated at injection.
``int8``
    Serving-only: weights are quantized per-tensor to symmetric int8
    (scale = max|w| / 127) and dequantized once at load, so the forward
    path runs float32 GEMMs over int8-grid weights.  Training in this
    mode is rejected (:attr:`PrecisionPolicy.trainable` is ``False``).

The dtype-aware ring layouts fall out of the cast: the process runtime
probes boundary shapes with a dummy forward whose dtype follows the
parameters and the injected batch, so casting the model once makes
:func:`repro.pipeline.transport.probe_boundary_layouts` emit float32
``ArraySpec``s and every ring slot shrinks accordingly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "PRECISION_MODES",
    "PrecisionPolicy",
    "simulate_bf16",
    "quantize_int8",
    "resolve_precision",
]

#: The recognised precision mode names, reference mode first.
PRECISION_MODES = ("float64", "float32", "bf16", "int8")


def simulate_bf16(arr: np.ndarray) -> np.ndarray:
    """Round-trip an array through the bfloat16 grid (returns float32).

    bfloat16 is float32 with the low 16 mantissa bits dropped.  The
    round trip is simulated with round-to-nearest-even on the raw bit
    pattern — the same rounding a hardware ``float32 -> bf16`` cast
    performs — so the result is a float32 array whose values all lie
    exactly on the bf16 grid.

    Properties the property tests pin down:

    * **idempotent** — a value already on the grid has zero low bits,
      the rounding addend cannot carry, and the value is unchanged;
    * **monotone** — positive float bit patterns are ordered like their
      integer views and round-to-nearest-even is order-preserving, so
      ``a <= b`` implies ``bf16(a) <= bf16(b)``;
    * NaN stays NaN, infinities stay infinite, and values within half a
      grid step of float32's max round to ``inf`` exactly as a real
      bf16 cast would.
    """
    x = np.asarray(arr, dtype=np.float32)
    bits = x.view(np.uint32)
    nan_mask = np.isnan(x)
    # round-to-nearest-even: add 0x7FFF plus the LSB of the kept part,
    # then truncate.  uint32 arithmetic wraps are impossible here for
    # finite inputs (max finite + 0x8000 < 2**32).
    rounded = (bits + 0x7FFF + ((bits >> 16) & 1)) & np.uint32(0xFFFF0000)
    out = rounded.view(np.float32).copy()
    # NaN payloads can collapse to inf under the addend; restore them.
    if nan_mask.any():
        out[nan_mask] = np.float32(np.nan)
    return out.reshape(x.shape)


def quantize_int8(arr: np.ndarray) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization.

    Returns ``(q, scale)`` with ``q`` int8 in ``[-127, 127]`` and
    ``scale = max|arr| / 127`` (``1.0`` for an all-zero tensor), so the
    dequantized tensor is ``q.astype(float32) * scale``.
    """
    a = np.asarray(arr, dtype=np.float64)
    amax = float(np.max(np.abs(a))) if a.size else 0.0
    scale = amax / 127.0 if amax > 0.0 else 1.0
    q = np.clip(np.round(a / scale), -127, 127).astype(np.int8)
    return q, scale


class PrecisionPolicy:
    """One precision mode plus the knobs the engines read off it.

    Instances are cheap, picklable value objects; everything the
    runtimes and the optimizer need is a method or attribute here so a
    mode name round-trips through :class:`~repro.pipeline.stage.
    StageBuildSpec` to spawn-rebuilt workers unchanged.
    """

    def __init__(self, mode: str = "float64"):
        if mode not in PRECISION_MODES:
            raise ValueError(
                f"precision mode must be one of {PRECISION_MODES}, "
                f"got {mode!r}"
            )
        self.mode = mode

    # -- derived properties -------------------------------------------------

    @property
    def compute_dtype(self) -> np.dtype:
        """The dtype parameters, activations and ring slots carry."""
        return np.dtype(np.float64 if self.mode == "float64" else np.float32)

    @property
    def is_reference(self) -> bool:
        """True for the float64 mode whose engines must stay hex-exact."""
        return self.mode == "float64"

    @property
    def master_weights(self) -> bool:
        """Whether the optimizer should keep float64 master copies."""
        return self.mode in ("float32", "bf16")

    @property
    def trainable(self) -> bool:
        """int8 is a serving-only (forward) mode."""
        return self.mode != "int8"

    @property
    def loss_rtol(self) -> float:
        """Relative loss-curve tolerance vs the float64 reference (the
        parity contract the reduced modes are tested against)."""
        return {"float64": 0.0, "float32": 2e-3, "bf16": 8e-2}.get(
            self.mode, float("nan")
        )

    @property
    def loss_atol(self) -> float:
        """Absolute counterpart of :attr:`loss_rtol`."""
        return {"float64": 0.0, "float32": 2e-4, "bf16": 2e-2}.get(
            self.mode, float("nan")
        )

    # -- casting ------------------------------------------------------------

    def quantize(self, arr: np.ndarray) -> np.ndarray:
        """Project an array onto this mode's storage grid.

        float64 returns the input untouched; float32 casts; bf16 casts
        and truncates to the bf16 grid.  int8 quantizes-and-dequantizes
        (the stored array is float32 on the int8 grid — compute stays a
        float32 GEMM, exactly the "simulated quantized forward" the
        serving path uses).
        """
        if self.mode == "float64":
            return np.asarray(arr)
        if self.mode == "float32":
            return np.asarray(arr, dtype=np.float32)
        if self.mode == "bf16":
            return simulate_bf16(arr)
        q, scale = quantize_int8(arr)
        return (q.astype(np.float32) * np.float32(scale)).astype(np.float32)

    def cast_array(self, x: np.ndarray) -> np.ndarray:
        """Cast an input batch for injection (activations grid).

        int8 quantizes weights only — activations flow in float32, so
        int8 casts inputs like float32 does.
        """
        if self.mode == "float64":
            return np.asarray(x)
        if self.mode == "bf16":
            return simulate_bf16(x)
        return np.asarray(x, dtype=np.float32)

    def cast_model(self, model: Any) -> Any:
        """Cast a model's parameters and buffers in place, once.

        Parameters land on the mode's storage grid (float32 / bf16 grid
        / dequantized int8 grid); floating-point buffers (BatchNorm
        running stats) are cast to the compute dtype, integer buffers
        (sample counters) are left alone.  Returns the model.

        Note a manually cast model is **not** self-describing: bf16-grid
        and int8-grid arrays have float32 dtype, so downstream
        consumers (``PipelineStage``, the engines) cannot recover the
        mode from the weights — always pass the same ``precision=`` to
        them explicitly, or bf16 models silently lose re-truncation
        after updates.
        """
        if self.mode == "float64":
            return model
        for p in model.parameters():
            p.data = self.quantize(p.data)
            p.grad = None
        named_buffers = getattr(model, "named_buffers", None)
        if callable(named_buffers):
            for name, buf in named_buffers():
                arr = np.asarray(buf)
                if np.issubdtype(arr.dtype, np.floating):
                    model.set_buffer(name, arr.astype(self.compute_dtype))
        else:
            for module in _iter_modules(model):
                for name, buf in list(
                    getattr(module, "_buffers", {}).items()
                ):
                    arr = np.asarray(buf)
                    if np.issubdtype(arr.dtype, np.floating):
                        module._buffers[name] = arr.astype(
                            self.compute_dtype
                        )
        return model

    # -- plumbing -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"PrecisionPolicy({self.mode!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PrecisionPolicy) and other.mode == self.mode
        )

    def __hash__(self) -> int:
        return hash(("PrecisionPolicy", self.mode))

    def __reduce__(self):
        return (PrecisionPolicy, (self.mode,))


def _iter_modules(model: Any):
    """Best-effort walk of a module tree (fallback buffer cast path)."""
    seen = set()
    stack = [model]
    while stack:
        m = stack.pop()
        if id(m) in seen:
            continue
        seen.add(id(m))
        yield m
        stack.extend(getattr(m, "_modules", {}).values())


def resolve_precision(
    precision: "PrecisionPolicy | str | None",
) -> PrecisionPolicy:
    """Normalize a user-facing ``precision=`` argument to a policy.

    ``None`` means the float64 reference mode (the engines' historical
    behaviour, kept hex-exact).
    """
    if precision is None:
        return PrecisionPolicy("float64")
    if isinstance(precision, PrecisionPolicy):
        return precision
    if isinstance(precision, str):
        return PrecisionPolicy(precision)
    raise TypeError(
        f"precision must be a mode name, PrecisionPolicy or None, "
        f"got {type(precision).__name__}"
    )
