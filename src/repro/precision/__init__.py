"""Mixed-precision policies for training and serving.

* :mod:`~repro.precision.policy` — :class:`PrecisionPolicy` (float64
  reference / float32 / simulated bf16 / serving-only int8), the bf16
  grid simulation, and per-tensor int8 quantization.
* :mod:`~repro.precision.scaler` — :class:`LossScaler`, dynamic loss
  scaling with bit-neutral overflow skip.

Thread a policy through any engine with ``precision="float32"`` (or a
:class:`PrecisionPolicy`) — see the "Precision modes" section of the
README and ``examples/mixed_precision.py``.
"""

from repro.precision.policy import (
    PRECISION_MODES,
    PrecisionPolicy,
    quantize_int8,
    resolve_precision,
    simulate_bf16,
)
from repro.precision.scaler import LossScaler

__all__ = [
    "PRECISION_MODES",
    "PrecisionPolicy",
    "LossScaler",
    "quantize_int8",
    "resolve_precision",
    "simulate_bf16",
]
