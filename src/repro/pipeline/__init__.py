"""Fine-grained pipeline-parallel training substrate.

* :mod:`~repro.pipeline.delays` — the per-stage delay law
  ``D_s = 2(S-1-s)`` and its projection onto flat delay profiles.
* :mod:`~repro.pipeline.stage` — a pipeline stage: module segment +
  per-stage optimizer state + activation/weight stash.
* :mod:`~repro.pipeline.executor` — cycle-accurate pipelined
  backpropagation (and fill-and-drain SGD) over a
  :class:`~repro.models.arch.StageGraphModel`.
* :mod:`~repro.pipeline.schedule` — occupancy-grid timing model for
  Figures 1-2.
* :mod:`~repro.pipeline.utilization` — closed-form utilization (eq. 1).
* :mod:`~repro.pipeline.partition` — stage-graph validation and the
  Table-1 stage-count accounting.
"""

from repro.pipeline.delays import (
    stage_delay,
    pipeline_delay_profile,
    max_pipeline_delay,
    stage_delay_table,
)
from repro.pipeline.stage import PipelineStage
from repro.pipeline.executor import PipelineExecutor, PipelineRunStats
from repro.pipeline.schedule import (
    pb_occupancy,
    fill_drain_occupancy,
    render_occupancy,
    schedule_utilization,
)
from repro.pipeline.utilization import (
    fill_drain_utilization,
    pb_utilization,
    utilization_upper_bound,
)
from repro.pipeline.partition import validate_stage_graph, stage_flow_graph
from repro.pipeline.costs import (
    pipeline_cost_model,
    batch_parallel_activation_elements,
    data_parallel_comm_per_update,
    pipeline_comm_per_step,
)

__all__ = [
    "stage_delay",
    "pipeline_delay_profile",
    "max_pipeline_delay",
    "stage_delay_table",
    "PipelineStage",
    "PipelineExecutor",
    "PipelineRunStats",
    "pb_occupancy",
    "fill_drain_occupancy",
    "render_occupancy",
    "schedule_utilization",
    "fill_drain_utilization",
    "pb_utilization",
    "utilization_upper_bound",
    "validate_stage_graph",
    "stage_flow_graph",
    "pipeline_cost_model",
    "batch_parallel_activation_elements",
    "data_parallel_comm_per_update",
    "pipeline_comm_per_step",
]
