"""Fine-grained pipeline-parallel training substrate.

* :mod:`~repro.pipeline.delays` — the per-stage delay law
  ``D_s = 2(S-1-s)`` and its projection onto flat delay profiles.
* :mod:`~repro.pipeline.stage` — a pipeline stage: module segment +
  per-stage optimizer state + activation/weight stash.
* :mod:`~repro.pipeline.schedule` — the pluggable
  :class:`~repro.pipeline.schedule.Schedule` protocol and its four
  implementations: ``pb`` (pipelined backpropagation), ``fill_drain``
  (synchronous pipeline SGD), ``gpipe`` (micro-batched fill-and-drain,
  Huang et al. 2019) and ``1f1b`` (PipeDream one-forward-one-backward
  with weight stashing, Harlap et al. 2018).
* :mod:`~repro.pipeline.executor` — the cycle-accurate, schedule-driven
  engine running any of the above over a
  :class:`~repro.models.arch.StageGraphModel`.
* :mod:`~repro.pipeline.runtime` — the concurrent multi-worker runtime:
  one thread per stage, packets through per-stage queues, driven by the
  same schedules.  Lockstep mode is bit-exact with the executor;
  free-running mode measures real per-stage busy/idle wall-clock time.
* :mod:`~repro.pipeline.checkpoint` — durable training: versioned run
  checkpoints capturing every stage's state plus the data-stream cursor
  at drain barriers, bit-exact resume, and the :class:`DurableRun`
  driver that snapshots on a fixed cadence.
* :mod:`~repro.pipeline.inference` — forward-only serving: the
  ``infer`` schedule's streams (sim / threaded / process over
  backward-slot-free shared-memory rings) and the schedule-driven
  batch driver behind every engine's ``infer()`` and
  :mod:`repro.serve`.
* :mod:`~repro.pipeline.occupancy` — occupancy-grid timing models for
  Figures 1-2 and the schedule-comparison example.
* :mod:`~repro.pipeline.utilization` — closed-form utilization (eq. 1,
  per-sample and per-micro-batch).
* :mod:`~repro.pipeline.partition` — stage-graph validation and the
  Table-1 stage-count accounting.
"""

from repro.pipeline.delays import (
    stage_delay,
    pipeline_delay_profile,
    max_pipeline_delay,
    stage_delay_table,
)
from repro.pipeline.stage import PipelineStage, StageBuildSpec
from repro.pipeline.schedule import (
    SCHEDULE_NAMES,
    Schedule,
    ScheduleState,
    PipelinedBackpropSchedule,
    FillDrainSchedule,
    GPipeSchedule,
    InferenceSchedule,
    OneFOneBSchedule,
    make_schedule,
)
from repro.pipeline.executor import PipelineExecutor, PipelineRunStats
from repro.pipeline.inference import (
    InferenceRunStats,
    InferenceStreamError,
    ProcessInferenceStream,
    SimInferenceStream,
    ThreadedInferenceStream,
    infer_batch,
    open_inference_stream,
    run_inference,
)
from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    DurableRun,
    DurableRunResult,
    capture_checkpoint,
    load_checkpoint,
    model_fingerprint,
    restore_checkpoint,
    restore_inference_weights,
    save_checkpoint,
)
from repro.pipeline.runtime import (
    ConcurrentPipelineRunner,
    PipelineRuntimeError,
    ProcessPipelineRunner,
    ReplicatedPipelineRunner,
    RuntimeStats,
    StageRuntimeStats,
    make_pipeline_engine,
)
from repro.pipeline.transport import (
    ArraySpec,
    RingDescriptor,
    ShmRing,
    TransportError,
    TransportStall,
    build_inference_rings,
    build_pipeline_rings,
    build_reduce_rings,
    probe_boundary_layouts,
    ring_slots_for,
)
from repro.pipeline.occupancy import (
    pb_occupancy,
    fill_drain_occupancy,
    gpipe_occupancy,
    one_f_one_b_occupancy,
    render_occupancy,
    schedule_utilization,
    observed_stage_delays,
)
from repro.pipeline.utilization import (
    fill_drain_utilization,
    gpipe_utilization,
    pb_utilization,
    utilization_upper_bound,
)
from repro.pipeline.partition import validate_stage_graph, stage_flow_graph
from repro.pipeline.costs import (
    pipeline_cost_model,
    batch_parallel_activation_elements,
    data_parallel_comm_per_update,
    pipeline_comm_per_step,
)

__all__ = [
    "stage_delay",
    "pipeline_delay_profile",
    "max_pipeline_delay",
    "stage_delay_table",
    "PipelineStage",
    "StageBuildSpec",
    "SCHEDULE_NAMES",
    "Schedule",
    "ScheduleState",
    "PipelinedBackpropSchedule",
    "FillDrainSchedule",
    "GPipeSchedule",
    "InferenceSchedule",
    "OneFOneBSchedule",
    "make_schedule",
    "PipelineExecutor",
    "PipelineRunStats",
    "InferenceRunStats",
    "InferenceStreamError",
    "ProcessInferenceStream",
    "SimInferenceStream",
    "ThreadedInferenceStream",
    "infer_batch",
    "open_inference_stream",
    "run_inference",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "DurableRun",
    "DurableRunResult",
    "capture_checkpoint",
    "load_checkpoint",
    "model_fingerprint",
    "restore_checkpoint",
    "restore_inference_weights",
    "save_checkpoint",
    "ConcurrentPipelineRunner",
    "PipelineRuntimeError",
    "ProcessPipelineRunner",
    "ReplicatedPipelineRunner",
    "RuntimeStats",
    "StageRuntimeStats",
    "make_pipeline_engine",
    "ArraySpec",
    "RingDescriptor",
    "ShmRing",
    "TransportError",
    "TransportStall",
    "build_inference_rings",
    "build_pipeline_rings",
    "build_reduce_rings",
    "probe_boundary_layouts",
    "ring_slots_for",
    "pb_occupancy",
    "fill_drain_occupancy",
    "gpipe_occupancy",
    "one_f_one_b_occupancy",
    "render_occupancy",
    "schedule_utilization",
    "observed_stage_delays",
    "fill_drain_utilization",
    "gpipe_utilization",
    "pb_utilization",
    "utilization_upper_bound",
    "validate_stage_graph",
    "stage_flow_graph",
    "pipeline_cost_model",
    "batch_parallel_activation_elements",
    "data_parallel_comm_per_update",
    "pipeline_comm_per_step",
]
