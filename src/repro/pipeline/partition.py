"""Stage-graph validation and flow-graph construction.

The model builders in :mod:`repro.models` emit stage lists directly, so
"partitioning" here means *validating* that a stage list is executable as a
pipeline (balanced skip stack, unique names, terminal loss) and exposing
its data-flow structure as a ``networkx`` DAG for inspection and tests.
"""

from __future__ import annotations

import networkx as nx

from repro.models.arch import StageDef, StageGraphModel


def validate_stage_graph(stages: list[StageDef]) -> None:
    """Raise ``ValueError`` for any structural problem in a stage list.

    Checks: non-empty; unique names; exactly one loss stage, last; the
    skip stack is balanced (every push has a matching sum; never pops
    empty); skip-path compute stages only appear while the stack is
    non-empty.
    """
    if not stages:
        raise ValueError("empty stage list")
    names = [s.name for s in stages]
    if len(set(names)) != len(names):
        raise ValueError("duplicate stage names")
    loss_idx = [i for i, s in enumerate(stages) if s.kind == "loss"]
    if loss_idx != [len(stages) - 1]:
        raise ValueError("need exactly one loss stage, in final position")
    depth = 0
    for s in stages:
        if s.kind == "compute":
            if s.channel == -1 and depth == 0:
                raise ValueError(
                    f"stage {s.name!r} operates on an empty skip stack"
                )
            if s.push_skip:
                depth += 1
        elif s.kind == "sum":
            if depth == 0:
                raise ValueError(f"sum stage {s.name!r} pops an empty stack")
            depth -= 1
    if depth != 0:
        raise ValueError(f"{depth} unconsumed skip connections")


def stage_flow_graph(model: StageGraphModel) -> "nx.DiGraph":
    """Data-flow DAG: nodes are stages, edges are payload channels.

    Main-path edges connect consecutive stages; skip edges connect each
    pushing stage to its matching sum stage (and through the skip-path
    compute stage if one rides the connection).
    """
    validate_stage_graph(model.stage_defs)
    g = nx.DiGraph()
    stack: list[int] = []  # indices of the stage that pushed each live skip
    prev = None
    for i, st in enumerate(model.stage_defs):
        g.add_node(i, name=st.name, kind=st.kind)
        if prev is not None:
            g.add_edge(prev, i, channel="main")
        if st.kind == "compute":
            if st.push_skip:
                stack.append(i)
            if st.channel == -1:
                # the downsample conv rides the most recent skip edge
                src = stack[-1]
                g.add_edge(src, i, channel="skip")
                stack[-1] = i
        elif st.kind == "sum":
            src = stack.pop()
            g.add_edge(src, i, channel="skip")
        prev = i
    if not nx.is_directed_acyclic_graph(g):  # pragma: no cover - by construction
        raise ValueError("stage flow graph has a cycle")
    return g


def parameter_stage_summary(model: StageGraphModel) -> list[dict]:
    """Per-stage summary rows used by docs/examples."""
    rows = []
    for i, st in enumerate(model.stage_defs):
        n_params = (
            sum(p.size for p in st.module.parameters()) if st.module else 0
        )
        rows.append(
            {
                "stage": i,
                "name": st.name,
                "kind": st.kind,
                "params": n_params,
                "skip": "push" if st.push_skip else (
                    "pop" if st.kind == "sum" else ""
                ),
            }
        )
    return rows
