"""A pipeline stage: module segment + per-stage optimizer + stashes.

Each stage owns its parameters' velocity and applies its own updates — in
pipelined backpropagation every stage updates once per time step as soon
as its gradient arrives (update size one), with its *own* delay
``D_s = 2(S-1-s)`` driving the mitigation:

* **forward**: if weight prediction is on, parameters are loaded with
  ``w - lr*T_s*v`` (velocity form) / the weight-difference form before the
  sample's graph is built, then restored.  The graph captures activations
  by value but reads weights lazily, so a later backward sees the weights
  *current at backward time* — the genuine PB inconsistency.
* **backward**: with weight stashing the stashed forward weights are
  reloaded around the backward pass; with SpecTrain the weights are
  re-predicted with the vertical-sync horizon (= stage index); otherwise
  the current weights are used as-is.
* **update**: spike compensation modifies how the arriving gradient is
  applied: ``w -= lr * (a v' + b g)`` with SC_D coefficients by default.

Payloads travelling between stages are lists of raw arrays
``[main, skip_0, ..)``; gradients travel backwards with the mirrored
layout.  Arrays carry a leading batch dimension: per-sample schedules
send ``(1, ...)`` payloads, micro-batched schedules (GPipe) send
``(B, ...)`` packets that each op processes in one vectorized call.

Weight stashing engages through either of two doors: the *mitigation*
(``MitigationConfig.stashing()``, an ablation on top of PB) or the
*schedule* (:attr:`always_stash`, set by the executor for schedules whose
semantics require it — PipeDream's 1F1B).  Both stash the forward weights
and reload them around the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.core.prediction import (
    predict_velocity_form,
    predict_weight_diff_form,
)
from repro.models.arch import StageDef
from repro.pipeline.delays import stage_delay
from repro.precision.policy import (
    PrecisionPolicy,
    resolve_precision,
    simulate_bf16,
)
from repro.tensor.tensor import Tensor, backward_multi


@dataclass
class _StashEntry:
    """Graph roots and metadata kept between a sample's F and B."""

    roots: dict[str, Tensor] = field(default_factory=dict)
    stashed_weights: list[np.ndarray] | None = None
    version_at_forward: int = 0


class PipelineStage:
    """One stage of the pipeline executor (see module docstring)."""

    def __init__(
        self,
        index: int,
        spec: StageDef,
        num_stages: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        precision: "PrecisionPolicy | str | None" = None,
    ):
        self.index = index
        self.spec = spec
        self.num_stages = num_stages
        self.delay = stage_delay(index, num_stages)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.mitigation = mitigation or MitigationConfig.none()
        self.params = list(spec.module.parameters()) if spec.module else []
        if precision is None and self.params:
            # infer the mode from the (possibly pre-cast) parameters so
            # error messages and re-quantization stay correct even when
            # the caller cast the model manually.  Only float32 is
            # inferable from dtype alone: bf16-grid and int8-grid arrays
            # *are* float32 arrays, so a manually bf16/int8-cast model
            # must pass precision= explicitly or it gets float32
            # semantics (no bf16 re-truncation after updates).
            inferred = str(self.params[0].data.dtype)
            precision = inferred if inferred in ("float32",) else None
        self.precision = resolve_precision(precision)
        #: update steps dropped because a gradient went non-finite
        #: (reduced-precision modes only; float64 never checks)
        self.overflow_skips = 0
        self._velocity = {id(p): np.zeros_like(p.data) for p in self.params}
        self._prev_weights = {id(p): p.data.copy() for p in self.params}
        self.updates_applied = 0
        self._pending_grads = 0
        self.stash: dict[int, _StashEntry] = {}
        # schedule-driven weight stashing (1F1B), independent of mitigation
        self.always_stash = False
        # observed (forward version, backward version) pairs for validation
        self.version_trace: list[tuple[int, int, int]] = []
        self.record_versions = False
        # replicated synchronous mode: keep each packet's gradient as a
        # separate segment (stream order) instead of folding into p.grad,
        # so the cross-replica reduction can reproduce the exact left-fold
        # accumulation order of a single pipeline (see runtime.py)
        self.collect_grad_segments = False
        self._grad_segments: list[list[np.ndarray]] = []

    # -- weight loading helpers -------------------------------------------

    def _predicted_forward_weights(self) -> list[np.ndarray] | None:
        """Prediction per eq. 18/19 applied at forward time, or ``None``."""
        pred = self.mitigation.prediction
        if pred.kind == "none" or not self.params:
            return None
        horizon = pred.forward_horizon(self.delay, offset=float(self.index))
        out = []
        for p in self.params:
            pid = id(p)
            if pred.kind == "lwp_w":
                out.append(
                    predict_weight_diff_form(
                        p.data, self._prev_weights[pid], horizon
                    )
                )
            else:  # lwp_v / spectrain use the velocity form
                out.append(
                    predict_velocity_form(
                        p.data, self._velocity[pid], self.lr, horizon
                    )
                )
        return out

    def _backward_weights(
        self, entry: _StashEntry
    ) -> list[np.ndarray] | None:
        """Weights to load around the backward pass, or ``None`` to keep
        the current (master) weights — the default PB inconsistency."""
        if not self.params:
            return None
        if self.mitigation.weight_stashing or self.always_stash:
            return entry.stashed_weights
        pred = self.mitigation.prediction
        if pred.kind == "spectrain":
            horizon = pred.backward_horizon(offset=float(self.index))
            return [
                predict_velocity_form(
                    p.data, self._velocity[id(p)], self.lr, horizon
                )
                for p in self.params
            ]
        return None

    # -- forward --------------------------------------------------------------

    def forward(
        self, sample_id: int, payload: list[np.ndarray], train: bool = True
    ) -> list[np.ndarray]:
        """Process one sample's forward transformation for this stage."""
        spec = self.spec
        if spec.kind in ("identity", "loss"):
            return payload
        if spec.kind == "sum":
            main = payload[0] + payload[-1]
            return [main] + payload[1:-1]

        # compute stage: optionally load predicted weights for the forward
        predicted = self._predicted_forward_weights() if train else None
        masters = [p.data for p in self.params]
        if predicted is not None:
            for p, w_hat in zip(self.params, predicted):
                p.data = w_hat
        try:
            entry = _StashEntry(version_at_forward=self.updates_applied)
            if train and (self.mitigation.weight_stashing or self.always_stash):
                entry.stashed_weights = [p.data.copy() for p in self.params]
            if spec.channel == -1:
                x = Tensor(payload[-1], requires_grad=train)
                y = spec.module(x)
                out = payload[:-1] + [y.data]
                entry.roots = {"x": x, "main": y}
            elif spec.push_skip == "input":
                x = Tensor(payload[0], requires_grad=train)
                y = spec.module(x)
                out = [y.data] + payload[1:] + [payload[0]]
                entry.roots = {"x": x, "main": y}
            elif spec.push_skip == "preact":
                x = Tensor(payload[0], requires_grad=train)
                y, preact = spec.module.forward_parts(x)
                out = [y.data] + payload[1:] + [preact.data]
                entry.roots = {"x": x, "main": y, "skip": preact}
            else:
                x = Tensor(payload[0], requires_grad=train)
                y = spec.module(x)
                out = [y.data] + payload[1:]
                entry.roots = {"x": x, "main": y}
            if train:
                self.stash[sample_id] = entry
        finally:
            if predicted is not None:
                for p, w in zip(self.params, masters):
                    p.data = w
        return out

    # -- backward -------------------------------------------------------------

    def backward(
        self, sample_id: int, grads: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Process one sample's backward transformation; returns upstream
        gradients mirroring this stage's forward *input* payload."""
        spec = self.spec
        if spec.kind in ("identity", "loss"):
            return grads
        if spec.kind == "sum":
            g_main = grads[0]
            return [g_main] + grads[1:] + [g_main.copy()]

        entry = self.stash.pop(sample_id)
        masters = [p.data for p in self.params]
        loaded = self._backward_weights(entry)
        if loaded is not None:
            for p, w in zip(self.params, loaded):
                p.data = w
        try:
            if spec.channel == -1:
                backward_multi([(entry.roots["main"], grads[-1])])
                upstream = grads[:-1] + [entry.roots["x"].grad]
            elif spec.push_skip == "input":
                backward_multi([(entry.roots["main"], grads[0])])
                gx = entry.roots["x"].grad
                gx = grads[-1] if gx is None else gx + grads[-1]
                upstream = [gx] + grads[1:-1]
            elif spec.push_skip == "preact":
                backward_multi(
                    [
                        (entry.roots["main"], grads[0]),
                        (entry.roots["skip"], grads[-1]),
                    ]
                )
                upstream = [entry.roots["x"].grad] + grads[1:-1]
            else:
                backward_multi([(entry.roots["main"], grads[0])])
                upstream = [entry.roots["x"].grad] + grads[1:]
        finally:
            if loaded is not None:
                for p, w in zip(self.params, masters):
                    p.data = w
        if self.record_versions:
            self.version_trace.append(
                (sample_id, entry.version_at_forward, self.updates_applied)
            )
        if self.collect_grad_segments and self.params:
            # pop this packet's gradient into its own segment; the
            # left-fold over segments is re-run during the reduction.
            # Caveat: a parameter contributing to several grads within
            # one packet's graph still folds *inside* the packet (the
            # autodiff accumulates it), so segments stay per-packet.
            if not self._grad_segments:
                self._grad_segments = [[] for _ in self.params]
            for seg, p in zip(self._grad_segments, self.params):
                if p.grad is not None:
                    seg.append(p.grad)
                    p.grad = None
        self._pending_grads += 1
        return upstream

    # -- updates ----------------------------------------------------------------

    def apply_update(self) -> None:
        """PB update: apply the single accumulated gradient with spike
        compensation (update size one)."""
        self._apply(scale=1.0)

    def flush_update(self, count: int) -> None:
        """Fill-and-drain update: apply the mean of ``count`` accumulated
        gradients with plain SGDM (no mitigation — the pipeline is
        consistent and drained)."""
        if count <= 0:
            raise ValueError("count must be positive")
        self._apply(scale=1.0 / count, plain=True)

    def _apply(self, scale: float, plain: bool = False) -> None:
        m = self.momentum
        if not self.precision.is_reference and self.params:
            # reduced precision overflows where float64 would not; a
            # non-finite gradient skips the whole update (weights and
            # velocity untouched) instead of poisoning the parameters.
            # The skip still counts as an applied update so schedule
            # version bookkeeping and drain logic stay consistent.
            for p in self.params:
                if p.grad is not None and not np.all(np.isfinite(p.grad)):
                    for q in self.params:
                        q.grad = None
                    self.overflow_skips += 1
                    self.updates_applied += 1
                    self._pending_grads = 0
                    return
        bf16 = self.precision.mode == "bf16"
        for p in self.params:
            if p.grad is None:
                continue
            pid = id(p)
            g = p.grad * scale if scale != 1.0 else p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if not plain:
                shrink = self.mitigation.shrink_factor(m, self.delay)
                if shrink != 1.0:
                    g = g * shrink
            v = self._velocity[pid]
            v *= m
            v += g
            if plain:
                a, b = 1.0, 0.0
            else:
                a, b = self.mitigation.spike_coefficients(m, self.delay)
            self._prev_weights[pid] = p.data
            update = a * v if b == 0.0 else a * v + b * g
            new_w = p.data - self.lr * update
            # bf16 stores weights on the bf16 grid: re-truncate after
            # every update (compute stays float32 — classic "bf16
            # storage, fp32 accumulate" mixed precision)
            p.data = simulate_bf16(new_w) if bf16 else new_w
            p.grad = None
        self.updates_applied += 1
        self._pending_grads = 0

    def pop_grad_segments(self) -> list[list[np.ndarray]]:
        """Per-parameter per-packet gradient segments accumulated since
        the last pop (stream order), for the cross-replica reduction."""
        segs = self._grad_segments or [[] for _ in self.params]
        self._grad_segments = []
        return segs

    def set_reduced_grads(self, grads: list[np.ndarray]) -> None:
        """Install reduced gradients as if they had been accumulated
        locally; the caller follows up with :meth:`flush_update`."""
        if len(grads) != len(self.params):
            raise ValueError(
                f"stage {self.index}: {len(grads)} reduced gradients for "
                f"{len(self.params)} parameters"
            )
        for p, g in zip(self.params, grads):
            p.grad = g

    @property
    def pending_grads(self) -> int:
        return self._pending_grads

    @property
    def in_flight(self) -> int:
        """Number of samples between their F and B at this stage."""
        return len(self.stash)

    def velocity(self, p) -> np.ndarray:
        return self._velocity[id(p)]

    # -- state (process-runtime handoff) ----------------------------------

    def state_dict(self) -> dict:
        """Everything a reconstructed stage needs to continue training.

        Only run-boundary state is captured (weights, velocity, previous
        weights for the weight-difference prediction form, update
        counter): between :meth:`PipelineExecutor.train` calls the stash
        is drained and no gradient is pending, which is exactly when the
        process runtime ships stages across process boundaries.
        """
        if self.stash:
            raise RuntimeError(
                f"stage {self.index}: state_dict with {len(self.stash)} "
                "stashed packets in flight — drain the pipeline first"
            )
        return {
            "params": [p.data.copy() for p in self.params],
            "velocity": [self._velocity[id(p)].copy() for p in self.params],
            "prev_weights": [
                self._prev_weights[id(p)].copy() for p in self.params
            ],
            "updates_applied": int(self.updates_applied),
            "lr": float(self.lr),
        }

    def validate_state(self, state: dict) -> None:
        """Check a :meth:`state_dict` payload against this stage's bound
        parameters without touching anything — array counts and shapes.

        Split out of :meth:`load_state_dict` so multi-stage restores
        (:meth:`PipelineExecutor.load_state_dict`) can validate *every*
        stage before mutating *any* of them: a bad checkpoint then fails
        atomically instead of leaving the engine half-loaded.

        Dtypes are validated too: a float64 checkpoint loaded into a
        float32 stage (or vice versa) is refused with the expected
        precision mode named, instead of the silent up/down-cast that
        would otherwise corrupt the parity contracts.
        """
        for key in ("params", "velocity", "prev_weights"):
            arrays = state[key]
            if len(arrays) != len(self.params):
                raise ValueError(
                    f"stage {self.index}: state has {len(arrays)} {key} "
                    f"arrays but the stage binds {len(self.params)} "
                    "parameters"
                )
            for i, (p, arr) in enumerate(zip(self.params, arrays)):
                if tuple(arr.shape) != tuple(p.data.shape):
                    raise ValueError(
                        f"stage {self.index}: {key}[{i}] has shape "
                        f"{tuple(arr.shape)}, parameter expects "
                        f"{tuple(p.data.shape)}"
                    )
                if arr.dtype != p.data.dtype:
                    raise ValueError(
                        f"stage {self.index}: {key}[{i}] has dtype "
                        f"{arr.dtype} but this stage runs in precision "
                        f"mode {self.precision.mode!r} (expected "
                        f"{p.data.dtype}) — refusing the silent cast; "
                        "save/load state in the matching precision mode"
                    )

    def load_state_dict(self, state: dict) -> None:
        """Load :meth:`state_dict` output into this stage's parameters.

        Parameter arrays are rebound (copies), so a model sharing the
        ``Parameter`` objects sees the loaded weights immediately; shapes
        are validated against the bound parameters before anything is
        touched, so a partial load can never leave the stage torn.  Any
        stashed in-flight packets are dropped: loaded state is always a
        drain-barrier snapshot, so whatever was in flight (e.g. when a
        crashed run is being restored) is stale by definition.
        """
        self.validate_state(state)
        for p, w, v, prev in zip(
            self.params, state["params"], state["velocity"],
            state["prev_weights"],
        ):
            p.data = w.astype(p.data.dtype, copy=True)
            self._velocity[id(p)] = v.astype(p.data.dtype, copy=True)
            self._prev_weights[id(p)] = prev.astype(p.data.dtype, copy=True)
            p.grad = None
        self.updates_applied = int(state["updates_applied"])
        self.lr = float(state.get("lr", self.lr))
        self._pending_grads = 0
        self._grad_segments = []
        self.stash.clear()


@dataclass(frozen=True)
class StageBuildSpec:
    """Picklable recipe for rebuilding one stage in another process.

    ``model_factory`` must be a spawn-safe callable (a module-level
    function or ``functools.partial`` over one) returning a freshly
    initialized :class:`~repro.models.arch.StageGraphModel`; the spec
    slices stage ``index`` out of it and applies the per-stage optimizer
    configuration.  Pair with :meth:`PipelineStage.load_state_dict` to
    ship the *current* weights, since the factory reproduces only the
    initialization.
    """

    model_factory: Callable[[], Any]
    index: int
    lr: float
    momentum: float = 0.0
    weight_decay: float = 0.0
    mitigation: MitigationConfig | None = None
    always_stash: bool = False
    record_versions: bool = False
    #: precision mode name; a spawn-rebuilt worker must cast its fresh
    #: model exactly like the parent did, or the shipped state dict and
    #: ring layouts would mismatch on dtype
    precision: str | None = None

    def build(self) -> PipelineStage:
        model = self.model_factory()
        policy = resolve_precision(self.precision)
        if not policy.is_reference:
            policy.cast_model(model)
        specs = model.stage_defs
        if not 0 <= self.index < len(specs):
            raise ValueError(
                f"stage index {self.index} out of range for a "
                f"{len(specs)}-stage model"
            )
        stage = PipelineStage(
            self.index,
            specs[self.index],
            len(specs),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            mitigation=self.mitigation,
            precision=policy,
        )
        stage.always_stash = self.always_stash
        stage.record_versions = self.record_versions
        return stage
