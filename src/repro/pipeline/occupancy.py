"""Occupancy-grid timing model of pipeline schedules (Figures 1-2).

These are pure timing constructs (no numerics): a grid with one row per
pipeline stage and one column per time step, each cell recording which
packet's forward and/or backward transformation the worker performs.  Used
to regenerate Figure 2 (utilization of fill-and-drain SGD at small/large
batch vs pipelined backpropagation), the Figure-1 style timelines, and the
side-by-side schedule comparison in ``examples/pipeline_schedules.py``.

A "packet" is the unit that occupies one pipeline slot per step: a single
sample for ``pb`` / ``fill_drain`` / ``1f1b``, a micro-batch for
``gpipe``.  The numeric counterpart of every grid here is a
:class:`~repro.pipeline.schedule.Schedule` driving the cycle-accurate
:class:`~repro.pipeline.executor.PipelineExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Cell encoding: 0 idle, 1 forward only, 2 backward only, 3 both.
IDLE, FWD, BWD, BOTH = 0, 1, 2, 3

_CELL_CHARS = {IDLE: ".", FWD: "F", BWD: "B", BOTH: "X"}


@dataclass
class Occupancy:
    """A stage x time occupancy grid plus per-cell packet ids."""

    grid: np.ndarray  # (S, T) of {IDLE, FWD, BWD, BOTH}
    fwd_sample: np.ndarray  # (S, T) packet id or -1
    bwd_sample: np.ndarray  # (S, T) packet id or -1

    @property
    def num_stages(self) -> int:
        return self.grid.shape[0]

    @property
    def time_steps(self) -> int:
        return self.grid.shape[1]


def _empty(S: int, T: int) -> Occupancy:
    return Occupancy(
        grid=np.zeros((S, T), dtype=np.int8),
        fwd_sample=np.full((S, T), -1, dtype=np.int64),
        bwd_sample=np.full((S, T), -1, dtype=np.int64),
    )


def _mark_fwd(occ: Occupancy, s: int, t: int, sid: int) -> None:
    occ.grid[s, t] |= FWD
    occ.fwd_sample[s, t] = sid


def _mark_bwd(occ: Occupancy, s: int, t: int, sid: int) -> None:
    occ.grid[s, t] |= BWD
    occ.bwd_sample[s, t] = sid


def pb_occupancy(num_stages: int, num_samples: int) -> Occupancy:
    """Pipelined backpropagation: continuous injection, one sample/step.

    Sample ``i``: ``F_s`` at ``t = i + s``; ``B_s`` at ``t = i + 2S-2-s``
    (the last stage does F and B of the same sample in one step).
    """
    S = num_stages
    T = num_samples + 2 * S - 2
    occ = _empty(S, T)
    for i in range(num_samples):
        for s in range(S):
            _mark_fwd(occ, s, i + s, i)
            _mark_bwd(occ, s, i + 2 * S - 2 - s, i)
    return occ


def fill_drain_occupancy(
    num_stages: int, batch_size: int, num_batches: int = 1
) -> Occupancy:
    """Fill-and-drain mini-batch SGD: each batch takes ``N + 2S - 2``
    steps; the next batch starts only after the previous drains."""
    S = num_stages
    span = batch_size + 2 * S - 2
    T = span * num_batches
    occ = _empty(S, T)
    for b in range(num_batches):
        t0 = b * span
        for i in range(batch_size):
            sid = b * batch_size + i
            for s in range(S):
                _mark_fwd(occ, s, t0 + i + s, sid)
                _mark_bwd(occ, s, t0 + i + 2 * S - 2 - s, sid)
    return occ


def gpipe_occupancy(
    num_stages: int, num_micro_batches: int, num_batches: int = 1
) -> Occupancy:
    """GPipe micro-batched fill-and-drain at *micro-batch* granularity.

    Each cell is one micro-batch transformation (a vectorized ``(B, ...)``
    op), so the grid is the fill-and-drain grid with ``M`` packets per
    mini-batch instead of ``N`` samples.  Slot utilization is therefore
    ``M / (M + 2S - 2)`` — micro-batching recovers utilization without
    giving up synchronous mini-batch semantics (Huang et al. 2019).
    """
    return fill_drain_occupancy(
        num_stages, num_micro_batches, num_batches=num_batches
    )


def one_f_one_b_occupancy(num_stages: int, num_samples: int) -> Occupancy:
    """PipeDream-style 1F1B timing (Harlap et al. 2018).

    In this fine-grained model (one sample per slot, every stage doing at
    most one F and one B per step) steady-state 1F1B occupies exactly the
    same cells as pipelined backpropagation: each worker alternates one
    forward and one backward per step.  The schedules differ in *weight
    semantics* (1F1B stashes the forward weights for the backward pass),
    which timing grids cannot express — see
    :class:`~repro.pipeline.schedule.OneFOneBSchedule`.
    """
    return pb_occupancy(num_stages, num_samples)


def schedule_utilization(occ: Occupancy) -> float:
    """Fraction of worker-step capacity used (1 F + 1 B per worker-step)."""
    work = np.count_nonzero(occ.grid & FWD) + np.count_nonzero(occ.grid & BWD)
    capacity = 2.0 * occ.grid.size
    return work / capacity


def render_occupancy(occ: Occupancy, max_cols: int = 120) -> str:
    """ASCII rendering: rows are stages (top = first stage), columns time.

    ``F`` forward only, ``B`` backward only, ``X`` both, ``.`` idle.
    """
    cols = min(occ.time_steps, max_cols)
    lines = []
    for s in range(occ.num_stages):
        row = "".join(_CELL_CHARS[int(c)] for c in occ.grid[s, :cols])
        lines.append(f"stage {s:3d} |{row}|")
    if cols < occ.time_steps:
        lines.append(f"... ({occ.time_steps - cols} more steps)")
    return "\n".join(lines)


def observed_stage_delays(occ: Occupancy) -> list[int]:
    """Per-stage F->B distance of sample 0 (equals ``2(S-1-s)``)."""
    delays = []
    for s in range(occ.num_stages):
        t_f = int(np.argmax(occ.fwd_sample[s] == 0))
        t_b = int(np.argmax(occ.bwd_sample[s] == 0))
        delays.append(t_b - t_f)
    return delays
