"""Cycle-accurate pipelined-backpropagation executor (the "GProp" role).

Discrete-time simulation of the paper's fine-grained pipeline: at each time
step every stage performs at most one forward and one backward
transformation; activations travel one stage per step; the last stage
computes the loss and seeds the backward pass in the same step, so a sample
occupies ``2S - 1`` steps (paper §2).

Two modes:

* ``"pb"`` — pipelined backpropagation: continuous injection, each stage
  updates its weights the moment a gradient arrives (update size one).
  Weight versions then follow eq. 5 exactly: the forward pass of sample
  ``i`` at stage ``s`` sees weights with ``max(0, i - 2(S-1-s))`` updates
  applied (property-tested).
* ``"fill_drain"`` — pipeline-parallel mini-batch SGD: inject ``N``
  samples, drain completely, apply the averaged update, repeat.  This is
  numerically identical to sequential mini-batch SGDM (the Figure-16
  validation) and exposes the fill/drain utilization penalty of eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.models.arch import StageGraphModel
from repro.pipeline.stage import PipelineStage


def softmax_xent_grad(
    logits: np.ndarray, label: int
) -> tuple[float, np.ndarray]:
    """Fused CE loss and dL/dlogits for a single sample ``(1, K)``."""
    z = logits.reshape(1, -1)
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    loss = -float(log_probs[0, int(label)])
    grad = np.exp(log_probs)
    grad[0, int(label)] -= 1.0
    return loss, grad.reshape(logits.shape)


@dataclass
class PipelineRunStats:
    """Outcome of one executor run."""

    losses: np.ndarray
    time_steps: int
    forward_ops: int
    backward_ops: int
    num_stages: int
    samples: int
    updates_per_stage: list[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Fraction of worker-step capacity used (each worker can do one F
        and one B per step)."""
        capacity = 2.0 * self.num_stages * max(self.time_steps, 1)
        return (self.forward_ops + self.backward_ops) / capacity

    @property
    def mean_loss(self) -> float:
        return float(self.losses.mean()) if self.losses.size else float("nan")


class PipelineExecutor:
    """Drive a :class:`StageGraphModel` through the pipeline, updating the
    model's parameters in place (they are shared with the stages)."""

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
    ):
        if mode not in ("pb", "fill_drain"):
            raise ValueError(f"mode must be 'pb' or 'fill_drain', got {mode!r}")
        if mode == "fill_drain" and update_size < 1:
            raise ValueError("fill_drain needs update_size >= 1")
        specs = model.stage_defs
        if not specs or specs[-1].kind != "loss":
            raise ValueError("model must end with a loss stage")
        self.model = model
        self.mode = mode
        self.update_size = int(update_size)
        self.lr_schedule = lr_schedule
        self.mitigation = mitigation or MitigationConfig.none()
        self.stages = [
            PipelineStage(
                i,
                spec,
                len(specs),
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
                mitigation=self.mitigation,
            )
            for i, spec in enumerate(specs)
        ]
        for st in self.stages:
            st.record_versions = record_versions
        self.samples_completed = 0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def set_lr(self, lr: float) -> None:
        for st in self.stages:
            st.lr = float(lr)

    # -- training -----------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Stream all samples through the pipeline (training mode)."""
        X = np.asarray(X)
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        if self.mode == "pb":
            stats = self._run(X, Y, inject_gate=None)
        else:
            stats = self._run(X, Y, inject_gate=self.update_size)
        for st in self.stages:
            if st.stash:
                raise RuntimeError(
                    f"stage {st.index} finished with {len(st.stash)} stashed "
                    "samples — pipeline did not drain"
                )
        return stats

    def _run(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        inject_gate: int | None,
    ) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        losses = np.zeros(n)
        fwd_in: dict[int, tuple[int, list[np.ndarray]]] = {}
        bwd_in: dict[int, tuple[int, list[np.ndarray]]] = {}
        next_inject = 0
        batch_start = 0  # fill-drain: first sample id of the current batch
        completed = 0
        t = 0
        f_ops = 0
        b_ops = 0

        while next_inject < n or fwd_in or bwd_in:
            # inject one new sample if the first stage is free this step
            may_inject = next_inject < n and 0 not in fwd_in
            if may_inject and inject_gate is not None:
                # fill-drain: only inject samples of the current batch
                may_inject = next_inject < batch_start + inject_gate
            if may_inject:
                fwd_in[0] = (next_inject, [X[next_inject : next_inject + 1]])
                next_inject += 1

            # forward sweep (uses arrivals from the previous step)
            new_fwd: dict[int, tuple[int, list[np.ndarray]]] = {}
            for s in range(S):
                item = fwd_in.pop(s, None)
                if item is None:
                    continue
                sid, payload = item
                stage = self.stages[s]
                if stage.spec.kind == "loss":
                    loss, glogits = softmax_xent_grad(payload[0], Y[sid])
                    losses[sid] = loss
                    bwd_in[s] = (sid, [glogits])
                    f_ops += 1
                else:
                    new_fwd[s + 1] = (sid, stage.forward(sid, payload))
                    f_ops += 1

            # backward sweep
            new_bwd: dict[int, tuple[int, list[np.ndarray]]] = {}
            for s in range(S - 1, -1, -1):
                item = bwd_in.pop(s, None)
                if item is None:
                    continue
                sid, grads = item
                stage = self.stages[s]
                upstream = stage.backward(sid, grads)
                if inject_gate is None:
                    stage.apply_update()  # PB: update size one
                b_ops += 1
                if s > 0:
                    new_bwd[s - 1] = (sid, upstream)
                else:
                    completed += 1
                    self.samples_completed += 1

            fwd_in = new_fwd
            bwd_in = new_bwd
            t += 1

            # fill-drain: batch fully drained -> apply averaged updates
            if inject_gate is not None:
                batch_n = min(inject_gate, n - batch_start)
                if batch_n and completed >= batch_start + batch_n:
                    for stage in self.stages:
                        stage.flush_update(batch_n)
                    batch_start += batch_n

            if self.lr_schedule is not None:
                self.set_lr(self.lr_schedule(self.samples_completed))

        return PipelineRunStats(
            losses=losses,
            time_steps=t,
            forward_ops=f_ops,
            backward_ops=b_ops,
            num_stages=S,
            samples=n,
            updates_per_stage=[st.updates_applied for st in self.stages],
        )
