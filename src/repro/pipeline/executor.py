"""Cycle-accurate pipeline engine (the "GProp" role).

Discrete-time simulation of the paper's fine-grained pipeline: at each
time step every stage performs at most one forward and one backward
transformation; packets travel one stage per step; the last stage
computes the loss and seeds the backward pass in the same step, so a
packet occupies ``2S - 1`` steps (paper §2).

The engine itself is schedule-agnostic.  *What* happens each step —
whether to inject, how many samples travel together as one vectorized
``(B, ...)`` packet, when a stage applies its gradient, whether stages
stash forward weights for the backward pass — is decided by a
:class:`~repro.pipeline.schedule.Schedule`:

* ``"pb"`` — pipelined backpropagation: continuous injection, each stage
  updates its weights the moment a gradient arrives (update size one).
  Weight versions then follow eq. 5 exactly: the forward pass of sample
  ``i`` at stage ``s`` sees weights with ``max(0, i - 2(S-1-s))`` updates
  applied (property-tested).
* ``"fill_drain"`` — pipeline-parallel mini-batch SGD: inject ``N``
  samples, drain completely, apply the averaged update, repeat.  This is
  numerically identical to sequential mini-batch SGDM (the Figure-16
  validation) and exposes the fill/drain utilization penalty of eq. 1.
* ``"gpipe"`` — micro-batched fill-and-drain (Huang et al. 2019): same
  update semantics as ``fill_drain`` but ``B`` samples move through a
  stage as one batched NumPy op, which is both the utilization story of
  GPipe and this executor's vectorized hot path.
* ``"1f1b"`` — PipeDream's one-forward-one-backward with per-stage
  weight stashing (Harlap et al. 2018): PB timing, but each sample's
  backward reuses its forward weights (zero inconsistency).

Schedules with packet size one reproduce the original per-sample engine
bit for bit (golden-tested in ``tests/test_schedules_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.models.arch import StageGraphModel
from repro.pipeline.schedule import Schedule, ScheduleState, make_schedule
from repro.pipeline.stage import PipelineStage
from repro.precision.policy import PrecisionPolicy, resolve_precision


def softmax_xent_grad_batch(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fused CE loss and dL/dlogits for a packet ``(B, K)``.

    Returns per-sample losses ``(B,)`` and the *unreduced* gradient
    ``(B, K)`` (one full gradient per sample; the schedules decide how
    gradients are averaged into updates).
    """
    B = logits.shape[0]
    z = logits.reshape(B, -1)
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    rows = np.arange(B)
    labels = np.asarray(labels, dtype=np.int64).reshape(B)
    losses = -log_probs[rows, labels]
    grad = np.exp(log_probs)
    grad[rows, labels] -= 1.0
    return losses, grad.reshape(logits.shape)


def softmax_xent_grad(
    logits: np.ndarray, label: int
) -> tuple[float, np.ndarray]:
    """Fused CE loss and dL/dlogits for a single sample ``(1, K)``."""
    losses, grad = softmax_xent_grad_batch(
        logits.reshape(1, -1), np.array([int(label)])
    )
    return float(losses[0]), grad.reshape(logits.shape)


def check_stages_drained(stages: Sequence["PipelineStage"]) -> None:
    """Raise if any stage still holds stashed packets after a run —
    shared post-train invariant of both pipeline engines."""
    for st in stages:
        if st.stash:
            raise RuntimeError(
                f"stage {st.index} finished with {len(st.stash)} stashed "
                "packets — pipeline did not drain"
            )


@dataclass
class _Packet:
    """A group of consecutive samples travelling the pipeline together."""

    pid: int  # stash key; equals ``start`` (unique while in flight)
    start: int  # first sample index
    size: int  # number of samples
    payload: list[np.ndarray]  # (B, ...) arrays: main + skip stack


@dataclass
class PipelineRunStats:
    """Outcome of one executor run.

    ``forward_ops``/``backward_ops`` count *slot* occupancy (one packet
    transformation each); ``forward_samples``/``backward_samples`` count
    sample transformations, so a micro-batched op of ``B`` samples adds
    ``1`` to the former and ``B`` to the latter.
    """

    losses: np.ndarray
    time_steps: int
    forward_ops: int
    backward_ops: int
    num_stages: int
    samples: int
    updates_per_stage: list[int] = field(default_factory=list)
    forward_samples: int = 0
    backward_samples: int = 0
    micro_batch: int = 1
    schedule: str = "pb"
    #: Measured wall-clock stats when the run came from the threaded
    #: :class:`~repro.pipeline.runtime.ConcurrentPipelineRunner`
    #: (a :class:`~repro.pipeline.runtime.RuntimeStats`); ``None`` for
    #: discrete-time simulator runs.
    runtime: object | None = None
    #: Data-parallel pipeline replicas that produced this record (the
    #: replicated runner merges per-replica records with
    #: :meth:`merge_replicas`); scales the worker-step capacity so
    #: utilization stays sample-accurate under replication.
    replicas: int = 1

    @property
    def utilization(self) -> float:
        """Fraction of worker-step capacity used.

        Each worker can process one forward and one backward packet of up
        to ``micro_batch`` samples per step, so capacity is counted in
        sample transformations (``2 * S * T * B`` per replica, ``R``
        replicas) and work in actual sample transformations — a
        partially-filled tail micro-batch counts fractionally rather
        than as a full op.

        A zero-step run (empty stream) has zero capacity *and* zero
        work; its utilization is defined as 0.0 rather than left to a
        0/0 accident.
        """
        if self.time_steps <= 0:
            return 0.0
        width = max(self.micro_batch, 1)
        capacity = (
            2.0 * self.num_stages * self.time_steps * width
            * max(self.replicas, 1)
        )
        work = self.forward_samples + self.backward_samples
        if self.forward_ops + self.backward_ops > 0 and work == 0:
            # legacy construction with op counts but no sample counts
            work = self.forward_ops + self.backward_ops
        return work / capacity

    @staticmethod
    def merge_replicas(
        parts: Sequence["PipelineRunStats"],
        losses: np.ndarray,
        updates_per_stage: list[int] | None = None,
        runtime: object | None = None,
    ) -> "PipelineRunStats":
        """Merge per-replica run records into one sample-accurate record.

        ``losses`` is the already-scattered global loss array (per-replica
        losses mapped back to their global stream positions).  Work
        counters are summed across replicas; ``time_steps`` is the *max*
        (replicas run concurrently, so wall capacity is one replica's
        steps times ``R`` workers — never the sum, which would
        double-count capacity and deflate utilization).
        """
        if not parts:
            raise ValueError("merge_replicas needs at least one record")
        first = parts[0]
        for p in parts[1:]:
            if (
                p.num_stages != first.num_stages
                or p.schedule != first.schedule
                or p.micro_batch != first.micro_batch
            ):
                raise ValueError(
                    "merge_replicas: mismatched per-replica records "
                    f"({p.schedule}/{p.num_stages}/{p.micro_batch} vs "
                    f"{first.schedule}/{first.num_stages}/"
                    f"{first.micro_batch})"
                )
        return PipelineRunStats(
            losses=losses,
            time_steps=max(p.time_steps for p in parts),
            forward_ops=sum(p.forward_ops for p in parts),
            backward_ops=sum(p.backward_ops for p in parts),
            num_stages=first.num_stages,
            samples=int(losses.shape[0]),
            updates_per_stage=(
                list(updates_per_stage)
                if updates_per_stage is not None
                else list(first.updates_per_stage)
            ),
            forward_samples=sum(p.forward_samples for p in parts),
            backward_samples=sum(p.backward_samples for p in parts),
            micro_batch=first.micro_batch,
            schedule=first.schedule,
            runtime=runtime,
            replicas=sum(max(p.replicas, 1) for p in parts),
        )

    @property
    def mean_loss(self) -> float:
        """Mean per-sample loss; NaN (not a crash, not 0.0) for the
        empty stream, so downstream aggregation can't mistake a run
        that never saw data for a perfectly-converged one."""
        return float(self.losses.mean()) if self.losses.size else float("nan")


class PipelineExecutor:
    """Drive a :class:`StageGraphModel` through the pipeline, updating the
    model's parameters in place (they are shared with the stages).

    The schedule may be named via ``mode`` (with ``update_size`` /
    ``micro_batch_size`` forwarded to :func:`make_schedule`) or passed
    ready-made via ``schedule`` (which then wins).
    """

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
        schedule: Schedule | None = None,
        precision: "PrecisionPolicy | str | None" = None,
    ):
        if schedule is None:
            schedule = make_schedule(
                mode, update_size=update_size, micro_batch_size=micro_batch_size
            )
        specs = model.stage_defs
        if not specs or specs[-1].kind != "loss":
            raise ValueError("model must end with a loss stage")
        self.precision = resolve_precision(precision)
        if not self.precision.trainable:
            raise ValueError(
                f"precision mode {self.precision.mode!r} is serving-only; "
                "training engines accept 'float64', 'float32' or 'bf16'"
            )
        if not self.precision.is_reference:
            # one-time cast: parameters/buffers land on the policy's
            # storage grid, so activations, gradients and (in the
            # process runtime) every shm-ring slot follow its dtype
            self.precision.cast_model(model)
        self.model = model
        self.schedule = schedule
        self.mode = schedule.name
        self.update_size = schedule.update_size
        self.lr_schedule = lr_schedule
        self.mitigation = mitigation or MitigationConfig.none()
        self.stages = [
            PipelineStage(
                i,
                spec,
                len(specs),
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
                mitigation=self.mitigation,
                precision=self.precision,
            )
            for i, spec in enumerate(specs)
        ]
        for st in self.stages:
            st.record_versions = record_versions
            st.always_stash = schedule.stash_weights
        self.samples_completed = 0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def set_lr(self, lr: float) -> None:
        for st in self.stages:
            st.lr = float(lr)

    def flush_stages(self, count: int) -> None:
        """Apply the averaged update of ``count`` accumulated gradients on
        every stage (called by synchronous schedules at batch boundaries)."""
        for stage in self.stages:
            stage.flush_update(count)

    # -- engine state (checkpoint/resume) -----------------------------------

    def state_dict(self) -> dict:
        """Complete engine state at a drain barrier.

        Captures every stage's weights/velocity/previous-weights/counters
        (via :meth:`PipelineStage.state_dict`, which refuses mid-flight
        stages) plus the engine-level progress counter that drives the LR
        schedule, tagged with the schedule identity so a restore into a
        differently-configured engine fails loudly.  Valid only between
        :meth:`train` calls — exactly the safe points the checkpoint
        subsystem (:mod:`repro.pipeline.checkpoint`) snapshots at.
        """
        return {
            "schedule": {
                "name": self.schedule.name,
                "update_size": int(self.schedule.update_size),
                "micro_batch": int(self.schedule.micro_batch),
            },
            "num_stages": self.num_stages,
            "samples_completed": int(self.samples_completed),
            "stages": [st.state_dict() for st in self.stages],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this engine.

        The schedule identity and stage count must match, and every
        stage's arrays are validated *before* any stage is mutated, so a
        mismatched checkpoint can never leave the engine torn.  Stashes
        are cleared stage by stage (loaded state is a drain-barrier
        snapshot; anything in flight is stale by definition).
        """
        sched = state.get("schedule", {})
        mine = (
            self.schedule.name,
            int(self.schedule.update_size),
            int(self.schedule.micro_batch),
        )
        theirs = (
            sched.get("name"),
            int(sched.get("update_size", -1)),
            int(sched.get("micro_batch", -1)),
        )
        if mine != theirs:

            def _fmt(tag: tuple) -> str:
                return (
                    f"{tag[0]!r} (update_size={tag[1]}, "
                    f"micro_batch={tag[2]})"
                )

            # name BOTH schedule tags — the on-disk one and this
            # engine's — so a mis-paired checkpoint is diagnosable from
            # the message alone
            raise ValueError(
                "engine state was captured under schedule "
                f"{_fmt(theirs)} but this engine runs {_fmt(mine)}"
            )
        if int(state["num_stages"]) != self.num_stages:
            raise ValueError(
                f"engine state has {state['num_stages']} stages, this "
                f"engine has {self.num_stages}"
            )
        stage_states = state["stages"]
        if len(stage_states) != len(self.stages):
            raise ValueError(
                f"engine state has {len(stage_states)} stage payloads "
                f"for {len(self.stages)} stages"
            )
        for stage, st in zip(self.stages, stage_states):
            stage.validate_state(st)
        for stage, st in zip(self.stages, stage_states):
            stage.load_state_dict(st)
        self.samples_completed = int(state["samples_completed"])

    # -- training -----------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Stream all samples through the pipeline (training mode)."""
        if self.schedule.forward_only:
            raise ValueError(
                f"schedule {self.schedule.name!r} is forward-only; use "
                "infer() (or repro.serve) instead of train()"
            )
        X = self.precision.cast_array(X)
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        stats = self._run(X, Y)
        check_stages_drained(self.stages)
        return stats

    # -- inference -----------------------------------------------------------

    def infer(
        self,
        X: np.ndarray,
        micro_batch_size: int = 1,
        schedule=None,
        stall_timeout: float | None = None,
    ):
        """Forward-only inference over the pipeline (serving mode).

        Drives an :class:`~repro.pipeline.schedule.InferenceSchedule`
        (or any ``forward_only`` schedule passed via ``schedule``)
        through the same stages ``train`` uses, with modules held in
        eval mode and no autodiff graph — see
        :mod:`repro.pipeline.inference`.  Returns an
        :class:`~repro.pipeline.inference.InferenceRunStats` whose
        ``outputs`` are the last compute stage's logits, in input
        order, bit-exact across all three runtime backends for the
        same packet decomposition.
        """
        from repro.pipeline.inference import (
            DEFAULT_INFER_TIMEOUT,
            infer_batch,
        )

        return infer_batch(
            self.stages,
            self.precision.cast_array(X),
            schedule=schedule,
            micro_batch_size=micro_batch_size,
            backend="sim",
            stall_timeout=(
                DEFAULT_INFER_TIMEOUT if stall_timeout is None
                else stall_timeout
            ),
        )

    def _run(self, X: np.ndarray, Y: np.ndarray) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        sched.reset(n)
        losses = np.zeros(n)
        fwd_in: dict[int, _Packet] = {}
        bwd_in: dict[int, _Packet] = {}
        f_ops = b_ops = 0
        f_samples = b_samples = 0

        while state.next_sample < n or fwd_in or bwd_in:
            # inject one new packet if the first stage is free this step
            if state.next_sample < n and 0 not in fwd_in:
                size = min(sched.inject_size(state), n - state.next_sample)
                if size > 0:
                    i = state.next_sample
                    fwd_in[0] = _Packet(i, i, size, [X[i : i + size]])
                    state.next_sample += size

            # forward sweep (uses arrivals from the previous step)
            new_fwd: dict[int, _Packet] = {}
            for s in range(S):
                pkt = fwd_in.pop(s, None)
                if pkt is None:
                    continue
                stage = self.stages[s]
                if stage.spec.kind == "loss":
                    lvec, glogits = softmax_xent_grad_batch(
                        pkt.payload[0], Y[pkt.start : pkt.start + pkt.size]
                    )
                    losses[pkt.start : pkt.start + pkt.size] = lvec
                    bwd_in[s] = _Packet(pkt.pid, pkt.start, pkt.size, [glogits])
                else:
                    new_fwd[s + 1] = _Packet(
                        pkt.pid,
                        pkt.start,
                        pkt.size,
                        stage.forward(pkt.pid, pkt.payload),
                    )
                f_ops += 1
                f_samples += pkt.size

            # backward sweep
            new_bwd: dict[int, _Packet] = {}
            for s in range(S - 1, -1, -1):
                pkt = bwd_in.pop(s, None)
                if pkt is None:
                    continue
                stage = self.stages[s]
                upstream = stage.backward(pkt.pid, pkt.payload)
                if sched.update_after_backward(s):
                    stage.apply_update()
                b_ops += 1
                b_samples += pkt.size
                if s > 0:
                    new_bwd[s - 1] = _Packet(pkt.pid, pkt.start, pkt.size, upstream)
                else:
                    state.completed += pkt.size
                    self.samples_completed += pkt.size

            fwd_in = new_fwd
            bwd_in = new_bwd
            state.step += 1

            # batch boundaries: synchronous schedules flush averaged updates
            sched.end_step(self, state)

            if self.lr_schedule is not None:
                self.set_lr(self.lr_schedule(self.samples_completed))

        return PipelineRunStats(
            losses=losses,
            time_steps=state.step,
            forward_ops=f_ops,
            backward_ops=b_ops,
            num_stages=S,
            samples=n,
            updates_per_stage=[st.updates_applied for st in self.stages],
            forward_samples=f_samples,
            backward_samples=b_samples,
            micro_batch=sched.micro_batch,
            schedule=sched.name,
        )
