"""Durable training: versioned run checkpoints, resume, and safe points.

Long pipelined-backprop runs on real hardware die — machines reboot, jobs
get preempted, workers OOM.  PipeDream-style systems (Harlap et al. 2018)
treat per-stage state capture as a first-class concern for exactly this
reason; this module is that concern for all three pipeline engines
(:class:`~repro.pipeline.executor.PipelineExecutor`,
:class:`~repro.pipeline.runtime.ConcurrentPipelineRunner`,
:class:`~repro.pipeline.runtime.ProcessPipelineRunner`).

What a checkpoint holds
-----------------------

A :func:`capture_checkpoint` snapshot is *complete*: restoring it into a
freshly built engine + data stream continues the run **bit-exactly** —
the resumed run computes the same losses and lands on hex-identical
final weights as the uninterrupted run with the same checkpoint cadence.
It contains

* every stage's weights, velocity, previous weights (for the
  weight-difference prediction form), update counter and learning rate
  (:meth:`PipelineStage.state_dict` via the engine's ``state_dict``);
* the engine-level progress counter (``samples_completed``) that drives
  the LR schedule;
* the schedule identity (name / update size / micro-batch), so a restore
  into a differently-configured engine fails loudly instead of silently
  training a different trajectory;
* the data-stream cursor ``(epoch, index, rng state)`` of a
  :class:`~repro.data.loader.ResumableSampleStream`, so the resumed run
  consumes the *same* sample sequence the uninterrupted run would have —
  including mid-epoch positions, because the RNG state pinned at epoch
  start regenerates the epoch's permutation and augmentation exactly.

Safe points
-----------

Snapshots are only taken at **drain barriers**: moments when the
pipeline holds no in-flight packets and no stage has a pending gradient,
which is precisely the boundary between two ``engine.train()`` calls
(``PipelineStage.state_dict`` refuses mid-flight stages, so an unsafe
capture cannot happen silently).  :class:`DurableRun` creates those
barriers on a fixed cadence by splitting the sample stream into
``checkpoint_every``-sample segments.  Draining is not free for the
asynchronous schedules (``pb``/``1f1b`` see slightly different weight
staleness around a barrier than they would mid-stream), so the
reproducibility contract is *cadence-matched*: a resumed run is
bit-identical to the uninterrupted run **with the same
checkpoint_every** — which is also exactly what the recovery story
needs, since the golden and the crashed run share their cadence.

On-disk format
--------------

One file, written atomically (temp file + ``os.replace`` in the target
directory, fsynced) so a crash mid-write can never corrupt the previous
checkpoint::

    [ 10-byte magic ][ uint32 LE format version ][ pickled payload ]

The payload is a plain dict of NumPy arrays and scalars; pickle
round-trips float64 arrays bit-exactly.  :func:`load_checkpoint`
validates the magic and refuses versions newer than it understands.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field

import numpy as np

#: File magic: identifies a checkpoint regardless of extension.
CHECKPOINT_MAGIC = b"REPRO-CKPT"
#: Current on-disk format version (bump on incompatible payload changes).
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from an unknown format."""


# ---------------------------------------------------------------------------
# file format
# ---------------------------------------------------------------------------


def save_checkpoint(path: str, payload: dict) -> str:
    """Atomically write ``payload`` as a versioned checkpoint file.

    The write goes to a temp file in the target directory first and is
    published with ``os.replace``, so readers either see the previous
    complete checkpoint or the new complete checkpoint — never a torn
    file, even if the process dies mid-write.
    """
    payload = dict(payload)
    payload["format_version"] = CHECKPOINT_VERSION
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path = os.path.abspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(CHECKPOINT_MAGIC)
            f.write(struct.pack("<I", CHECKPOINT_VERSION))
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as f:
            head = f.read(len(CHECKPOINT_MAGIC))
            if head != CHECKPOINT_MAGIC:
                raise CheckpointError(
                    f"{path}: not a checkpoint file (bad magic {head!r})"
                )
            raw = f.read(4)
            if len(raw) != 4:
                raise CheckpointError(f"{path}: truncated version header")
            (version,) = struct.unpack("<I", raw)
            if version > CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"{path}: format version {version} is newer than this "
                    f"build understands (max {CHECKPOINT_VERSION})"
                )
            try:
                payload = pickle.load(f)
            except Exception as exc:
                raise CheckpointError(
                    f"{path}: corrupt checkpoint body ({exc!r})"
                ) from exc
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path} does not exist") from exc
    if not isinstance(payload, dict) or "engine" not in payload:
        raise CheckpointError(f"{path}: payload is not a run checkpoint")
    return payload


# ---------------------------------------------------------------------------
# capture / restore
# ---------------------------------------------------------------------------


def capture_checkpoint(
    engine, stream=None, metadata: dict | None = None
) -> dict:
    """Snapshot a run at a drain barrier into a serializable payload.

    ``engine`` is any of the three pipeline engines (they share the
    ``state_dict`` surface); ``stream`` an optional
    :class:`~repro.data.loader.ResumableSampleStream` whose cursor rides
    along.  Must be called between ``train()`` calls — the stage-level
    capture refuses mid-flight state.
    """
    return {
        "format_version": CHECKPOINT_VERSION,
        "engine": engine.state_dict(),
        "stream": None if stream is None else stream.state_dict(),
        "metadata": dict(metadata or {}),
    }


def restore_checkpoint(ckpt: dict, engine=None, stream=None) -> dict:
    """Load a payload (from :func:`capture_checkpoint` or
    :func:`load_checkpoint`) into an engine and/or stream.

    Pass freshly built objects configured like the originals (same model
    architecture, schedule, optimizer hyperparameters, stream
    epochs/seed); the restore validates what it can (schedule identity,
    stage count, array shapes) and rebinds the rest.  Returns ``ckpt``
    for chaining.
    """
    if engine is not None:
        engine.load_state_dict(ckpt["engine"])
    if stream is not None:
        if ckpt.get("stream") is None:
            raise CheckpointError(
                "checkpoint carries no stream cursor but a stream was "
                "passed to restore"
            )
        stream.load_state_dict(ckpt["stream"])
    return ckpt


def restore_inference_weights(ckpt, model) -> dict:
    """Weights-only restore for serving: load a training checkpoint's
    parameters into a freshly built model, **stripping optimizer state**.

    ``ckpt`` is a checkpoint payload (from :func:`load_checkpoint` /
    :func:`capture_checkpoint`) or a path to a checkpoint file; ``model``
    a :class:`~repro.models.arch.StageGraphModel` built exactly like the
    one that trained.  Only the per-stage parameter arrays are loaded —
    velocity, previous weights, update counters and learning rates are
    training concerns an inference session has no use for — and the
    schedule tag is deliberately **ignored**: the schedule a model was
    trained under does not change what its frozen weights compute, so a
    PB-trained checkpoint serves identically to a GPipe-trained one.

    Validation is all-then-load: stage count and every parameter
    array's shape are checked against the model before anything is
    mutated, so a mismatched checkpoint can never leave the model torn.
    Returns the checkpoint's ``metadata`` dict for provenance display.
    """
    if isinstance(ckpt, (str, os.PathLike)):
        ckpt = load_checkpoint(os.fspath(ckpt))
    engine_state = ckpt.get("engine")
    if not isinstance(engine_state, dict) or "stages" not in engine_state:
        raise CheckpointError(
            "checkpoint payload carries no engine state to restore "
            "weights from"
        )
    stage_states = engine_state["stages"]
    specs = model.stage_defs
    if len(stage_states) != len(specs):
        raise CheckpointError(
            f"checkpoint has {len(stage_states)} stage payloads but the "
            f"model has {len(specs)} stages"
        )
    plan: list[tuple] = []
    for i, (spec, st) in enumerate(zip(specs, stage_states)):
        params = list(spec.module.parameters()) if spec.module else []
        arrays = st.get("params", [])
        if len(arrays) != len(params):
            raise CheckpointError(
                f"stage {i}: checkpoint holds {len(arrays)} parameter "
                f"arrays but the model binds {len(params)}"
            )
        for j, (p, arr) in enumerate(zip(params, arrays)):
            if tuple(arr.shape) != tuple(p.data.shape):
                raise CheckpointError(
                    f"stage {i}: params[{j}] has shape "
                    f"{tuple(arr.shape)}, model expects "
                    f"{tuple(p.data.shape)}"
                )
            plan.append((p, arr))
    for p, arr in plan:
        p.data = arr.astype(p.data.dtype, copy=True)
        p.grad = None
    return dict(ckpt.get("metadata", {}))


def model_fingerprint(model) -> str:
    """SHA-256 over every parameter's raw bytes — the hex-equality
    fingerprint the resume-parity checks compare."""
    h = hashlib.sha256()
    for p in model.parameters():
        arr = np.ascontiguousarray(p.data)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def checkpoint_fingerprint(ckpt, dtype="float64") -> str:
    """The :func:`model_fingerprint` a model *will* have after
    :func:`restore_inference_weights` loads ``ckpt`` into it — computed
    straight from the checkpoint payload, no model required.

    This is the fleet hot-swap verification handle: the router computes
    the expected fingerprint from the checkpoint once, then checks every
    reloaded replica's session fingerprint against it before letting the
    replica rejoin — a replica serving the wrong weights can never
    silently re-enter rotation.  ``dtype`` is the target model's
    parameter dtype (the restore casts into it; ``float64`` for the
    reference precision every training engine checkpoints in).
    """
    if isinstance(ckpt, (str, os.PathLike)):
        ckpt = load_checkpoint(os.fspath(ckpt))
    engine_state = ckpt.get("engine")
    if not isinstance(engine_state, dict) or "stages" not in engine_state:
        raise CheckpointError(
            "checkpoint payload carries no engine state to fingerprint"
        )
    dtype = np.dtype(dtype)
    h = hashlib.sha256()
    for st in engine_state["stages"]:
        for arr in st.get("params", []):
            arr = np.ascontiguousarray(np.asarray(arr).astype(dtype))
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# the durable-run driver
# ---------------------------------------------------------------------------


@dataclass
class DurableRunResult:
    """Outcome of one :meth:`DurableRun.run` call.

    ``losses`` concatenates the per-sample losses of every segment this
    call executed (a resumed run reports only post-resume segments);
    ``stats`` keeps the per-segment
    :class:`~repro.pipeline.executor.PipelineRunStats`.
    """

    losses: np.ndarray
    samples: int
    segments: int
    checkpoint_path: str | None
    stats: list = field(default_factory=list)

    @property
    def mean_loss(self) -> float:
        return float(self.losses.mean()) if self.losses.size else float("nan")


class DurableRun:
    """Drive an engine over a resumable stream with periodic snapshots.

    Splits the stream into ``checkpoint_every``-sample segments, trains
    one segment per ``engine.train()`` call, and snapshots engine +
    stream cursor to ``checkpoint_path`` after every segment (and once
    more at the end).  Each segment boundary is a drain barrier — the
    only state a restart needs is what the checkpoint holds.

    ``checkpoint_every`` is rounded **up** to a multiple of the
    schedule's update size so barriers align with the synchronous
    schedules' batch boundaries (a mis-aligned barrier would flush a
    partial batch and change the trajectory).  ``0`` disables periodic
    snapshots: the whole stream trains as one segment, with a single
    final checkpoint if a path is given.

    Resume with :meth:`DurableRun.resume`: build a fresh engine and
    stream exactly as the original run did, and the checkpoint rebinds
    their state and cursor.  The cadence is stored in the file and
    reused by default, which is what makes resumed runs bit-identical to
    the uninterrupted run (see module docstring on safe points).
    """

    def __init__(
        self,
        engine,
        stream,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        metadata: dict | None = None,
    ):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.engine = engine
        self.stream = stream
        self.checkpoint_path = checkpoint_path
        unit = max(1, int(engine.update_size))
        every = int(checkpoint_every)
        if every:
            every = -(-every // unit) * unit  # round up to a drain barrier
        self.checkpoint_every = every
        self.metadata = dict(metadata or {})

    def _snapshot(self) -> None:
        if self.checkpoint_path is None:
            return
        payload = capture_checkpoint(
            self.engine, self.stream, metadata=self.metadata
        )
        payload["checkpoint_every"] = self.checkpoint_every
        payload["samples_completed"] = int(self.engine.samples_completed)
        save_checkpoint(self.checkpoint_path, payload)

    def run(self, max_samples: int | None = None) -> DurableRunResult:
        """Train until the stream is exhausted (or ``max_samples`` more
        samples have been consumed), checkpointing at every barrier."""
        losses: list[np.ndarray] = []
        stats_list = []
        segments = 0
        budget = (
            self.stream.remaining
            if max_samples is None
            else min(int(max_samples), self.stream.remaining)
        )
        done = 0
        while done < budget:
            take = min(self.checkpoint_every or budget, budget - done)
            xs, ys = self.stream.next_chunk(take)
            stats = self.engine.train(xs, ys)
            losses.append(np.asarray(stats.losses))
            stats_list.append(stats)
            segments += 1
            done += xs.shape[0]
            self._snapshot()
        return DurableRunResult(
            losses=(
                np.concatenate(losses) if losses else np.zeros(0)
            ),
            samples=done,
            segments=segments,
            checkpoint_path=self.checkpoint_path,
            stats=stats_list,
        )

    @classmethod
    def resume(
        cls,
        checkpoint_path: str,
        engine,
        stream,
        checkpoint_every: int | None = None,
        metadata: dict | None = None,
    ) -> "DurableRun":
        """Rebind a saved run onto a freshly built engine + stream.

        ``checkpoint_every`` defaults to the cadence stored in the file —
        keep that default whenever bit-parity with the original run
        matters, since the barrier positions are part of the trajectory.
        """
        ckpt = load_checkpoint(checkpoint_path)
        restore_checkpoint(ckpt, engine, stream)
        if checkpoint_every is None:
            checkpoint_every = int(ckpt.get("checkpoint_every", 0))
        meta = dict(ckpt.get("metadata", {}))
        meta.update(metadata or {})
        return cls(
            engine,
            stream,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            metadata=meta,
        )
