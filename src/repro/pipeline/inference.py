"""Forward-only pipelined inference: streams, driver, and run stats.

Training taught this repo three ways to run a pipeline (discrete-time
simulator, thread-per-stage, process-per-stage over shared-memory
rings); serving needs the same pipeline *without the backward half*.
torchgpipe and PipeDream both note that the forward pipelining structure
pays off at inference time too — stages stay busy on a stream of small
packets without waiting for large batches, which is exactly the paper's
argument applied to the online setting.

This module is the engine-level half of the :mod:`repro.serve`
subsystem.  It provides one **inference stream** per runtime backend —
a persistent forward-only pipeline you push packets into and pull
outputs out of:

* :class:`SimInferenceStream` — synchronous in-process forward (the
  discrete-time engine's counterpart; a submitted packet is transformed
  through every stage immediately);
* :class:`ThreadedInferenceStream` — one worker thread per compute
  stage, packets through per-stage forward deques;
* :class:`ProcessInferenceStream` — one worker process per compute
  stage, packets through the **forward-only shared-memory rings** of
  :func:`repro.pipeline.transport.build_inference_rings` (no backward
  slots: slots are released eagerly, and the last ring is consumed by
  the parent, which reads the logits straight out of shared memory).

All three expose the same SPSC surface — ``submit`` (non-blocking, with
explicit backpressure: ``False`` means "pipeline full, try later"),
``poll`` (completed ``(pid, start, logits)`` triples) and ``close`` —
so :func:`run_inference` can drive any of them through an
:class:`~repro.pipeline.schedule.InferenceSchedule` unchanged, and the
serving front-end (:mod:`repro.serve.server`) can keep one stream open
across requests.

Determinism contract
--------------------

Inference applies no updates, so weights are constant and every packet's
output is independent of worker timing: **all three streams produce
bit-identical outputs for the same packet decomposition**.  The
decomposition itself matters — BLAS kernels round differently for
different GEMM shapes, so a width-3 packet and a width-64 batch can
disagree in the last ulp — which is why the parity contract everywhere
in :mod:`repro.serve` is "bit-exact with the offline batched forward
over the *same* micro-batch packets" (pinned in
``tests/test_serve_session.py``).

Streams hold modules in ``eval`` mode for their lifetime (BatchNorm uses
running stats, Dropout passes through) and run every stage forward with
``train=False`` — no autodiff graph, no stash, nothing mutated.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.pipeline.schedule import InferenceSchedule, Schedule, ScheduleState
from repro.pipeline.stage import PipelineStage, StageBuildSpec
from repro.pipeline.transport import (
    ShmRing,
    TransportAborted,
    build_inference_rings,
    probe_boundary_layouts,
)

#: Default ceiling for any single wait inside a stream or driver.
DEFAULT_INFER_TIMEOUT = 60.0
#: Default maximum packets in flight inside one stream (backpressure
#: threshold; the process stream additionally sizes its rings with it).
DEFAULT_STREAM_CAPACITY = 8


class InferenceStreamError(RuntimeError):
    """A stream worker died or the stream was misused."""


@dataclass
class InferenceStageCounters:
    """Per-stage op accounting of one inference stream's lifetime."""

    index: int
    forward_ops: int = 0
    forward_samples: int = 0
    busy_seconds: float = 0.0


@dataclass
class InferenceRunStats:
    """Outcome of one forward-only run (``engine.infer`` /
    ``InferenceSession.infer``).

    ``outputs`` holds one logits row per input sample, in input order;
    ``time_steps`` is the modeled pipeline span (``P + S - 1`` for ``P``
    packets — forward-only pays half of training's fill cost).
    """

    outputs: np.ndarray
    time_steps: int
    forward_ops: int
    forward_samples: int
    num_stages: int
    samples: int
    micro_batch: int = 1
    schedule: str = "infer"
    backend: str = "sim"
    wall_seconds: float = 0.0
    stage_counters: list = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Samples per wall-clock second (NaN for an unmeasured run)."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.samples / self.wall_seconds


@contextmanager
def modules_eval_mode(modules):
    """Hold the given modules in eval mode (restore previous on exit) —
    the one save/eval/restore implementation every serving-side caller
    shares (streams, offline references, the sequential baseline)."""
    modules = list(modules)
    prev = [m.training for m in modules]
    for m in modules:
        m.eval()
    try:
        yield
    finally:
        for m, mode in zip(modules, prev):
            m.train(mode)


def eval_mode(stages: Sequence[PipelineStage]):
    """:func:`modules_eval_mode` over a stage list's modules."""
    return modules_eval_mode(
        st.spec.module for st in stages if st.spec.module is not None
    )


def _check_inference_stages(stages: Sequence[PipelineStage]) -> None:
    if len(stages) < 2 or stages[-1].spec.kind != "loss":
        raise InferenceStreamError(
            "inference needs a pipeline of >= 2 stages ending in the "
            f"loss slot (got {len(stages)} stages)"
        )


# ---------------------------------------------------------------------------
# sim stream
# ---------------------------------------------------------------------------


class SimInferenceStream:
    """Synchronous forward-only stream (the simulator's counterpart).

    ``submit`` transforms the packet through every compute stage
    immediately and buffers the result for ``poll``.  ``capacity``
    bounds the unpolled-result buffer so a caller that never polls still
    sees backpressure instead of unbounded growth — the same contract
    the concurrent streams enforce on their in-flight window.
    """

    backend = "sim"

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        capacity: int = DEFAULT_STREAM_CAPACITY,
        **_unused: Any,
    ):
        _check_inference_stages(stages)
        self.stages = list(stages)
        self.capacity = max(1, int(capacity))
        self.counters = [
            InferenceStageCounters(index=s) for s in range(len(stages))
        ]
        self._results: deque = deque()
        self._lock = threading.Lock()
        self._eval_guard = eval_mode(self.stages)
        self._eval_guard.__enter__()
        self._closed = False

    def submit(self, pid: int, start: int, x: np.ndarray) -> bool:
        if self._closed:
            raise InferenceStreamError("stream is closed")
        with self._lock:
            if len(self._results) >= self.capacity:
                return False
        payload = [np.asarray(x)]
        for s, stage in enumerate(self.stages[:-1]):
            t0 = time.perf_counter()
            payload = stage.forward(pid, payload, train=False)
            counters = self.counters[s]
            counters.forward_ops += 1
            counters.forward_samples += x.shape[0]
            counters.busy_seconds += time.perf_counter() - t0
        with self._lock:
            self._results.append((pid, start, payload[0]))
        return True

    def poll(self) -> list[tuple[int, int, np.ndarray]]:
        with self._lock:
            out = list(self._results)
            self._results.clear()
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._eval_guard.__exit__(None, None, None)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# threaded stream
# ---------------------------------------------------------------------------


class _FwdChannel:
    """A compute stage's inbound forward mailbox (deque + condition)."""

    __slots__ = ("cond", "items", "closed")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.items: deque = deque()
        self.closed = False

    def put(self, item) -> None:
        with self.cond:
            self.items.append(item)
            self.cond.notify_all()

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class ThreadedInferenceStream:
    """Persistent thread-per-stage forward-only pipeline.

    ``capacity`` bounds the total packets in flight (submitted, not yet
    polled); a full window turns ``submit`` into ``False`` — explicit
    backpressure for the serving dispatcher.
    """

    backend = "threaded"

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        capacity: int = DEFAULT_STREAM_CAPACITY,
        stall_timeout: float = DEFAULT_INFER_TIMEOUT,
        **_unused: Any,
    ):
        _check_inference_stages(stages)
        self.stages = list(stages)
        self.capacity = max(1, int(capacity))
        self.stall_timeout = float(stall_timeout)
        self.counters = [
            InferenceStageCounters(index=s) for s in range(len(stages))
        ]
        self._channels = [_FwdChannel() for _ in range(len(stages) - 1)]
        self._results: deque = deque()
        self._results_lock = threading.Lock()
        self._in_flight = 0
        self._error: BaseException | None = None
        self._eval_guard = eval_mode(self.stages)
        self._eval_guard.__enter__()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(s,),
                name=f"infer-stage-{s}",
                daemon=True,
            )
            for s in range(len(stages) - 1)
        ]
        for t in self._threads:
            t.start()

    def _worker(self, s: int) -> None:
        stage = self.stages[s]
        ch = self._channels[s]
        last = s == len(self.stages) - 2
        while True:
            with ch.cond:
                while not ch.items and not ch.closed:
                    ch.cond.wait(0.05)
                if not ch.items and ch.closed:
                    return
                pid, start, payload = ch.items.popleft()
            try:
                t0 = time.perf_counter()
                out = stage.forward(pid, payload, train=False)
                counters = self.counters[s]
                counters.forward_ops += 1
                counters.forward_samples += out[0].shape[0]
                counters.busy_seconds += time.perf_counter() - t0
                if last:
                    with self._results_lock:
                        self._results.append((pid, start, out[0]))
                else:
                    self._channels[s + 1].put((pid, start, out))
            except BaseException as exc:
                self._error = exc
                for other in self._channels:
                    other.close()
                return

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise InferenceStreamError(
                f"inference worker failed: {self._error!r}"
            ) from self._error

    def submit(self, pid: int, start: int, x: np.ndarray) -> bool:
        if self._closed:
            raise InferenceStreamError("stream is closed")
        self._raise_if_failed()
        with self._results_lock:
            if self._in_flight >= self.capacity:
                return False
            self._in_flight += 1
        self._channels[0].put((pid, start, [np.asarray(x)]))
        return True

    def poll(self) -> list[tuple[int, int, np.ndarray]]:
        self._raise_if_failed()
        with self._results_lock:
            out = list(self._results)
            self._results.clear()
            self._in_flight -= len(out)
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for ch in self._channels:
            ch.close()
        deadline = time.monotonic() + self.stall_timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        self._threads = []
        self._eval_guard.__exit__(None, None, None)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# process stream
# ---------------------------------------------------------------------------


@dataclass
class _InferWorkerSpec:
    """Everything one forward-only stage worker needs (spawn-picklable)."""

    stage_index: int
    conn: Any  # multiprocessing.connection.Connection
    fwd_in: ShmRing
    fwd_out: ShmRing
    abort: Any  # multiprocessing.Event
    stall_timeout: float
    stage_state: dict | None
    stage: PipelineStage | None = None  # fork path: inherited object
    build_spec: StageBuildSpec | None = None  # spawn path: rebuild recipe


def _infer_worker_main(spec: _InferWorkerSpec) -> None:
    """Forward-only event loop of one stage worker process."""
    try:
        if spec.stage is not None:
            stage = spec.stage
        elif spec.build_spec is not None:
            stage = spec.build_spec.build()
            if spec.stage_state is not None:
                stage.load_state_dict(spec.stage_state)
        else:  # pragma: no cover - constructor validates
            raise RuntimeError("worker spec carries neither stage nor recipe")
        if stage.spec.module is not None:
            stage.spec.module.eval()
        counters = InferenceStageCounters(index=spec.stage_index)
        idle_sleep = 1e-5
        while True:
            while spec.conn.poll(0):
                cmd = spec.conn.recv()
                if cmd[0] == "finalize":
                    spec.conn.send(("counters", counters))
                    return
                if cmd[0] == "stop":
                    return
                raise RuntimeError(
                    f"infer stage {spec.stage_index}: unknown command "
                    f"{cmd[0]!r}"
                )
            if spec.abort.is_set():
                return
            pkt = spec.fwd_in.try_recv()
            if pkt is None:
                time.sleep(idle_sleep)
                idle_sleep = min(idle_sleep * 2.0, 2e-3)
                continue
            idle_sleep = 1e-5
            pid, start, size, payload = pkt
            t0 = time.perf_counter()
            out = stage.forward(pid, payload, train=False)
            counters.forward_ops += 1
            counters.forward_samples += size
            counters.busy_seconds += time.perf_counter() - t0
            # copy into the downstream ring before releasing anything
            # the output may alias (identity/sum stages pass views)
            spec.fwd_out.send(
                pid, start, size, out, spec.stall_timeout, spec.abort
            )
            spec.fwd_in.release()
    except TransportAborted:
        pass  # the parent is tearing the stream down; exit quietly
    except BaseException as exc:
        try:
            spec.conn.send(
                (
                    "err",
                    spec.stage_index,
                    f"{exc!r}\n{traceback.format_exc()}",
                )
            )
        except Exception:  # pragma: no cover - parent already gone
            pass
        spec.abort.set()


class ProcessInferenceStream:
    """Persistent process-per-stage forward-only pipeline over
    shared-memory rings.

    The parent produces into ring 0 and consumes the **last** ring
    directly — the final compute stage's output lands in shared memory
    and is copied out exactly once, into the result the caller sees.
    Workers stay alive across packets (and across serving requests), so
    the per-call process-launch cost of the training runtime is paid
    once per stream, not once per batch.

    ``max_width`` fixes the ring slot width (the widest packet a
    ``submit`` may carry); ``capacity`` sizes every ring, bounding the
    in-flight window — a full injection ring is the backpressure signal
    (``submit`` returns ``False``).
    """

    backend = "process"

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        max_width: int,
        sample_shape: tuple,
        dtype="float64",
        capacity: int = DEFAULT_STREAM_CAPACITY,
        stall_timeout: float = DEFAULT_INFER_TIMEOUT,
        model_factory=None,
        start_method: str | None = None,
        layouts=None,
        **_unused: Any,
    ):
        import multiprocessing as mp
        import sys

        _check_inference_stages(stages)
        self.stages = list(stages)
        self.capacity = max(1, int(capacity))
        self.stall_timeout = float(stall_timeout)
        self.counters = [
            InferenceStageCounters(index=s) for s in range(len(stages))
        ]
        available = mp.get_all_start_methods()
        if start_method is None:
            start_method = (
                "fork"
                if sys.platform.startswith("linux") and "fork" in available
                else "spawn"
            )
        if start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} not available on this "
                f"platform (have {available})"
            )
        if start_method != "fork" and model_factory is None:
            raise ValueError(
                f"start_method {start_method!r} cannot inherit stage "
                "objects; pass a spawn-safe model_factory"
            )
        # initialize every teardown-visible attribute BEFORE anything
        # can fail, so the error path below can always self.close() —
        # including exiting the eval guard, which must not leak
        # eval-mode modules back to a caller that still trains them
        self._rings = []
        self._abort = None
        self._conns = []
        self._child_conns = []
        self._procs = []
        self._closed = False
        #: _raise_if_failed polls the worker pipes and may be reached
        #: from both stream ends (the server's dispatcher via submit and
        #: its collector via poll); Connection objects are not
        #: thread-safe, so health checks serialize on this lock
        self._health_lock = threading.Lock()
        self._last_health_check = 0.0
        self._eval_guard = eval_mode(self.stages)
        self._eval_guard.__enter__()
        use_factory = model_factory is not None
        try:
            probe = np.zeros(
                (max(1, int(max_width)),) + tuple(sample_shape), dtype=dtype
            )
            self._rings = build_inference_rings(
                self.stages, probe, slots=self.capacity, layouts=layouts
            )
            ctx = mp.get_context(start_method)
            self._abort = ctx.Event()
            for s in range(len(stages) - 1):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                self._child_conns.append(child_conn)
                stage = self.stages[s]
                spec = _InferWorkerSpec(
                    stage_index=s,
                    conn=child_conn,
                    fwd_in=self._rings[s],
                    fwd_out=self._rings[s + 1],
                    abort=self._abort,
                    stall_timeout=self.stall_timeout,
                    stage_state=stage.state_dict() if use_factory else None,
                    stage=None if use_factory else stage,
                    build_spec=(
                        StageBuildSpec(
                            model_factory=model_factory,
                            index=s,
                            lr=stage.lr,
                            # rebuild on the stage's storage grid so the
                            # shipped state passes the dtype validation
                            precision=stage.precision.mode,
                        )
                        if use_factory
                        else None
                    ),
                )
                proc = ctx.Process(
                    target=_infer_worker_main,
                    args=(spec,),
                    name=f"infer-stage-proc-{s}",
                    daemon=True,
                )
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for p in self._procs:
                p.start()
            # the child ends now live in the workers; drop our copies so
            # a dead worker surfaces as pipe EOF in _raise_if_failed
            for conn in self._child_conns:
                try:
                    conn.close()
                except Exception:  # pragma: no cover - idempotent
                    pass
            self._child_conns = []
        except BaseException:
            self.close()
            raise

    # -- SPSC surface -------------------------------------------------------

    def _raise_if_failed(self) -> None:
        # rate-limited: submit/poll sit on the serving hot path, and a
        # full scan is a pipe-poll syscall per stage — checking every
        # 50 ms bounds failure-detection latency far below the stall
        # timeouts while keeping the steady state syscall-free
        now = time.monotonic()
        if now - self._last_health_check < 0.05:
            return
        # serialized: pipe poll/recv from two threads at once is
        # undefined (see _health_lock in the constructor)
        with self._health_lock:
            if now - self._last_health_check < 0.05:
                return  # another thread scanned while we waited
            self._last_health_check = now
            for s, conn in enumerate(self._conns):
                try:
                    if conn.poll(0):
                        msg = conn.recv()
                        if msg[0] == "err":
                            raise InferenceStreamError(
                                f"inference stage {msg[1]} worker failed: "
                                f"{msg[2]}"
                            )
                except (EOFError, OSError) as exc:
                    raise InferenceStreamError(
                        f"inference stage {s} worker died "
                        f"(exitcode={self._procs[s].exitcode})"
                    ) from exc
            for s, p in enumerate(self._procs):
                if p.ident is not None and (p.exitcode or 0) != 0:
                    raise InferenceStreamError(
                        f"inference stage {s} worker died "
                        f"(exitcode={p.exitcode})"
                    )

    def submit(self, pid: int, start: int, x: np.ndarray) -> bool:
        if self._closed:
            raise InferenceStreamError("stream is closed")
        self._raise_if_failed()
        return self._rings[0].try_send(
            pid, start, np.asarray(x).shape[0], [np.ascontiguousarray(x)]
        )

    def poll(self) -> list[tuple[int, int, np.ndarray]]:
        self._raise_if_failed()
        out = []
        ring = self._rings[-1]
        while True:
            pkt = ring.try_recv()
            if pkt is None:
                break
            pid, start, size, views = pkt
            # one copy out of shared memory, then free the slot
            out.append((pid, start, np.array(views[0][:size], copy=True)))
            ring.release()
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + self.stall_timeout
        with self._health_lock:  # no health check may race the pipes
            for s, conn in enumerate(self._conns):
                try:
                    conn.send(("finalize",))
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass
            # abort *before* waiting for counter replies: a worker
            # blocked in a ring send (error-path teardown with packets
            # in flight) only unblocks via the abort flag, and the
            # counters wait below would otherwise stall a full
            # stall_timeout.  Idle workers drain their command pipe
            # before checking abort, so the happy path still collects
            # counters.
            if self._abort is not None:
                self._abort.set()
            for s, conn in enumerate(self._conns):
                proc = self._procs[s]
                try:
                    while not conn.poll(0.05):
                        if time.monotonic() >= deadline:
                            break
                        if (
                            proc.ident is not None
                            and proc.exitcode is not None
                        ):
                            break
                    if conn.poll(0):
                        msg = conn.recv()
                        if msg[0] == "counters":
                            self.counters[msg[1].index] = msg[1]
                except (EOFError, OSError):  # pragma: no cover
                    pass
        started = [p for p in self._procs if p.ident is not None]
        for p in started:
            p.join(max(0.0, deadline - time.monotonic()))
        for p in started:
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - idempotent
                pass
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._procs = []
        self._conns = []
        self._rings = []
        self._eval_guard.__exit__(None, None, None)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# the schedule-driven batch driver
# ---------------------------------------------------------------------------


def run_inference(
    stream,
    schedule: Schedule,
    X: np.ndarray,
    num_stages: int,
    stall_timeout: float = DEFAULT_INFER_TIMEOUT,
) -> InferenceRunStats:
    """Drive one batch of samples through an open inference stream.

    The :class:`~repro.pipeline.schedule.Schedule` protocol decides
    packet widths exactly as it does for training (``inject_size`` per
    opportunity); the stream's ``submit`` backpressure gates injection
    the way ring/in-flight caps gate the training runtimes.  Outputs are
    assembled in input order, with dropped or duplicated packets turned
    into loud errors — the serving correctness contract starts here.
    """
    if not getattr(schedule, "forward_only", False):
        raise ValueError(
            f"run_inference needs a forward-only schedule, got "
            f"{schedule.name!r}"
        )
    X = np.asarray(X)
    n = X.shape[0]
    schedule.reset(n)
    state = ScheduleState(num_samples=n)
    outputs: np.ndarray | None = None
    received = np.zeros(n, dtype=bool)
    completed = 0
    f_ops = 0
    f_samples = 0
    t0 = time.perf_counter()
    last_progress = time.monotonic()
    while completed < n:
        progressed = False
        while state.next_sample < n:
            size = min(schedule.inject_size(state), n - state.next_sample)
            if size <= 0:
                break
            i = state.next_sample
            if not stream.submit(i, i, X[i : i + size]):
                break  # stream full: backpressure
            state.next_sample += size
            progressed = True
        for pid, start, logits in stream.poll():
            size = logits.shape[0]
            if outputs is None:
                outputs = np.zeros((n,) + logits.shape[1:], dtype=logits.dtype)
            if received[start : start + size].any():
                raise InferenceStreamError(
                    f"duplicate result for samples [{start}, "
                    f"{start + size})"
                )
            received[start : start + size] = True
            outputs[start : start + size] = logits
            completed += size
            f_ops += 1
            f_samples += size
            progressed = True
        now = time.monotonic()
        if progressed:
            last_progress = now
        elif now - last_progress > stall_timeout:
            raise InferenceStreamError(
                f"inference stalled: no result for {stall_timeout:.1f}s "
                f"({completed}/{n} samples done)"
            )
        elif completed < n:
            time.sleep(1e-5)
    wall = time.perf_counter() - t0
    if outputs is None:
        outputs = np.zeros((0,))
    return InferenceRunStats(
        outputs=outputs,
        time_steps=schedule.drain_span(n, num_stages),
        forward_ops=f_ops,
        forward_samples=f_samples,
        num_stages=num_stages,
        samples=n,
        micro_batch=schedule.micro_batch,
        schedule=schedule.name,
        backend=getattr(stream, "backend", "?"),
        wall_seconds=wall,
        stage_counters=list(getattr(stream, "counters", [])),
    )


def infer_batch(
    stages: Sequence[PipelineStage],
    X: np.ndarray,
    schedule: Schedule | None = None,
    micro_batch_size: int = 1,
    backend: str = "sim",
    stall_timeout: float = DEFAULT_INFER_TIMEOUT,
    **stream_kwargs: Any,
) -> InferenceRunStats:
    """One-shot batch inference: open a stream, drive the batch, close.

    The engines' ``infer()`` methods are thin wrappers over this; the
    serving front-end keeps a stream open instead (see
    :meth:`repro.serve.session.InferenceSession.open_stream`).
    """
    X = np.asarray(X)
    if schedule is None:
        schedule = InferenceSchedule(micro_batch_size)
    if not getattr(schedule, "forward_only", False):
        raise ValueError(
            f"infer needs a forward-only schedule, got {schedule.name!r}"
        )
    if X.shape[0] == 0:
        return InferenceRunStats(
            outputs=np.zeros(0),
            time_steps=0,
            forward_ops=0,
            forward_samples=0,
            num_stages=len(stages),
            samples=0,
            micro_batch=schedule.micro_batch,
            schedule=schedule.name,
            backend=backend,
        )
    stream = open_inference_stream(
        stages,
        backend=backend,
        max_width=schedule.micro_batch,
        sample_shape=X.shape[1:],
        dtype=X.dtype,
        stall_timeout=stall_timeout,
        **stream_kwargs,
    )
    with stream:
        stats = run_inference(
            stream, schedule, X, len(stages), stall_timeout=stall_timeout
        )
    # per-stage counters after close(): the process stream only learns
    # its workers' counts from their finalize replies during teardown,
    # so the snapshot taken inside run_inference would be all zeros
    stats.stage_counters = list(getattr(stream, "counters", []))
    return stats


def open_inference_stream(
    stages: Sequence[PipelineStage],
    backend: str = "sim",
    max_width: int = 1,
    sample_shape: tuple = (),
    dtype="float64",
    capacity: int = DEFAULT_STREAM_CAPACITY,
    stall_timeout: float = DEFAULT_INFER_TIMEOUT,
    **stream_kwargs: Any,
):
    """Open a persistent forward-only stream on the requested backend
    (``sim`` / ``threaded`` / ``process`` — the engine names of
    :func:`repro.pipeline.runtime.make_pipeline_engine`)."""
    if backend == "sim":
        return SimInferenceStream(
            stages, capacity=capacity, stall_timeout=stall_timeout
        )
    if backend == "threaded":
        return ThreadedInferenceStream(
            stages, capacity=capacity, stall_timeout=stall_timeout
        )
    if backend == "process":
        return ProcessInferenceStream(
            stages,
            max_width=max_width,
            sample_shape=tuple(sample_shape),
            dtype=dtype,
            capacity=capacity,
            stall_timeout=stall_timeout,
            **stream_kwargs,
        )
    raise ValueError(
        f"backend must be 'sim', 'threaded' or 'process', got {backend!r}"
    )
