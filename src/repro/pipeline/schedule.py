"""Pluggable pipeline schedules: the decision layer of the executor.

The cycle-accurate :class:`~repro.pipeline.executor.PipelineExecutor` is a
discrete-time engine; *what* it does each step is decided by a
:class:`Schedule`.  Once per time step the engine consults the schedule at
three points:

* **inject** — :meth:`Schedule.inject_size` returns how many samples to
  inject as one packet at stage 0 this step (0 = hold injection, e.g.
  while a fill-and-drain batch drains).  A packet moves through one stage
  per step as a single vectorized ``(B, ...)`` operation.
* **update** — after a stage finishes a packet's backward transformation,
  :meth:`Schedule.update_after_backward` says whether that stage applies
  its accumulated gradient immediately (update size one, the PB / 1F1B
  discipline) or keeps accumulating (fill-and-drain / GPipe).
* **end of step** — :meth:`Schedule.end_step` runs batch-boundary logic:
  the synchronous schedules flush an averaged update once every sample of
  the current mini-batch has drained.

Two more knobs are static per schedule: :attr:`Schedule.micro_batch` (the
nominal packet size) and :attr:`Schedule.stash_weights` (PipeDream-style
per-stage weight stashing: every stage reuses its forward-pass weights on
the backward pass, making each sample's pass consistent).

Four schedules reproduce the systems the paper positions itself against:

``pb``
    Pipelined backpropagation (the paper's subject): continuous
    injection, per-gradient updates, *no* stashing — forward weights lag
    by eq. 5, backward weights are current (the PB inconsistency).
``fill_drain``
    Pipeline-parallel mini-batch SGD: inject ``N`` samples, drain, apply
    the averaged update.  Numerically identical to sequential mini-batch
    SGDM (the Figure-16 validation).
``gpipe``
    Micro-batched fill-and-drain (Huang et al. 2019; torchgpipe): the
    mini-batch moves as ``M = N/B`` packets of ``B`` samples, each a
    single vectorized op, recovering ``M/(M + 2S - 2)`` slot utilization
    while keeping exact mini-batch SGDM semantics.
``1f1b``
    PipeDream's one-forward-one-backward with weight stashing (Harlap et
    al. 2018): PB timing and per-gradient updates, but every stage
    stashes its forward weights so forward and backward of a sample see
    the same (stale) weights — zero inconsistency, staleness unchanged.

A fifth schedule, ``infer`` (:class:`InferenceSchedule`), is the
**forward-only** serving discipline used by :mod:`repro.serve`: packets
of up to ``micro_batch`` samples are injected continuously and drained
at the last compute stage as model outputs — no backward sweep, no
weight updates, no stashing.  It is not part of :data:`SCHEDULE_NAMES`
(that tuple enumerates the *training* schedules the paper compares) but
is built by :func:`make_schedule` under the name ``"infer"`` and driven
through the same per-step protocol by all three runtimes.

The occupancy-grid *timing* models of these schedules live in
:mod:`repro.pipeline.occupancy` (re-exported here for compatibility).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

# Re-exported for callers that predate the occupancy/schedule split.
from repro.pipeline.occupancy import (  # noqa: F401
    BOTH,
    BWD,
    FWD,
    IDLE,
    Occupancy,
    fill_drain_occupancy,
    gpipe_occupancy,
    observed_stage_delays,
    one_f_one_b_occupancy,
    pb_occupancy,
    render_occupancy,
    schedule_utilization,
)

#: Canonical schedule names, in presentation order.
SCHEDULE_NAMES = ("pb", "fill_drain", "gpipe", "1f1b")


@dataclass
class ScheduleState:
    """Mutable per-run view the executor shares with the schedule."""

    num_samples: int
    next_sample: int = 0  # next sample index to inject
    completed: int = 0  # samples whose backward fully drained
    step: int = 0  # time steps elapsed


class Schedule(ABC):
    """Per-step decisions: inject / update / flush / stash (see module
    docstring).  Instances hold per-run state and are reset by the
    executor at the start of every :meth:`PipelineExecutor.train` call,
    so one schedule instance belongs to one executor."""

    name: str = "?"
    #: Samples per injected packet (the vectorized ``(B, ...)`` width).
    micro_batch: int = 1
    #: PipeDream weight stashing: backward reuses the forward weights.
    stash_weights: bool = False
    #: Samples averaged per weight update (1 for the per-gradient
    #: schedules); hyperparameter scaling (eq. 9) keys off this.
    update_size: int = 1
    #: Forward-only schedules (inference/serving) have no backward sweep
    #: and no weight updates; engines route them through ``infer()`` and
    #: refuse them in ``train()``.
    forward_only: bool = False

    def reset(self, num_samples: int) -> None:
        """Start a fresh run of ``num_samples`` samples."""

    @abstractmethod
    def inject_size(self, state: ScheduleState) -> int:
        """Samples to inject as one packet this step (0 = none)."""

    def update_after_backward(self, stage_index: int) -> bool:
        """Apply the stage's gradient immediately after its backward?"""
        return False

    def end_step(self, executor, state: ScheduleState) -> None:
        """Batch-boundary hook, called once per time step after both
        sweeps (``executor`` grants access to ``flush_stages``)."""

    def drain_span(self, num_samples: int, num_stages: int) -> int:
        """Pipeline steps until the ``num_samples``-th sample's backward
        drains at stage 0.  Continuous-injection schedules pay the fill
        cost once: ``k + 2S - 2``.  Schedules with batch boundaries must
        override this to match their injection gating."""
        return num_samples + 2 * num_stages - 2

    def describe(self) -> str:
        return f"{self.name} (update_size={self.update_size}, " \
               f"micro_batch={self.micro_batch})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class PipelinedBackpropSchedule(Schedule):
    """``pb`` — continuous injection, update size one, no stashing."""

    name = "pb"

    def inject_size(self, state: ScheduleState) -> int:
        return 1 if state.next_sample < state.num_samples else 0

    def update_after_backward(self, stage_index: int) -> bool:
        return True


class OneFOneBSchedule(PipelinedBackpropSchedule):
    """``1f1b`` — PipeDream semantics (Harlap et al. 2018).

    In this fine-grained model PB's steady state already *is* one-forward-
    one-backward per worker per step, so the timing is inherited from
    :class:`PipelinedBackpropSchedule`; what changes is the weight
    discipline: every stage stashes the weights used on a sample's
    forward and reloads them around that sample's backward.  Forward
    staleness still follows eq. 5, but forward and backward of a sample
    are mutually consistent — equivalent to
    :class:`~repro.core.delayed_sgd.DelayedSGDM` with the pipeline delay
    profile and ``consistent=True`` (property-tested).
    """

    name = "1f1b"
    stash_weights = True


class FillDrainSchedule(Schedule):
    """``fill_drain`` — synchronous mini-batch SGD, one sample per slot.

    Injection is gated to the current mini-batch; once all its samples
    have drained, every stage applies the averaged update (plain SGDM —
    the pipeline is consistent and empty at that point).
    """

    name = "fill_drain"

    def __init__(self, update_size: int):
        if update_size < 1:
            raise ValueError(
                f"{self.name} needs update_size >= 1, got {update_size}"
            )
        self.update_size = int(update_size)
        self._batch_start = 0

    def reset(self, num_samples: int) -> None:
        self._batch_start = 0

    def _batch_end(self, state: ScheduleState) -> int:
        return min(state.num_samples, self._batch_start + self.update_size)

    def inject_size(self, state: ScheduleState) -> int:
        return 1 if state.next_sample < self._batch_end(state) else 0

    def end_step(self, executor, state: ScheduleState) -> None:
        batch_n = self._batch_end(state) - self._batch_start
        if batch_n and state.completed >= self._batch_start + batch_n:
            executor.flush_stages(batch_n)
            self._batch_start += batch_n

    def drain_span(self, num_samples: int, num_stages: int) -> int:
        """Synchronous schedules pay ``P + 2S - 2`` per mini-batch of
        ``P`` packets (samples / micro-batch width); the final batch is
        charged only for the packets it actually holds, so a sample in
        the middle of a batch drains with that batch's partial span."""
        if num_samples < 1:
            return 0
        fill = 2 * num_stages - 2
        full_batches = (num_samples - 1) // self.update_size
        remainder = num_samples - full_batches * self.update_size
        packets_per_batch = -(-self.update_size // self.micro_batch)
        remainder_packets = -(-remainder // self.micro_batch)
        return (
            full_batches * (packets_per_batch + fill)
            + remainder_packets
            + fill
        )


class GPipeSchedule(FillDrainSchedule):
    """``gpipe`` — micro-batched fill-and-drain (Huang et al. 2019).

    Identical update semantics to :class:`FillDrainSchedule` (averaged
    update once the mini-batch drains) but samples travel in micro-batch
    packets of ``micro_batch`` samples, each processed by a stage as one
    vectorized ``(B, ...)`` NumPy op.  With ``micro_batch=1`` this *is*
    fill-and-drain, bit for bit (golden-tested).
    """

    name = "gpipe"

    def __init__(self, update_size: int, micro_batch_size: int = 1):
        if micro_batch_size < 1:
            raise ValueError(
                f"gpipe needs micro_batch_size >= 1, got {micro_batch_size}"
            )
        if update_size == 1:
            # the default "unset" update size: one micro-batch per update
            update_size = micro_batch_size
        elif update_size < micro_batch_size:
            raise ValueError(
                f"gpipe update_size ({update_size}) must be >= "
                f"micro_batch_size ({micro_batch_size}), or 1 for one "
                "micro-batch per update"
            )
        super().__init__(int(update_size))
        self.micro_batch = int(micro_batch_size)

    def inject_size(self, state: ScheduleState) -> int:
        return max(
            0, min(self.micro_batch, self._batch_end(state) - state.next_sample)
        )


class InferenceSchedule(Schedule):
    """``infer`` — forward-only continuous injection for serving.

    Packets of up to ``micro_batch`` samples are injected whenever stage
    0 is free and travel the pipeline forward only: the last compute
    stage's output (the logits) *is* the result, captured by the engine
    instead of seeding a backward pass.  With no backward sweep there is
    no weight staleness, no update, and no stash — every engine
    (discrete-time, threaded, process) therefore produces bit-identical
    outputs for the same packet decomposition regardless of worker
    timing.  A packet occupies ``S - 1`` hops (it is consumed at the
    loss slot), so a stream of ``P`` packets drains in ``P + S - 1``
    steps — the fill cost is half of training's ``2S - 2``.
    """

    name = "infer"
    forward_only = True

    def __init__(self, micro_batch_size: int = 1):
        if micro_batch_size < 1:
            raise ValueError(
                f"infer needs micro_batch_size >= 1, got {micro_batch_size}"
            )
        self.micro_batch = int(micro_batch_size)

    def inject_size(self, state: ScheduleState) -> int:
        return max(
            0, min(self.micro_batch, state.num_samples - state.next_sample)
        )

    def update_after_backward(self, stage_index: int) -> bool:
        raise RuntimeError(
            "inference schedule has no backward phase — drive it through "
            "an engine's infer(), not train()"
        )

    def drain_span(self, num_samples: int, num_stages: int) -> int:
        if num_samples < 1:
            return 0
        packets = -(-num_samples // self.micro_batch)
        return packets + num_stages - 1


def make_schedule(
    mode: str, update_size: int = 1, micro_batch_size: int = 1
) -> Schedule:
    """Build a schedule by name (``pb``/``fill_drain``/``gpipe``/``1f1b``,
    plus the forward-only ``infer``).

    ``update_size`` applies to the synchronous schedules; for ``gpipe``
    and ``infer``, ``micro_batch_size`` sets the packet width (for
    ``gpipe``, an ``update_size`` of 1 means "one micro-batch per
    update").
    """
    if mode == "pb":
        return PipelinedBackpropSchedule()
    if mode == "1f1b":
        return OneFOneBSchedule()
    if mode == "fill_drain":
        return FillDrainSchedule(update_size)
    if mode == "gpipe":
        return GPipeSchedule(update_size, micro_batch_size)
    if mode == "infer":
        return InferenceSchedule(micro_batch_size)
    raise ValueError(
        f"mode must be one of {SCHEDULE_NAMES + ('infer',)}, got {mode!r}"
    )
