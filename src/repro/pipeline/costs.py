"""Memory and communication cost models (paper Appendix A).

Appendix A compares batch parallelism and pipeline parallelism on three
axes; this module makes those comparisons quantitative for any stage
graph:

* **Activation memory** — batch parallelism stores activations for ~every
  layer on each of ``W`` workers: ``O(L*W)`` total.  Pipeline parallelism
  stores, at stage ``s``, one activation per in-flight sample — the stage
  holds samples for ``2(S-1-s)`` steps — totalling ``sum_s 2(S-1-s) =
  S(S-1)`` stashed activations, i.e. the *same order* ``O(L*W)`` when
  ``L ~ S ~ W``, but distributed very unevenly (early stages hold the
  most).
* **Parameter memory** — pipeline parallelism keeps exactly one copy of
  each parameter (its owning stage); plain data parallelism keeps ``W``
  copies.
* **Communication** — a pipeline worker exchanges activations and
  activation-gradients with its neighbours each step; a data-parallel
  worker exchanges *all* model gradients/parameters each update.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.arch import StageGraphModel
from repro.pipeline.delays import stage_delay


@dataclass(frozen=True)
class StageCost:
    """Per-stage cost summary (units: array elements)."""

    index: int
    name: str
    params: int
    activation_elements: int  # one sample's output activation size
    max_in_flight: int  # samples stashed between F and B
    stash_elements: int  # activation_elements * max_in_flight


@dataclass(frozen=True)
class PipelineCostModel:
    """Aggregate pipeline-parallel costs for one model + input shape."""

    stage_costs: list[StageCost]

    @property
    def total_parameter_elements(self) -> int:
        return sum(s.params for s in self.stage_costs)

    @property
    def total_stash_elements(self) -> int:
        return sum(s.stash_elements for s in self.stage_costs)

    @property
    def peak_stage_stash(self) -> int:
        return max((s.stash_elements for s in self.stage_costs), default=0)

    def per_worker_parameter_copies(self) -> int:
        """Pipeline parallelism keeps one copy of each parameter."""
        return 1


def _activation_sizes(
    model: StageGraphModel, input_shape: tuple[int, int, int]
) -> list[int]:
    """Output activation element-count per stage for one sample.

    Runs a single no-grad forward, recording each stage's main-channel
    output size (skip channels are attributed to the pushing stage).
    """
    import numpy as np

    from repro.tensor.tensor import Tensor, no_grad

    sizes: list[int] = []
    x = Tensor(np.zeros((1, *input_shape)))
    main = x
    skips: list = []
    with no_grad():
        for st in model.stage_defs:
            extra = 0
            if st.kind == "compute":
                if st.channel == -1:
                    skips[-1] = st.module(skips[-1])
                    extra = skips[-1].size
                elif st.push_skip == "input":
                    skips.append(main)
                    extra = main.size
                    main = st.module(main)
                elif st.push_skip == "preact":
                    main, pre = st.module.forward_parts(main)
                    skips.append(pre)
                    extra = pre.size
                else:
                    main = st.module(main)
            elif st.kind == "sum":
                main = main + skips.pop()
            sizes.append(int(main.size) + int(extra))
    return sizes


def pipeline_cost_model(
    model: StageGraphModel, input_shape: tuple[int, int, int]
) -> PipelineCostModel:
    """Build the Appendix-A cost model for a stage graph."""
    sizes = _activation_sizes(model, input_shape)
    S = model.num_stages
    costs = []
    for i, st in enumerate(model.stage_defs):
        params = (
            sum(p.size for p in st.module.parameters()) if st.module else 0
        )
        in_flight = stage_delay(i, S)
        costs.append(
            StageCost(
                index=i,
                name=st.name,
                params=params,
                activation_elements=sizes[i],
                max_in_flight=in_flight,
                stash_elements=sizes[i] * in_flight,
            )
        )
    return PipelineCostModel(stage_costs=costs)


def batch_parallel_activation_elements(
    model: StageGraphModel,
    input_shape: tuple[int, int, int],
    per_worker_batch: int,
) -> int:
    """Activation memory of ONE data-parallel worker (all layers stored)."""
    sizes = _activation_sizes(model, input_shape)
    return sum(sizes) * per_worker_batch


def data_parallel_comm_per_update(model: StageGraphModel) -> int:
    """Elements a data-parallel worker sends per update (all gradients)."""
    return sum(p.size for p in model.parameters())


def pipeline_comm_per_step(
    model: StageGraphModel, input_shape: tuple[int, int, int]
) -> list[int]:
    """Elements each pipeline worker sends per step.

    A stage forwards its output activation and returns a gradient of its
    input activation: ~2x its input/output activation size.
    """
    sizes = _activation_sizes(model, input_shape)
    return [2 * s for s in sizes]
