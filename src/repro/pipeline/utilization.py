"""Closed-form pipeline utilization (paper §2, eq. 1).

A mini-batch SGD update of ``N`` samples on an ``S``-stage pipeline takes
``N + 2S - 2`` steps of which only ``N`` are fully-utilized equivalents,
bounding utilization by ``N / (N + 2S)`` (eq. 1; the exact finite-pipeline
value is ``N / (N + 2S - 2)``).  Pipelined backpropagation pays the fill
cost once, so utilization approaches one.
"""

from __future__ import annotations


def utilization_upper_bound(num_stages: int, batch_size: int) -> float:
    """Eq. 1: ``N / (N + 2S)``."""
    if num_stages < 1 or batch_size < 1:
        raise ValueError("need at least one stage and one sample")
    return batch_size / (batch_size + 2 * num_stages)


def fill_drain_utilization(num_stages: int, batch_size: int) -> float:
    """Exact steady-state utilization of fill-and-drain mini-batch SGD."""
    if num_stages < 1 or batch_size < 1:
        raise ValueError("need at least one stage and one sample")
    return batch_size / (batch_size + 2 * num_stages - 2)


def gpipe_utilization(num_stages: int, num_micro_batches: int) -> float:
    """Slot utilization of GPipe-style micro-batched fill-and-drain.

    Eq. 1 at micro-batch granularity: a mini-batch of ``M`` micro-batches
    occupies ``M + 2S - 2`` steps of which ``M`` are fully utilized, so
    utilization is ``M / (M + 2S - 2)`` — independent of the per-packet
    width ``B`` because every slot carries ``B`` samples.
    """
    if num_stages < 1 or num_micro_batches < 1:
        raise ValueError("need at least one stage and one micro-batch")
    return num_micro_batches / (num_micro_batches + 2 * num_stages - 2)


def pb_utilization(num_stages: int, total_samples: int) -> float:
    """Utilization of PB over a finite stream (one fill+drain total)."""
    if num_stages < 1 or total_samples < 1:
        raise ValueError("need at least one stage and one sample")
    return total_samples / (total_samples + 2 * num_stages - 2)


def pb_speedup(num_stages: int, batch_size: int) -> float:
    """Steady-state throughput advantage of PB over fill-and-drain SGD."""
    return 1.0 / fill_drain_utilization(num_stages, batch_size)
