"""Shared-memory zero-copy transport for the process pipeline runtime.

The threaded runtime (:class:`~repro.pipeline.runtime.ConcurrentPipelineRunner`)
moves packets as Python object references between threads — free, but
serialized by the GIL.  Worker *processes* need a wire, and the obvious
wires (``multiprocessing.Queue`` / ``Pipe``) pickle every payload: for a
``(B, C, H, W)`` activation that is a serialize + copy + deserialize per
hop, per packet, on the steady-state hot path.  This module provides the
alternative the process runtime is built on: **fixed-slot single-producer
single-consumer rings over** ``multiprocessing.shared_memory``.

Design
------

A pipeline boundary carries payloads of *static structure*: the stage
graph is linear, so the list of arrays travelling between stage ``s`` and
``s+1`` always has the same length, per-sample shapes and dtypes — only
the leading (micro-batch) dimension varies, and it is bounded by the
schedule's micro-batch width.  :func:`probe_boundary_layouts` discovers
those layouts once per run by streaming a dummy max-width packet through
the stages (eval mode, no grad, nothing mutated), and each
:class:`ShmRing` preallocates ``slots`` slots of exactly that layout in
one shared-memory block:

.. code-block:: text

    [ head | pad ][ tail | pad ][ slot 0 ][ slot 1 ] ... [ slot k-1 ]
    slot := [ pid | start | size ][ array 0 ][ array 1 ] ...

Arrays of a cache line or more are 64-byte aligned inside the slot;
smaller arrays pack back-to-back (:func:`slot_layout`), so boundaries
carrying several tiny tensors coalesce them into one packed region
instead of one padded cache line each.  Slot bytes track the payload
dtype: a float32 boundary costs half the shared memory of the float64
reference layout.

* the **producer** copies payload arrays into the next free slot
  (``np.copyto`` — one memcpy, no serialization) and publishes it by
  incrementing ``head``;
* the **consumer** receives **zero-copy NumPy views** into the slot
  (:meth:`ShmRing.recv` allocates nothing and copies nothing) and frees
  the slot later by incrementing ``tail`` (:meth:`ShmRing.release`).

Ordering relies on the SPSC discipline: each counter has exactly one
writer, data writes precede the ``head`` publish, and x86-TSO (plus the
CPython interpreter executing bytecodes in order) keeps the publish from
overtaking the data.  The same discipline is what lock-free SPSC rings
use in C; no locks, no syscalls on the hot path.

Deferred release and ring sizing
--------------------------------

The autodiff engine reads *lazily*: a compute stage's backward re-reads
the forward input activation (``matmul`` reads ``parent.data`` at
backward time), so a forward payload's slot must stay alive until that
sample's **backward** completes at the stage.  The consumer therefore
releases slots out-of-band, and capacity must cover the stage's maximum
in-flight window: the process runtime sizes the ring into stage ``s`` as
``D_s + 1 + slack`` slots, where ``D_s + 1 = 2(S-1-s) + 1`` is the
PipeDream in-flight cap that also enforces the paper's eq. 5 staleness
ceiling.  Gradients are consumed eagerly (``_accumulate`` copies), so
backward slots are released as soon as the stage's backward returns —
but backward rings get the same sizing, which guarantees they can never
fill (at most ``D_s`` backward packets can be outstanding toward stage
``s``) and hence that backward sends never block: the runtime's
deadlock-freedom argument.

Blocking waits are adaptive spin-then-sleep with a stall deadline and an
abort check, so a dead peer turns into a loud :class:`TransportStall`
instead of a hang.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import platform
import time
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.tensor.tensor import no_grad

#: The lock-free publish protocol relies on total-store-order (stores
#: become visible in program order), which x86 guarantees.  On
#: weakly-ordered machines (aarch64, POWER) every counter access is
#: routed through a per-ring lock instead: the acquire/release pair is
#: the memory fence Python cannot otherwise express, trading a little
#: hot-path cost for correctness.  ``REPRO_SHM_FENCE=1`` forces the
#: fenced mode anywhere (used by the tests to exercise the path).
_TSO_MACHINES = {"x86_64", "amd64", "i386", "i686", "x86"}


def _needs_fence() -> bool:
    if os.environ.get("REPRO_SHM_FENCE", "") not in ("", "0"):
        return True
    return platform.machine().lower() not in _TSO_MACHINES

#: Alignment for the slot header and each array region (cache line).
_ALIGN = 64
#: Spin iterations before the waiter starts sleeping.
_SPIN = 200
#: Sleep ceiling for the adaptive backoff (seconds).
_MAX_SLEEP = 0.002


class TransportError(RuntimeError):
    """Misuse of a ring (layout mismatch, release underflow, ...)."""


class TransportStall(TransportError):
    """A blocking ring operation exceeded its deadline."""


class TransportAborted(TransportError):
    """A blocking ring operation observed the shared abort flag."""


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype of one slot array; leading dim is the max batch width."""

    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def payload_specs(payload: Sequence[np.ndarray]) -> tuple[ArraySpec, ...]:
    """Layout of a concrete payload (its arrays' shapes and dtypes)."""
    return tuple(ArraySpec(tuple(a.shape), str(a.dtype)) for a in payload)


def slot_layout(arrays: Sequence[ArraySpec]) -> tuple[list[int], int]:
    """Byte offset of each array inside one slot, and the slot's payload size.

    Arrays of at least one cache line keep 64-byte alignment (their
    bulk ``memcpy`` is what the alignment buys); smaller ones pack
    back-to-back into the running offset, so a boundary that carries
    several tiny tensors — biases, norm stats, scalar side-channels —
    coalesces them into one packed region of the slot instead of
    spending a padded cache line on each.  The returned payload size is
    aligned so consecutive slots stay cache-line disjoint.
    """
    offsets: list[int] = []
    off = 0
    for spec in arrays:
        if spec.nbytes >= _ALIGN:
            off = _align(off)
        offsets.append(off)
        off += spec.nbytes
    return offsets, _align(off)


def probe_boundary_layouts(
    stages, x_packet: np.ndarray
) -> list[tuple[ArraySpec, ...]]:
    """Payload layout entering each stage, for a max-width input packet.

    Streams a dummy packet through every non-loss stage's forward with
    ``train=False`` under ``no_grad`` and the modules forced into eval
    mode (so BatchNorm running stats and Dropout RNG streams are not
    touched); layout ``b`` describes the forward ring *into* stage ``b``
    — and, because a stage's backward output mirrors its forward input,
    also the backward ring flowing back *out of* stage ``b``.
    """
    modules = [st.spec.module for st in stages if st.spec.module is not None]
    prev_modes = [m.training for m in modules]
    for m in modules:
        m.eval()
    try:
        with no_grad():
            payload = [np.ascontiguousarray(x_packet)]
            layouts = [payload_specs(payload)]
            for stage in stages[:-1]:  # the loss stage consumes, emits nothing
                payload = stage.forward(-1, payload, train=False)
                layouts.append(payload_specs(payload))
    finally:
        for m, mode in zip(modules, prev_modes):
            m.train(mode)
    return layouts


@dataclass(frozen=True)
class RingDescriptor:
    """Picklable handle: everything a worker needs to attach to a ring."""

    shm_name: str
    label: str
    arrays: tuple[ArraySpec, ...]
    slots: int


@dataclass
class _SlotViews:
    meta: np.ndarray  # int64[3]: pid, start, size
    arrays: list[np.ndarray]


class ShmRing:
    """Fixed-slot SPSC ring over one shared-memory block (module docstring).

    One process calls :meth:`create` (and later :meth:`unlink`); every
    other participant attaches via :meth:`attach` (or transparently by
    unpickling, which is how worker specs ship rings under ``spawn``).
    A ring has exactly one producer and one consumer; the producer uses
    :meth:`send`/:meth:`try_send`, the consumer :meth:`try_recv`/
    :meth:`recv` and :meth:`release`.
    """

    def __init__(self, descriptor: RingDescriptor, shm: shared_memory.SharedMemory,
                 owner: bool, fence=None):
        self.descriptor = descriptor
        self._shm = shm
        self._owner = owner
        #: None on TSO machines (lock-free); a multiprocessing.Lock on
        #: weakly-ordered ones (see _needs_fence)
        self._fence = fence
        self.label = descriptor.label
        self.slots = descriptor.slots
        buf = shm.buf
        self._head = np.ndarray((1,), dtype=np.int64, buffer=buf, offset=0)
        self._tail = np.ndarray((1,), dtype=np.int64, buffer=buf, offset=_ALIGN)
        rel_offsets, payload_bytes = slot_layout(descriptor.arrays)
        #: bytes of one slot (meta header + packed payload region)
        self.slot_bytes = _ALIGN + payload_bytes
        self._slot_views: list[_SlotViews] = []
        offset = 2 * _ALIGN
        for _ in range(descriptor.slots):
            meta = np.ndarray((3,), dtype=np.int64, buffer=buf, offset=offset)
            base = offset + _ALIGN
            arrays = [
                np.ndarray(spec.shape, dtype=spec.dtype, buffer=buf,
                           offset=base + rel)
                for spec, rel in zip(descriptor.arrays, rel_offsets)
            ]
            offset += self.slot_bytes
            self._slot_views.append(_SlotViews(meta=meta, arrays=arrays))
        #: precomputed per-array expectations so the hot-path layout
        #: check in _write_body compares against constants instead of
        #: re-deriving tuples from the slot views on every send
        self._expect = [
            (tuple(spec.shape[1:]), int(spec.shape[0]), np.dtype(spec.dtype))
            for spec in descriptor.arrays
        ]
        #: consumer-local read cursor (tail <= _next <= head).  A consumer
        #: that attaches late must start at ``tail``: everything in
        #: ``[tail, head)`` was published before it arrived and is still
        #: unconsumed (the producer may legally run ahead of the attach).
        self._next = int(self._tail[0])

    # -- construction -------------------------------------------------------

    @staticmethod
    def _block_size(arrays: Sequence[ArraySpec], slots: int) -> int:
        slot = _ALIGN + slot_layout(arrays)[1]
        return 2 * _ALIGN + slots * slot

    @classmethod
    def create(cls, label: str, arrays: Sequence[ArraySpec], slots: int
               ) -> "ShmRing":
        if slots < 1:
            raise TransportError(f"ring {label!r} needs >= 1 slot, got {slots}")
        arrays = tuple(arrays)
        shm = shared_memory.SharedMemory(
            create=True, size=cls._block_size(arrays, slots)
        )
        desc = RingDescriptor(
            shm_name=shm.name, label=label, arrays=arrays, slots=slots
        )
        # a spawn-context lock works under every start method: fork
        # children inherit it, spawn children unpickle it (same-context
        # pickling is the one combination multiprocessing allows)
        fence = mp.get_context("spawn").Lock() if _needs_fence() else None
        ring = cls(desc, shm, owner=True, fence=fence)
        ring._head[0] = 0
        ring._tail[0] = 0
        ring._next = 0
        return ring

    @classmethod
    def attach(cls, descriptor: RingDescriptor, fence=None) -> "ShmRing":
        # Python <=3.12 registers attached segments with the resource
        # tracker as if the attaching process owned them; the tracker's
        # cache is a *set*, so the duplicate registrations collapse and
        # the matching unregisters raise KeyErrors at teardown.  Only the
        # creator owns a ring here — suppress registration for the attach.
        orig_register = resource_tracker.register

        def _no_shm_register(name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                orig_register(name, rtype)

        resource_tracker.register = _no_shm_register
        try:
            shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        finally:
            resource_tracker.register = orig_register
        return cls(descriptor, shm, owner=False, fence=fence)

    def __reduce__(self):
        # pickling a ring (spawn-start worker specs) yields an attach;
        # the fence lock travels with it (multiprocessing pickles
        # semaphores through Process args on any start method)
        return (ShmRing.attach, (self.descriptor, self._fence))

    # -- waiting ------------------------------------------------------------

    def _wait(self, ready, timeout: float, what: str, abort=None) -> None:
        """Adaptive spin-then-sleep until ``ready()`` or deadline/abort."""
        deadline = time.monotonic() + timeout
        spins = 0
        sleep = 1e-5
        while not ready():
            spins += 1
            if spins <= _SPIN:
                continue
            if abort is not None and abort.is_set():
                raise TransportAborted(
                    f"ring {self.label!r}: aborted while waiting for {what}"
                )
            if time.monotonic() >= deadline:
                raise TransportStall(
                    f"ring {self.label!r}: stalled waiting for {what} "
                    f"({timeout:.1f}s) — likely a dead or deadlocked peer"
                )
            time.sleep(sleep)
            sleep = min(sleep * 2.0, _MAX_SLEEP)

    # -- producer side ------------------------------------------------------

    def _write(self, pid: int, start: int, size: int,
               payload: Sequence[np.ndarray]) -> None:
        if self._fence is None:
            self._write_body(pid, start, size, payload)
        else:
            # weak-memory machines: the lock's release fences the payload
            # stores ahead of the head publish for any consumer whose
            # poll() acquires the same lock
            with self._fence:
                self._write_body(pid, start, size, payload)

    def _write_body(self, pid: int, start: int, size: int,
                    payload: Sequence[np.ndarray]) -> None:
        slot = self._slot_views[int(self._head[0]) % self.slots]
        if len(payload) != len(slot.arrays):
            raise TransportError(
                f"ring {self.label!r}: payload has {len(payload)} arrays, "
                f"layout expects {len(slot.arrays)}"
            )
        for (tail_shape, max_width, dtype), buf_arr, arr in zip(
            self._expect, slot.arrays, payload
        ):
            if (
                arr.shape[1:] != tail_shape
                or arr.shape[0] > max_width
                or arr.dtype != dtype
            ):
                raise TransportError(
                    f"ring {self.label!r}: array {arr.shape}/{arr.dtype} does "
                    f"not fit slot layout {buf_arr.shape}/{buf_arr.dtype}"
                )
            np.copyto(buf_arr[: arr.shape[0]], arr, casting="no")
        slot.meta[0] = pid
        slot.meta[1] = start
        slot.meta[2] = size
        # publish: data writes above precede this store (SPSC contract)
        self._head[0] = int(self._head[0]) + 1

    def _has_free_slot(self) -> bool:
        if self._fence is None:
            return int(self._head[0]) - int(self._tail[0]) < self.slots
        with self._fence:  # pairs with the consumer's fenced release()
            return int(self._head[0]) - int(self._tail[0]) < self.slots

    def try_send(self, pid: int, start: int, size: int,
                 payload: Sequence[np.ndarray]) -> bool:
        """Non-blocking send; ``False`` when the ring is full."""
        if not self._has_free_slot():
            return False
        self._write(pid, start, size, payload)
        return True

    def send(self, pid: int, start: int, size: int,
             payload: Sequence[np.ndarray], timeout: float, abort=None) -> None:
        """Blocking send with a stall deadline."""
        self._wait(self._has_free_slot, timeout, "a free slot", abort)
        self._write(pid, start, size, payload)

    # -- consumer side ------------------------------------------------------

    def poll(self) -> bool:
        """Whether an unread packet is available."""
        if self._fence is None:
            return int(self._head[0]) > self._next
        with self._fence:  # pairs with the producer's fenced publish
            return int(self._head[0]) > self._next

    def try_recv(self):
        """``(pid, start, size, views)`` or ``None``; views are zero-copy."""
        if not self.poll():
            return None
        slot = self._slot_views[self._next % self.slots]
        pid, start, size = (int(v) for v in slot.meta)
        views = [a[:size] for a in slot.arrays]
        self._next += 1
        return pid, start, size, views

    def recv(self, timeout: float, what: str = "a packet", abort=None):
        """Blocking :meth:`try_recv` with a stall deadline."""
        self._wait(self.poll, timeout, what, abort)
        return self.try_recv()

    def release(self) -> None:
        """Free the oldest received slot (strict FIFO, one per recv)."""
        tail = int(self._tail[0])
        if tail >= self._next:
            raise TransportError(
                f"ring {self.label!r}: release without an outstanding recv"
            )
        if self._fence is None:
            self._tail[0] = tail + 1
        else:
            # fences the consumer's payload reads ahead of the free
            with self._fence:
                self._tail[0] = tail + 1

    @property
    def outstanding(self) -> int:
        """Received-but-unreleased slots held by the consumer."""
        return self._next - int(self._tail[0])

    @property
    def total_bytes(self) -> int:
        """Size of the backing shared-memory block."""
        return int(self._shm.size)

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        self._slot_views = []
        self._head = self._tail = None
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - idempotent teardown
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - idempotent teardown
                pass


def ring_slots_for(delay: int, slack: int = 2) -> int:
    """Slots for a ring into a stage with pipeline delay ``D_s``.

    ``D_s + 1`` is the PipeDream in-flight cap (the paper's eq.-5
    staleness ceiling); forward slots back deferred release of every
    in-flight packet, and the identical backward sizing guarantees
    backward sends can never block (see module docstring).
    """
    return delay + 1 + max(0, int(slack))


def build_pipeline_rings(
    stages, x_packet: np.ndarray, slack: int = 2, layouts=None
) -> tuple[list[ShmRing], list[ShmRing | None]]:
    """Create every ring of a linear pipeline run.

    Returns ``(fwd_rings, bwd_rings)``: ``fwd_rings[s]`` flows into stage
    ``s`` (``fwd_rings[0]`` is the injection ring fed by the parent) and
    ``bwd_rings[s]`` flows from stage ``s+1`` back into stage ``s``
    (``None`` for the last stage, which seeds its own backward).

    ``layouts`` accepts a precomputed :func:`probe_boundary_layouts`
    result; boundary layouts depend only on the architecture and the
    packet shape/dtype — never on the weights — so callers that rebuild
    rings repeatedly (per-segment checkpointed drives, crash-recovery
    relaunches) can probe once and skip the dummy forward pass after.
    """
    if layouts is None:
        layouts = probe_boundary_layouts(stages, x_packet)
    elif len(layouts) != len(stages):
        raise TransportError(
            f"got {len(layouts)} boundary layouts for {len(stages)} stages"
        )
    created: list[ShmRing] = []
    try:
        fwd = []
        for s in range(len(stages)):
            fwd.append(
                ShmRing.create(
                    f"fwd[{s - 1 if s else 'inject'}->{s}]",
                    layouts[s],
                    ring_slots_for(stages[s].delay, slack),
                )
            )
            created.append(fwd[-1])
        bwd: list[ShmRing | None] = []
        for s in range(len(stages) - 1):
            bwd.append(
                ShmRing.create(
                    f"bwd[{s + 1}->{s}]",
                    layouts[s + 1],
                    ring_slots_for(stages[s].delay, slack),
                )
            )
            created.append(bwd[-1])
    except BaseException:
        # a partial failure (e.g. /dev/shm exhaustion midway) must not
        # strand the segments already created
        for ring in created:
            ring.close()
            ring.unlink()
        raise
    bwd.append(None)
    return fwd, bwd


def build_inference_rings(
    stages, x_packet: np.ndarray, slots: int = 4, layouts=None
) -> list[ShmRing]:
    """Create the forward-only ring chain of a serving run.

    Inference needs **no backward slots**: gradients never flow, forward
    inputs are not re-read at backward time (there is no backward), so
    every slot is released as soon as its packet has been transformed
    and forwarded.  Ring ``s`` flows into stage ``s``; the last ring —
    into the loss slot — is consumed by the *parent*, which reads the
    final compute stage's output (the logits) straight out of shared
    memory.  Because the eq.-5 in-flight cap is a training-staleness
    concept, inference rings use a flat ``slots`` capacity instead of
    ``D_s + 1 + slack``: the chain is acyclic and the parent always
    drains the last ring, so a full ring is plain backpressure (the
    producer blocks or the injector's ``try_send`` returns ``False``),
    never deadlock.

    ``layouts`` accepts a precomputed :func:`probe_boundary_layouts`
    result, exactly as in :func:`build_pipeline_rings`.
    """
    if slots < 1:
        raise TransportError(f"inference rings need >= 1 slot, got {slots}")
    if layouts is None:
        layouts = probe_boundary_layouts(stages, x_packet)
    elif len(layouts) != len(stages):
        raise TransportError(
            f"got {len(layouts)} boundary layouts for {len(stages)} stages"
        )
    created: list[ShmRing] = []
    try:
        for s in range(len(stages)):
            created.append(
                ShmRing.create(
                    f"infer[{s - 1 if s else 'inject'}->{s}]",
                    layouts[s],
                    slots,
                )
            )
    except BaseException:
        for ring in created:
            ring.close()
            ring.unlink()
        raise
    return created


def build_reduce_rings(
    stages, replicas: int, slots: int = 2
) -> tuple[list[list[ShmRing]], list[list[ShmRing]]]:
    """Create the fixed-slot cross-replica reduce plane, one per stage.

    For each stage ``s`` of an ``R``-replica pipeline the reduction is a
    rank chain in stream order (rank 0 holds the earliest stream block):

    * ``chain[s][r]`` carries the running left-fold prefix from rank
      ``r`` to rank ``r + 1`` (``r`` in ``0..R-2``);
    * ``result[s][r]`` carries the finished fold from rank ``r + 1``
      back to rank ``r``.

    Each ring's payload is the stage's parameter-gradient arrays (empty
    for paramless stages — loss/identity ranks still chain to propagate
    the global sample count, which rides in the packet metadata).
    Rounds are strictly serialized by the blocking round trip, so a
    small flat ``slots`` suffices.
    """
    if replicas < 2:
        raise TransportError(f"reduce rings need >= 2 replicas, got {replicas}")
    if slots < 1:
        raise TransportError(f"reduce rings need >= 1 slot, got {slots}")
    created: list[ShmRing] = []
    try:
        chain: list[list[ShmRing]] = []
        result: list[list[ShmRing]] = []
        for s, stage in enumerate(stages):
            arrays = tuple(
                ArraySpec(tuple(p.data.shape), str(p.data.dtype))
                for p in stage.params
            )
            chain.append([])
            result.append([])
            for r in range(replicas - 1):
                chain[s].append(
                    ShmRing.create(f"reduce[{s}][{r}->{r + 1}]", arrays, slots)
                )
                created.append(chain[s][-1])
                result[s].append(
                    ShmRing.create(f"result[{s}][{r + 1}->{r}]", arrays, slots)
                )
                created.append(result[s][-1])
    except BaseException:
        for ring in created:
            ring.close()
            ring.unlink()
        raise
    return chain, result
