"""Concurrent multi-worker pipeline runtime (wall-clock counterpart of
:class:`~repro.pipeline.executor.PipelineExecutor`).

The executor is a discrete-time *simulation*: one Python loop plays every
stage's forward and backward sweep sequentially, so its utilization
numbers are modeled, never measured.  This module executes the same
pipeline the way PipeDream (Harlap et al. 2018) and torchgpipe (Kim et
al. 2020) actually run one: **one worker thread per stage**, packets
moving through per-stage inbound queues, each stage transforming a
``(B, ...)`` micro-batch the moment it has one.  The
:class:`~repro.pipeline.schedule.Schedule` protocol is reused unchanged —
injection gating, per-gradient vs averaged updates and weight stashing
are the schedule's decisions in both engines.

Mapping onto PipeDream's worker model
-------------------------------------

PipeDream structures pipeline-parallel training as per-stage workers
that (1) pull activations from an inbound forward queue, (2) pull
gradients from an inbound backward queue, (3) prefer backward work so
the pipeline drains, and (4) bound the number of in-flight mini-batches
per stage so weight staleness — and activation-stash memory — stay
bounded.  :class:`ConcurrentPipelineRunner` reproduces exactly that
shape:

* each :class:`~repro.pipeline.stage.PipelineStage` gets one worker
  thread and one :class:`_Channel` (a forward deque + a backward deque
  guarded by one condition variable);
* workers give **backward priority**: an arrived gradient is always
  processed before the next activation, which is PipeDream's drain rule
  and this runtime's deadlock-freedom argument (the oldest in-flight
  packet can always make progress because backward work is never gated);
* each stage admits a new forward only while fewer than
  ``D_s + 1 = 2(S-1-s) + 1`` packets are between their forward and
  backward at that stage.  This is PipeDream's in-flight bound; here it
  additionally guarantees the paper's eq. 5 *as an inequality*: the
  forward pass of sample ``i`` at stage ``s`` sees **at least**
  ``max(0, i - 2(S-1-s))`` updates applied (never staler than the
  discrete-time model), and trivially at most ``i``.

Two execution modes
-------------------

**lockstep** (``lockstep=True``, the default) inserts a barrier per
simulated time step: the coordinator scatters at most one forward and
one backward packet to every worker, waits for all of them, then runs
the schedule's batch-boundary hook — the exact control flow of
``PipelineExecutor._run`` with the per-stage work done concurrently.
Because no two stages share mutable state within a step (packets
produced in step ``t`` are consumed in ``t+1``; each stage's own
forward-before-backward order is preserved inside its worker), a
lockstep run is **bit-exact** with the simulator for every schedule —
the testable contract pinned by ``tests/test_runtime_parity.py``.

**free-running** (``lockstep=False``) drops the barrier: stages proceed
as soon as a packet arrives, which is the paper's actual claim — fine-
grained pipelining keeps all stages busy in *wall-clock* time.  Losses
and final weights are no longer bit-reproducible for the asynchronous
schedules (``pb``/``1f1b``), because how far a gradient has travelled
when a forward happens now depends on thread timing; what *is*
guaranteed is the eq.-5 staleness ceiling above, packet FIFO ordering
per stage, and exact schedule semantics for the synchronous schedules'
updates (``fill_drain``/``gpipe`` still flush the averaged update only
once the batch has fully drained, so their per-update math is unchanged;
only the loss *values* recorded while a batch is in flight can differ
for schedules that update mid-stream).

Every run produces a :class:`RuntimeStats` with measured per-stage
busy/idle wall-clock time and per-stage op counts; the op counts equal
the modeled occupancy-grid totals of :mod:`repro.pipeline.occupancy`
row by row (property-tested), tying the measured runtime back to the
paper's timing model.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.data.loader import shard_positions
from repro.models.arch import StageGraphModel
from repro.pipeline.executor import (
    PipelineExecutor,
    PipelineRunStats,
    _Packet,
    check_stages_drained,
    softmax_xent_grad_batch,
)
from repro.pipeline.schedule import Schedule, ScheduleState, make_schedule
from repro.pipeline.stage import PipelineStage, StageBuildSpec
from repro.pipeline.transport import (
    ShmRing,
    TransportAborted,
    build_pipeline_rings,
    build_reduce_rings,
    probe_boundary_layouts,
)

#: Seconds any single coordinator wait may block before the run is
#: declared stalled.  Generous for real work, small enough that a
#: deadlocked test fails loudly instead of hanging CI.
DEFAULT_STALL_TIMEOUT = 60.0

_STOP = object()  # lockstep command-queue sentinel


class PipelineRuntimeError(RuntimeError):
    """A worker thread died; carries the stage index and original error."""

    def __init__(self, stage_index: int, cause: BaseException):
        super().__init__(
            f"pipeline stage {stage_index} worker failed: {cause!r}"
        )
        self.stage_index = stage_index
        self.cause = cause


@dataclass
class StageRuntimeStats:
    """Measured per-stage activity of one threaded run."""

    index: int
    forward_ops: int = 0
    backward_ops: int = 0
    forward_samples: int = 0
    backward_samples: int = 0
    busy_seconds: float = 0.0

    @property
    def busy_steps(self) -> int:
        """Slot occupancy: one per packet transformation, the measured
        counterpart of one non-idle cell in an occupancy grid row."""
        return self.forward_ops + self.backward_ops


@dataclass
class RuntimeStats:
    """Wall-clock outcome of one concurrent pipeline run.

    ``wall_seconds`` spans first injection to last completion; each
    stage's ``busy_seconds`` sums its time inside forward/backward
    transformations, so ``idle_seconds(s)`` is measured (not modeled)
    pipeline bubble time.  ``backend`` names the engine that produced the
    run: ``"threaded"`` (:class:`ConcurrentPipelineRunner`, per-stage
    busy time measured in-process) or ``"process"``
    (:class:`ProcessPipelineRunner`, per-stage counters and wall-clock
    collected from the worker processes at drain time).
    """

    mode: str  # "lockstep" | "free_running"
    schedule: str
    num_stages: int
    wall_seconds: float = 0.0
    stages: list[StageRuntimeStats] = field(default_factory=list)
    backend: str = "threaded"
    #: pipeline replicas whose activity this record aggregates.  A
    #: merged record sums per-stage busy seconds across R concurrent
    #: replicas over one shared wall-clock window, so every per-stage
    #: time budget is ``wall_seconds * replicas`` — without the factor,
    #: R perfectly busy replicas would report R× "utilization".
    replicas: int = 1
    #: control-plane traffic of a process-backend lockstep run: counts of
    #: pipe messages actually sent/received per simulated time step under
    #: the batched step protocol, next to the ``2 * num_stages`` the
    #: pre-batching protocol would have used.  ``None`` for backends and
    #: modes that don't drive workers over control pipes.
    control: dict | None = None

    @property
    def busy_seconds(self) -> float:
        return sum(st.busy_seconds for st in self.stages)

    def busy_fraction(self, stage_index: int) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        wall = self.wall_seconds * max(self.replicas, 1)
        return self.stages[stage_index].busy_seconds / wall

    def idle_seconds(self, stage_index: int) -> float:
        wall = self.wall_seconds * max(self.replicas, 1)
        return max(0.0, wall - self.stages[stage_index].busy_seconds)

    @property
    def mean_busy_fraction(self) -> float:
        if not self.stages:
            return 0.0
        return sum(
            self.busy_fraction(s.index) for s in self.stages
        ) / len(self.stages)

    def summary_rows(self) -> list[dict]:
        """One row per stage, ready for ``format_table``."""
        return [
            {
                "stage": st.index,
                "fwd_ops": st.forward_ops,
                "bwd_ops": st.backward_ops,
                "busy_s": round(st.busy_seconds, 6),
                "busy_frac": round(self.busy_fraction(st.index), 4),
            }
            for st in self.stages
        ]

    @staticmethod
    def merge_replicas(parts: Sequence["RuntimeStats"]) -> "RuntimeStats":
        """Aggregate per-replica runtime records of one replicated run.

        The replicas ran concurrently over one wall-clock window, so
        ``wall_seconds`` is the max (the window), per-stage op counts,
        sample counts and busy seconds are summed, and ``replicas``
        accumulates so :meth:`busy_fraction` divides by the combined
        ``wall * R`` budget instead of double-counting capacity.
        """
        if not parts:
            raise ValueError("merge_replicas needs at least one part")
        first = parts[0]
        for p in parts[1:]:
            if p.num_stages != first.num_stages:
                raise ValueError(
                    "cannot merge runtime stats across stage counts "
                    f"({p.num_stages} vs {first.num_stages})"
                )
            if p.schedule != first.schedule:
                raise ValueError(
                    "cannot merge runtime stats across schedules "
                    f"({p.schedule!r} vs {first.schedule!r})"
                )
        stages = []
        for s in range(first.num_stages):
            merged = StageRuntimeStats(index=s)
            for p in parts:
                st = p.stages[s]
                merged.forward_ops += st.forward_ops
                merged.backward_ops += st.backward_ops
                merged.forward_samples += st.forward_samples
                merged.backward_samples += st.backward_samples
                merged.busy_seconds += st.busy_seconds
            stages.append(merged)
        return RuntimeStats(
            mode=first.mode,
            schedule=first.schedule,
            num_stages=first.num_stages,
            wall_seconds=max(p.wall_seconds for p in parts),
            stages=stages,
            backend=first.backend,
            replicas=sum(max(p.replicas, 1) for p in parts),
        )


@dataclass
class _WorkerFailure:
    """Posted to the completion queue when a worker dies."""

    stage_index: int
    error: BaseException


class _Channel:
    """A stage's inbound mailbox: forward + backward deques, one lock.

    Backward packets are kept separate from forward packets so the
    worker can give them priority without scanning a mixed queue.
    """

    __slots__ = ("cond", "fwd", "bwd", "closed")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.fwd: deque[_Packet] = deque()
        self.bwd: deque[_Packet] = deque()
        self.closed = False

    def put_fwd(self, pkt: _Packet) -> None:
        with self.cond:
            self.fwd.append(pkt)
            self.cond.notify_all()

    def put_bwd(self, pkt: _Packet) -> None:
        with self.cond:
            self.bwd.append(pkt)
            self.cond.notify_all()

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class _SimpleQueue:
    """Tiny blocking FIFO (threading.Condition based).

    ``queue.SimpleQueue`` would do; this variant exists so the stress
    tests can reason about exactly one synchronization primitive and so
    ``get`` can raise a stall error with context instead of ``Empty``.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._items: deque = deque()

    def put(self, item) -> None:
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def get(self, timeout: float, what: str):
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._items:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise RuntimeError(
                        f"pipeline runtime stalled waiting for {what} "
                        f"({timeout:.1f}s) — likely deadlock or a dead "
                        "worker"
                    )
                self._cond.wait(remaining)
            return self._items.popleft()


class _ConcurrentEngineFacade:
    """Shared surface of the concurrent runners (threaded and process).

    Both wrap an internal :class:`PipelineExecutor` in ``self._executor``
    (which owns the stages, schedule and optimizer state) and re-expose
    its engine API, so :class:`~repro.train.pb_trainer.PipelinedTrainer`
    and :func:`make_pipeline_engine` can treat all engines uniformly.
    ``self.lockstep`` is set by the subclass constructor.
    """

    _executor: PipelineExecutor
    lockstep: bool

    @property
    def model(self) -> StageGraphModel:
        return self._executor.model

    @property
    def stages(self):
        return self._executor.stages

    @property
    def schedule(self) -> Schedule:
        return self._executor.schedule

    @property
    def mode(self) -> str:
        return self._executor.mode

    @property
    def update_size(self) -> int:
        return self._executor.update_size

    @property
    def num_stages(self) -> int:
        return self._executor.num_stages

    @property
    def samples_completed(self) -> int:
        return self._executor.samples_completed

    @property
    def lr_schedule(self):
        return self._executor.lr_schedule

    @property
    def precision(self):
        """The wrapped executor's :class:`~repro.precision.PrecisionPolicy`."""
        return self._executor.precision

    def set_lr(self, lr: float) -> None:
        self._executor.set_lr(lr)

    def flush_stages(self, count: int) -> None:
        self._executor.flush_stages(count)

    def state_dict(self) -> dict:
        """Engine snapshot at a drain barrier (see
        :meth:`PipelineExecutor.state_dict`); the concurrent engines'
        authoritative state lives in the wrapped executor's stages
        between ``train()`` calls."""
        return self._executor.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._executor.load_state_dict(state)

    @property
    def runtime_mode(self) -> str:
        return "lockstep" if self.lockstep else "free_running"

    #: backend name handed to the forward-only inference streams
    #: (overridden by ProcessPipelineRunner)
    _infer_backend = "threaded"

    def _infer_stream_kwargs(self) -> dict:
        """Extra kwargs for the runner's inference stream backend."""
        return {}

    def infer(
        self,
        X: np.ndarray,
        micro_batch_size: int = 1,
        schedule: Schedule | None = None,
        stall_timeout: float | None = None,
    ):
        """Forward-only inference on this runner's backend (serving
        mode): the same per-stage workers that train — threads here,
        processes with shared-memory rings for
        :class:`ProcessPipelineRunner` — execute an
        :class:`~repro.pipeline.schedule.InferenceSchedule` with no
        backward slots (see :mod:`repro.pipeline.inference`).  Outputs
        are bit-exact with the discrete-time engine's ``infer`` for the
        same packet decomposition: no updates means no staleness, so
        worker timing cannot change a single bit.
        """
        from repro.pipeline.inference import infer_batch

        return infer_batch(
            self.stages,
            self._executor.precision.cast_array(X),
            schedule=schedule,
            micro_batch_size=micro_batch_size,
            backend=self._infer_backend,
            stall_timeout=(
                self.stall_timeout if stall_timeout is None
                else stall_timeout
            ),
            **self._infer_stream_kwargs(),
        )

    def _finish_stats(
        self,
        losses: np.ndarray,
        time_steps: int,
        counters: list[StageRuntimeStats],
        runtime: RuntimeStats,
    ) -> PipelineRunStats:
        self.last_runtime_stats = runtime
        return PipelineRunStats(
            losses=losses,
            time_steps=time_steps,
            forward_ops=sum(c.forward_ops for c in counters),
            backward_ops=sum(c.backward_ops for c in counters),
            num_stages=self.num_stages,
            samples=losses.shape[0],
            updates_per_stage=[st.updates_applied for st in self.stages],
            forward_samples=sum(c.forward_samples for c in counters),
            backward_samples=sum(c.backward_samples for c in counters),
            micro_batch=self.schedule.micro_batch,
            schedule=self.schedule.name,
            runtime=runtime,
        )


class ConcurrentPipelineRunner(_ConcurrentEngineFacade):
    """Execute a :class:`StageGraphModel` pipeline with one worker thread
    per stage (see module docstring for the design).

    The constructor mirrors :class:`PipelineExecutor` (it builds one
    internally, sharing stages, schedule and optimizer state), plus:

    lockstep:
        ``True`` for the barrier-per-time-step mode that is bit-exact
        with the simulator; ``False`` (default, matching
        :func:`make_pipeline_engine`) for free-running.  The default is
        the performance mode — pass ``lockstep=True`` explicitly
        wherever reproducibility matters.
    jitter:
        Maximum per-op random sleep in seconds injected into every
        worker loop (0 disables).  Used by the concurrency stress tests
        to randomize thread interleavings; lockstep results must be —
        and are — unchanged under any jitter.
    jitter_seed:
        Seed for the per-worker jitter RNGs (deterministic schedule of
        sleeps, nondeterministic OS interleaving).
    stall_timeout:
        Seconds any coordinator wait may block before the run raises
        instead of hanging.
    """

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
        schedule: Schedule | None = None,
        lockstep: bool = False,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        precision: "str | None" = None,
    ):
        self._executor = PipelineExecutor(
            model,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            mitigation=mitigation,
            mode=mode,
            update_size=update_size,
            micro_batch_size=micro_batch_size,
            lr_schedule=lr_schedule,
            record_versions=record_versions,
            schedule=schedule,
            precision=precision,
        )
        self.lockstep = bool(lockstep)
        self.jitter = float(jitter)
        self.jitter_seed = int(jitter_seed)
        self.stall_timeout = float(stall_timeout)
        self.last_runtime_stats: RuntimeStats | None = None
        self._threads: list[threading.Thread] = []

    # (engine facade inherited from _ConcurrentEngineFacade)

    # -- shared per-stage transformations ----------------------------------
    #
    # These mirror the simulator's forward/backward sweep bodies
    # (executor._run): loss-stage seeding, update_after_backward, and the
    # op/sample accounting must stay in sync with it.  The bit-exact
    # parity goldens (tests/test_runtime_parity.py) pin that equivalence —
    # any unsynced change to either engine fails them at hex level.

    def _do_forward(
        self,
        s: int,
        pkt: _Packet,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> tuple[_Packet | None, _Packet | None]:
        """One forward transformation at stage ``s``.

        Returns ``(downstream_fwd, seeded_bwd)``; the loss stage
        produces the seeded backward packet (consumed the same step,
        exactly as the simulator seeds ``bwd_in`` during its forward
        sweep), every other stage produces the downstream forward.
        """
        stage = self.stages[s]
        if stage.spec.kind == "loss":
            lvec, glogits = softmax_xent_grad_batch(
                pkt.payload[0], Y[pkt.start : pkt.start + pkt.size]
            )
            losses[pkt.start : pkt.start + pkt.size] = lvec
            counters.forward_ops += 1
            counters.forward_samples += pkt.size
            return None, _Packet(pkt.pid, pkt.start, pkt.size, [glogits])
        out = stage.forward(pkt.pid, pkt.payload)
        counters.forward_ops += 1
        counters.forward_samples += pkt.size
        return _Packet(pkt.pid, pkt.start, pkt.size, out), None

    def _do_backward(
        self, s: int, pkt: _Packet, counters: StageRuntimeStats
    ) -> tuple[_Packet | None, int]:
        """One backward transformation at stage ``s``.

        Returns ``(upstream_bwd, completed_samples)``; only stage 0
        reports completions.
        """
        stage = self.stages[s]
        upstream = stage.backward(pkt.pid, pkt.payload)
        if self.schedule.update_after_backward(s):
            stage.apply_update()
        counters.backward_ops += 1
        counters.backward_samples += pkt.size
        if s > 0:
            return _Packet(pkt.pid, pkt.start, pkt.size, upstream), 0
        return None, pkt.size

    def _jitter_rng(self, s: int) -> np.random.Generator | None:
        if self.jitter <= 0.0:
            return None
        return np.random.default_rng(
            (self.jitter_seed * 1_000_003 + s) & 0xFFFFFFFF
        )

    # -- public entry -------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Stream all samples through the threaded pipeline (training)."""
        if self.schedule.forward_only:
            raise ValueError(
                f"schedule {self.schedule.name!r} is forward-only; use "
                "infer() (or repro.serve) instead of train()"
            )
        X = self._executor.precision.cast_array(X)
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        self.schedule.reset(X.shape[0])
        if self.lockstep:
            stats = self._run_lockstep(X, Y)
        else:
            stats = self._run_free(X, Y)
        check_stages_drained(self.stages)
        return stats

    # -- lockstep mode -------------------------------------------------------

    def _run_lockstep(self, X: np.ndarray, Y: np.ndarray) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        losses = np.zeros(n)
        counters = [StageRuntimeStats(index=s) for s in range(S)]
        cmd_qs = [_SimpleQueue() for _ in range(S)]
        res_q = _SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._lockstep_worker,
                args=(s, cmd_qs[s], res_q, Y, losses, counters[s]),
                name=f"pipeline-stage-{s}",
                daemon=True,
            )
            for s in range(S)
        ]
        for t in self._threads:
            t.start()

        fwd_in: dict[int, _Packet] = {}
        bwd_in: dict[int, _Packet] = {}
        t0 = time.perf_counter()
        try:
            while state.next_sample < n or fwd_in or bwd_in:
                # inject one new packet if the first stage is free (the
                # simulator's gate, kept verbatim)
                if state.next_sample < n and 0 not in fwd_in:
                    size = min(
                        sched.inject_size(state), n - state.next_sample
                    )
                    if size > 0:
                        i = state.next_sample
                        fwd_in[0] = _Packet(i, i, size, [X[i : i + size]])
                        state.next_sample += size

                # scatter: every worker steps once, concurrently
                for s in range(S):
                    cmd_qs[s].put(
                        ("step", fwd_in.pop(s, None), bwd_in.pop(s, None))
                    )
                # gather: the barrier — collect all S results
                failure: _WorkerFailure | None = None
                new_fwd: dict[int, _Packet] = {}
                new_bwd: dict[int, _Packet] = {}
                completed = 0
                for _ in range(S):
                    item = res_q.get(self.stall_timeout, "a lockstep step")
                    if isinstance(item, _WorkerFailure):
                        failure = failure or item
                        continue
                    s, fwd_out, bwd_out, done = item
                    if fwd_out is not None:
                        new_fwd[s + 1] = fwd_out
                    if bwd_out is not None:
                        new_bwd[s - 1] = bwd_out
                    completed += done
                if failure is not None:
                    raise PipelineRuntimeError(
                        failure.stage_index, failure.error
                    ) from failure.error
                state.completed += completed
                self._executor.samples_completed += completed
                fwd_in, bwd_in = new_fwd, new_bwd
                state.step += 1

                # batch boundaries + LR schedule run at the barrier, so
                # every stage sees them atomically (as in the simulator)
                sched.end_step(self._executor, state)
                if self.lr_schedule is not None:
                    self.set_lr(
                        self.lr_schedule(self._executor.samples_completed)
                    )
        finally:
            for q in cmd_qs:
                q.put(_STOP)
            self._join_workers()

        runtime = RuntimeStats(
            mode="lockstep",
            schedule=sched.name,
            num_stages=S,
            wall_seconds=time.perf_counter() - t0,
            stages=counters,
        )
        return self._finish_stats(losses, state.step, counters, runtime)

    def _lockstep_worker(
        self,
        s: int,
        cmd_q: _SimpleQueue,
        res_q: _SimpleQueue,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> None:
        rng = self._jitter_rng(s)
        while True:
            cmd = cmd_q.get(self.stall_timeout * 10, f"stage {s} command")
            if cmd is _STOP:
                return
            _, fwd_pkt, bwd_pkt = cmd
            try:
                if rng is not None:
                    time.sleep(rng.uniform(0.0, self.jitter))
                t0 = time.perf_counter()
                fwd_out = None
                completed = 0
                # forward before backward inside one step, exactly as the
                # simulator's forward sweep precedes its backward sweep
                if fwd_pkt is not None:
                    fwd_out, seeded = self._do_forward(
                        s, fwd_pkt, Y, losses, counters
                    )
                    if seeded is not None:
                        # the loss stage consumes its own seed this step
                        bwd_pkt = seeded
                bwd_out = None
                if bwd_pkt is not None:
                    bwd_out, completed = self._do_backward(
                        s, bwd_pkt, counters
                    )
                counters.busy_seconds += time.perf_counter() - t0
                res_q.put((s, fwd_out, bwd_out, completed))
            except BaseException as exc:  # propagate, never hang the barrier
                res_q.put(_WorkerFailure(s, exc))

    # -- free-running mode ---------------------------------------------------

    def _run_free(self, X: np.ndarray, Y: np.ndarray) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        losses = np.zeros(n)
        counters = [StageRuntimeStats(index=s) for s in range(S)]
        channels = [_Channel() for _ in range(S)]
        completion_q = _SimpleQueue()
        abort = threading.Event()
        #: completion order invariant: stage-0 backwards arrive FIFO
        self.completion_order: list[int] = []

        self._threads = [
            threading.Thread(
                target=self._free_worker,
                args=(s, channels, completion_q, abort, Y, losses,
                      counters[s]),
                name=f"pipeline-stage-{s}",
                daemon=True,
            )
            for s in range(S)
        ]
        t0 = time.perf_counter()
        for t in self._threads:
            t.start()

        try:
            while state.completed < n:
                # inject every packet the schedule currently allows; the
                # per-stage in-flight caps provide the backpressure
                while state.next_sample < n:
                    size = min(
                        sched.inject_size(state), n - state.next_sample
                    )
                    if size <= 0:
                        break
                    i = state.next_sample
                    channels[0].put_fwd(
                        _Packet(i, i, size, [X[i : i + size]])
                    )
                    state.next_sample += size

                item = completion_q.get(self.stall_timeout, "a completion")
                if isinstance(item, _WorkerFailure):
                    raise PipelineRuntimeError(
                        item.stage_index, item.error
                    ) from item.error
                start, size = item
                self.completion_order.append(start)
                state.completed += size
                self._executor.samples_completed += size
                # batch boundaries: when a synchronous schedule's batch has
                # fully drained, every worker is idle (stage 0's backward is
                # globally last), so flushing from here is race-free
                sched.end_step(self._executor, state)
                if self.lr_schedule is not None:
                    self.set_lr(
                        self.lr_schedule(self._executor.samples_completed)
                    )
        except BaseException:
            abort.set()
            raise
        finally:
            for ch in channels:
                ch.close()
            self._join_workers()

        runtime = RuntimeStats(
            mode="free_running",
            schedule=sched.name,
            num_stages=S,
            wall_seconds=time.perf_counter() - t0,
            stages=counters,
        )
        # free-running has no global clock; report the modeled span (what
        # lockstep/sim would take) so utilization stays comparable
        time_steps = sched.drain_span(n, S) if n else 0
        return self._finish_stats(losses, time_steps, counters, runtime)

    def _free_worker(
        self,
        s: int,
        channels: list[_Channel],
        completion_q: _SimpleQueue,
        abort: threading.Event,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> None:
        stage = self.stages[s]
        ch = channels[s]
        rng = self._jitter_rng(s)
        # PipeDream in-flight bound: at most D_s + 1 packets between their
        # forward and backward here.  This is what turns eq. 5 into a
        # guaranteed staleness ceiling (see module docstring).
        cap = stage.delay + 1
        in_flight = 0
        while True:
            with ch.cond:
                item = None
                while item is None:
                    if abort.is_set():
                        return
                    if ch.bwd:  # backward priority: drain first
                        item = ("bwd", ch.bwd.popleft())
                    elif ch.fwd and in_flight < cap:
                        item = ("fwd", ch.fwd.popleft())
                    elif ch.closed and not ch.fwd and not ch.bwd:
                        return
                    else:
                        ch.cond.wait(0.05)  # re-check abort periodically
            kind, pkt = item
            try:
                if rng is not None:
                    time.sleep(rng.uniform(0.0, self.jitter))
                t0 = time.perf_counter()
                if kind == "fwd":
                    fwd_out, seeded = self._do_forward(
                        s, pkt, Y, losses, counters
                    )
                    if fwd_out is not None:
                        in_flight += 1
                        channels[s + 1].put_fwd(fwd_out)
                    elif seeded is not None:
                        # loss stage: forward seeds its own backward and
                        # processes it immediately (same-step semantics)
                        bwd_out, completed = self._do_backward(
                            s, seeded, counters
                        )
                        if bwd_out is not None:
                            channels[s - 1].put_bwd(bwd_out)
                        if completed:
                            completion_q.put((pkt.start, completed))
                else:
                    bwd_out, completed = self._do_backward(s, pkt, counters)
                    in_flight -= 1
                    if bwd_out is not None:
                        channels[s - 1].put_bwd(bwd_out)
                    if completed:
                        completion_q.put((pkt.start, completed))
                counters.busy_seconds += time.perf_counter() - t0
            except BaseException as exc:
                abort.set()
                completion_q.put(_WorkerFailure(s, exc))
                for other in channels:
                    with other.cond:
                        other.cond.notify_all()
                return

    # -- shutdown -------------------------------------------------------------

    def _join_workers(self) -> None:
        deadline = time.monotonic() + self.stall_timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        alive = [t.name for t in self._threads if t.is_alive()]
        self._threads = []
        if alive and sys.exc_info()[0] is None:
            # only complain when no richer error (worker failure, stall)
            # is already propagating — never mask the root cause.  A
            # straggler is a daemon that will exit once its in-flight op
            # returns and it observes the abort/closed flags.
            raise RuntimeError(
                f"pipeline workers failed to shut down: {alive}"
            )


# ---------------------------------------------------------------------------
# Process-per-stage runtime
# ---------------------------------------------------------------------------
#
# The threaded runner shares one interpreter, so NumPy dispatch serializes
# on the GIL; here every stage is an OS process and activations/gradients
# move through the shared-memory rings of :mod:`repro.pipeline.transport`
# (zero-copy views, no pickling on the steady-state hot path).  Only
# *control* travels over pipes: step/flush/set_lr commands, completion
# events, and the one-time state handoff at start/drain.
#
# The worker protocol (parent -> worker over ``conn``):
#
#   ("step", do_fwd, do_bwd, need_ack, cmds)
#                             lockstep only.  One pipe write carries the
#                             whole tick for this worker: ``cmds`` is a
#                             tuple of ("flush", n) / ("set_lr", lr)
#                             commands applied *before* the step work
#                             (they were generated at the previous
#                             tick's barrier, so pre-application
#                             reproduces the old broadcast ordering
#                             exactly).  The worker acks
#                             ("ok", completed_since_last_ack) only when
#                             ``need_ack`` is set — the parent computes
#                             completions from its own packet metadata
#                             and requests an ack every
#                             ``lockstep_ack_interval`` ticks purely as
#                             a flow-control barrier + invariant check.
#                             Idle ticks (no work, no cmds, no ack due)
#                             are not sent at all; the worker simply
#                             never learns they happened.
#   ("flush", count)          synchronous-schedule batch boundary
#   ("set_lr", lr)            LR schedule tick
#   ("finalize",)             reply ("state", payload) and exit
#   ("stop",)                 exit without a state reply (error path)
#
# and worker -> parent:
#
#   ("ok", completed)         lockstep windowed ack (completions since
#                             the previous ack)
#   ("done", start, size)     free-running completion (stage 0 only)
#   ("state", payload)        finalize reply: state_dict + counters (+
#                             losses and version traces)
#   ("err", stage, text)      any failure; parent raises PipelineRuntimeError
#
# The batched protocol cuts lockstep control traffic from 2*S pipe
# messages per simulated time step (S sends + S acks) to at most S sends
# plus S/ack_interval acks — and usually fewer sends, since workers with
# no packet this tick are skipped.  Per-run measurements land in
# ``RuntimeStats.control`` (see ``bench_runtime_parallelism.py``).
#
# Slot lifetime follows the autodiff engine's lazy reads (see
# transport.py): a compute stage's forward slot is released only when
# that packet's backward has run; every other slot is released as soon
# as its packet has been transformed and forwarded.


@dataclass
class _ReduceSpec:
    """One stage worker's slice of the cross-replica reduce plane.

    The reduce topology is a chain over replica ranks (see
    :func:`~repro.pipeline.transport.build_reduce_rings`): partial
    gradient sums travel rank ``0 -> 1 -> ... -> R-1`` over the
    ``chain`` rings, and the finished global sum travels back
    ``R-1 -> ... -> 0`` over the ``result`` rings.  The chain order is
    load-bearing for bit-exactness: folding rank ``r``'s per-packet
    gradients on top of ranks ``0..r-1``'s partial sum reproduces the
    *stream-order left fold* a single pipeline at update size ``R*U``
    performs, addition by addition.
    """

    rank: int
    world: int
    chain_in: ShmRing | None  # from rank-1 (None at rank 0)
    chain_out: ShmRing | None  # to rank+1 (None at the last rank)
    result_in: ShmRing | None  # from rank+1 (None at the last rank)
    result_out: ShmRing | None  # to rank-1 (None at rank 0)


@dataclass
class _ProcessWorkerSpec:
    """Everything one stage worker needs, picklable under ``spawn``."""

    stage_index: int
    num_stages: int
    lockstep: bool
    update_after_backward: bool
    conn: Any  # multiprocessing.connection.Connection
    fwd_in: ShmRing
    fwd_out: ShmRing | None
    bwd_in: ShmRing | None
    bwd_out: ShmRing | None
    abort: Any  # multiprocessing.Event
    stall_timeout: float
    jitter: float
    jitter_seed: int
    stage_state: dict
    stage: PipelineStage | None = None  # fork path: inherited object
    build_spec: StageBuildSpec | None = None  # spawn path: rebuild recipe
    labels: np.ndarray | None = None  # loss stage only
    num_samples: int = 0
    reduce: _ReduceSpec | None = None  # replicated runs only


class _ProcessStageWorker:
    """One stage's event loop inside its worker process."""

    def __init__(self, spec: _ProcessWorkerSpec, stage: PipelineStage):
        self.spec = spec
        self.stage = stage
        self.s = spec.stage_index
        self.counters = StageRuntimeStats(index=self.s)
        self.is_loss = stage.spec.kind == "loss"
        self.losses = (
            np.zeros(spec.num_samples) if self.is_loss else None
        )
        #: compute stages re-read forward inputs lazily at backward time,
        #: so their inbound forward slot outlives the forward op
        self.defer_fwd_release = stage.spec.kind == "compute"
        self._pending_fwd: deque[int] = deque()
        self.cap = stage.delay + 1  # PipeDream in-flight bound (eq. 5)
        self.in_flight = 0
        self._reduce_round = 0  # packet ids on the reduce rings
        self._rng = (
            np.random.default_rng(
                (spec.jitter_seed * 1_000_003 + self.s) & 0xFFFFFFFF
            )
            if spec.jitter > 0.0
            else None
        )

    def _jitter(self) -> None:
        if self._rng is not None:
            time.sleep(self._rng.uniform(0.0, self.spec.jitter))

    # -- packet transformations -------------------------------------------

    # busy_seconds accounting: only the transformations themselves are
    # timed — blocking ring sends (downstream backpressure) fall outside
    # the window, matching the threaded runner's never-blocking channel
    # puts so busy fractions stay comparable across backends.

    def _handle_forward(self, pkt) -> int:
        """Transform one inbound forward packet; returns completions."""
        pid, start, size, payload = pkt
        spec = self.spec
        self._jitter()
        completed = 0
        if self.is_loss:
            t0 = time.perf_counter()
            lvec, glogits = softmax_xent_grad_batch(
                payload[0], spec.labels[start : start + size]
            )
            self.losses[start : start + size] = lvec
            self.counters.forward_ops += 1
            self.counters.forward_samples += size
            # the loss stage consumes its own seeded backward in the same
            # step, exactly as the simulator's forward sweep seeds bwd_in
            upstream = self._backward_compute(pid, [glogits], size)
            self.counters.busy_seconds += time.perf_counter() - t0
            completed = self._ship_backward(pid, start, size, upstream)
            spec.fwd_in.release()
        else:
            t0 = time.perf_counter()
            out = self.stage.forward(pid, payload)
            self.counters.forward_ops += 1
            self.counters.forward_samples += size
            self.counters.busy_seconds += time.perf_counter() - t0
            spec.fwd_out.send(
                pid, start, size, out, spec.stall_timeout, spec.abort
            )
            self.in_flight += 1
            if self.defer_fwd_release:
                self._pending_fwd.append(pid)
            else:
                spec.fwd_in.release()
        return completed

    def _backward_compute(self, pid, grads, size) -> list[np.ndarray]:
        """The backward transformation proper (timed by the caller)."""
        upstream = self.stage.backward(pid, grads)
        if self.spec.update_after_backward:
            self.stage.apply_update()
        self.counters.backward_ops += 1
        self.counters.backward_samples += size
        return upstream

    def _ship_backward(self, pid, start, size, upstream) -> int:
        """Send upstream gradients (untimed); stage 0 reports completions."""
        if self.s > 0:
            self.spec.bwd_out.send(
                pid, start, size, upstream, self.spec.stall_timeout,
                self.spec.abort,
            )
            return 0
        return size

    def _handle_backward(self, pkt) -> int:
        """Transform one inbound backward packet; returns completions."""
        pid, start, size, grads = pkt
        spec = self.spec
        self._jitter()
        t0 = time.perf_counter()
        upstream = self._backward_compute(pid, grads, size)
        self.counters.busy_seconds += time.perf_counter() - t0
        # copy into the upstream ring *before* releasing anything the
        # upstream grads may alias (identity/sum pass views through)
        completed = self._ship_backward(pid, start, size, upstream)
        spec.bwd_in.release()  # gradients are consumed eagerly
        self.in_flight -= 1
        if self.defer_fwd_release:
            expect = self._pending_fwd.popleft()
            if expect != pid:
                raise RuntimeError(
                    f"stage {self.s}: backward for packet {pid} arrived "
                    f"before packet {expect}'s — FIFO violated"
                )
            spec.fwd_in.release()
        return completed

    # -- control ----------------------------------------------------------

    def _reduce_flush(self, local_count: int) -> None:
        """One cross-replica reduce round ending in a synchronized update.

        Every replica's stage worker (same stage, ranks ``0..R-1``)
        enters this once per global batch — replicas whose shard holds no
        samples for the batch enter with ``local_count == 0`` and empty
        segments, keeping the chain aligned.  Rank ``r`` receives ranks
        ``0..r-1``'s partial sums, folds its own per-packet gradients on
        top *in stream order*, and forwards; the last rank's fold is the
        global sum, which travels back down the result chain.  Everyone
        then installs the identical sum and applies the identical mean
        update, so replicas stay bit-for-bit in sync — and equal to one
        pipeline running the whole ``R*U`` batch.
        """
        spec = self.spec
        red = spec.reduce
        params = self.stage.params
        segments = self.stage.pop_grad_segments()
        if red.chain_in is not None:
            pkt = red.chain_in.recv(
                spec.stall_timeout,
                f"stage {self.s} reduce chain (rank {red.rank})",
                spec.abort,
            )
            # cumulative sample count rides in the ``start`` meta slot
            upstream_count = int(pkt[1])
            acc: list = list(pkt[3])  # zero-copy views into the ring slot
        else:
            upstream_count = 0
            acc = [None] * len(params)
        total = upstream_count + int(local_count)
        for k, seg in enumerate(segments):
            a = acc[k]
            for g in seg:
                # the left fold: same association order as the single
                # pipeline's per-packet gradient accumulation
                a = g if a is None else a + g
            acc[k] = a
        if params and any(a is None for a in acc):
            # only reachable when rank 0 flushes a batch it saw no
            # samples of — the block-cyclic shard gives rank 0 the
            # earliest samples of every batch, so this is a plan bug
            raise RuntimeError(
                f"stage {self.s} rank {red.rank}: reduce round "
                f"{self._reduce_round} has no gradient to contribute or "
                "forward"
            )
        pid = self._reduce_round
        self._reduce_round += 1
        if red.chain_out is not None:
            size = max((int(a.shape[0]) for a in acc), default=0)
            red.chain_out.send(
                pid, total, size, acc, spec.stall_timeout, spec.abort
            )
            if red.chain_in is not None:
                red.chain_in.release()  # the send copied the views out
            pkt = red.result_in.recv(
                spec.stall_timeout,
                f"stage {self.s} reduce result (rank {red.rank})",
                spec.abort,
            )
            total = int(pkt[1])
            result = [np.array(a, copy=True) for a in pkt[3]]
            if red.result_out is not None:
                red.result_out.send(
                    pid, total, pkt[2], pkt[3], spec.stall_timeout,
                    spec.abort,
                )
            red.result_in.release()
        else:
            # last rank: its fold IS the global sum.  Copy before
            # releasing the inbound slot the views may alias.
            result = [np.array(a, copy=True) for a in acc]
            if red.chain_in is not None:
                red.chain_in.release()
            size = max((int(a.shape[0]) for a in result), default=0)
            red.result_out.send(
                pid, total, size, result, spec.stall_timeout, spec.abort
            )
        if params:
            self.stage.set_reduced_grads(result)
        self.stage.flush_update(total)

    def _apply_control(self, cmd) -> bool:
        """Apply a non-step command; ``True`` when the worker should exit."""
        tag = cmd[0]
        if tag == "flush":
            if self.spec.reduce is not None:
                self._reduce_flush(int(cmd[1]))
            else:
                self.stage.flush_update(cmd[1])
            if not self.spec.lockstep:
                # free mode: the parent must not inject the next batch
                # until every stage has flushed — a worker past its
                # control poll could otherwise transform a fresh packet
                # with un-flushed weights (lockstep needs no ack: the
                # flush command is ordered before the next step command
                # in the same pipe)
                self.spec.conn.send(("flushed",))
        elif tag == "set_lr":
            self.stage.lr = float(cmd[1])
        elif tag == "finalize":
            self.spec.conn.send(("state", self._finalize_payload()))
            return True
        elif tag == "stop":
            return True
        else:  # pragma: no cover - protocol bug
            raise RuntimeError(f"stage {self.s}: unknown command {tag!r}")
        return False

    def _finalize_payload(self) -> dict:
        return {
            "state": self.stage.state_dict(),
            "counters": self.counters,
            "losses": self.losses,
            "version_trace": list(self.stage.version_trace),
            "stash_len": len(self.stage.stash),
            "updates_applied": self.stage.updates_applied,
        }

    # -- event loops -------------------------------------------------------

    def run(self) -> None:
        if self.spec.lockstep:
            self._run_lockstep()
        else:
            self._run_free()

    def _recv_cmd(self):
        """Blocking command read that still honours the abort flag."""
        while not self.spec.conn.poll(0.05):
            if self.spec.abort.is_set():
                return ("stop",)
        return self.spec.conn.recv()

    def _run_lockstep(self) -> None:
        spec = self.spec
        completed_since_ack = 0
        while True:
            cmd = self._recv_cmd()
            if cmd[0] != "step":
                # standalone legacy command (end-of-run flush delivery,
                # replicated missing-round flushes, finalize, stop)
                if self._apply_control(cmd):
                    return
                continue
            _, do_fwd, do_bwd, need_ack, cmds = cmd
            # coalesced control first: these commands were generated at
            # the previous tick's barrier, so applying them before this
            # step's work reproduces the standalone-broadcast ordering
            for sub in cmds:
                self._apply_control(sub)
            completed = 0
            # forward before backward inside one step, exactly as the
            # simulator's forward sweep precedes its backward sweep
            if do_fwd:
                completed += self._handle_forward(
                    spec.fwd_in.recv(
                        spec.stall_timeout, f"stage {self.s} fwd packet",
                        spec.abort,
                    )
                )
            if do_bwd:
                completed += self._handle_backward(
                    spec.bwd_in.recv(
                        spec.stall_timeout, f"stage {self.s} bwd packet",
                        spec.abort,
                    )
                )
            completed_since_ack += completed
            if need_ack:
                spec.conn.send(("ok", completed_since_ack))
                completed_since_ack = 0

    def _run_free(self) -> None:
        spec = self.spec
        idle_sleep = 1e-5
        while True:
            # control first: a flush sent before the next batch's packets
            # were injected must be applied before those packets (pipe
            # writes precede the ring publishes, so checking the pipe
            # first preserves the parent's ordering)
            while spec.conn.poll(0):
                if self._apply_control(spec.conn.recv()):
                    return
            if spec.abort.is_set():
                return
            completed = 0
            start = -1
            worked = False
            if spec.bwd_in is not None and spec.bwd_in.poll():
                # backward priority: PipeDream's drain rule
                pkt = spec.bwd_in.try_recv()
                start = pkt[1]
                completed = self._handle_backward(pkt)
                worked = True
            elif spec.fwd_in.poll() and self.in_flight < self.cap:
                pkt = spec.fwd_in.try_recv()
                start = pkt[1]
                completed = self._handle_forward(pkt)
                worked = True
            if completed:
                spec.conn.send(("done", start, int(completed)))
            if worked:
                idle_sleep = 1e-5
            else:
                time.sleep(idle_sleep)
                idle_sleep = min(idle_sleep * 2.0, 2e-3)


def _process_worker_main(spec: _ProcessWorkerSpec) -> None:
    """Entry point of a stage worker process (top-level for ``spawn``)."""
    try:
        if spec.stage is not None:
            stage = spec.stage
        elif spec.build_spec is not None:
            stage = spec.build_spec.build()
        else:  # pragma: no cover - constructor validates
            raise RuntimeError("worker spec carries neither stage nor recipe")
        stage.load_state_dict(spec.stage_state)
        # ship only THIS run's version trace back; the parent extends its
        # accumulated list (matching the sim/threaded engines' behaviour
        # across consecutive train() calls).  A fork-inherited stage
        # would otherwise carry — and duplicate — prior runs' entries.
        stage.version_trace = []
        if spec.reduce is not None:
            # replicated sync runs fold per-packet gradient segments
            # across replicas instead of accumulating locally
            stage.collect_grad_segments = True
        _ProcessStageWorker(spec, stage).run()
    except TransportAborted:
        pass  # the parent is tearing the run down; exit quietly
    except BaseException as exc:
        try:
            spec.conn.send(
                (
                    "err",
                    spec.stage_index,
                    f"{exc!r}\n{traceback.format_exc()}",
                )
            )
        except Exception:  # pragma: no cover - parent already gone
            pass
        spec.abort.set()


class _FlushProxy:
    """Stand-in for the executor inside ``Schedule.end_step``: forwards
    batch-boundary flushes to every worker process as commands.

    In free-running mode the flush is a *barrier*: the proxy waits for
    every worker's ack before returning, so injection of the next batch
    (which happens after ``end_step``) cannot overtake the flush.  The
    pipeline is fully drained at a synchronous schedule's batch boundary,
    so the ack round-trip costs one idle pipe hop per batch.
    """

    def __init__(self, runner: "ProcessPipelineRunner", wait_acks: bool):
        self._runner = runner
        self._wait_acks = wait_acks

    def flush_stages(self, count: int) -> None:
        # the authoritative update counters return at finalize
        self._runner._broadcast(("flush", count))
        if self._wait_acks:
            for s in range(self._runner.num_stages):
                msg = self._runner._recv(s)
                if msg[0] != "flushed":  # pragma: no cover - protocol bug
                    raise RuntimeError(
                        f"stage {s}: expected flush ack, got {msg[0]!r}"
                    )


class _PendingCmdProxy:
    """Stand-in for the executor inside ``Schedule.end_step`` under the
    batched lockstep protocol: instead of broadcasting a flush on its own
    pipe write, the command is queued per worker and rides the next
    ``("step", ...)`` message each worker receives.  Workers apply queued
    commands *before* that step's work, which is exactly where the old
    standalone broadcast landed in their pipe (end_step runs at the tick
    barrier, after the tick's sends), so the worker-side operation order
    — and therefore every bit of state — is unchanged.
    """

    def __init__(self, pending: list[list]):
        self._pending = pending

    def flush_stages(self, count: int) -> None:
        for q in self._pending:
            q.append(("flush", int(count)))


class ProcessPipelineRunner(_ConcurrentEngineFacade):
    """Execute a :class:`StageGraphModel` pipeline with one worker
    *process* per stage and shared-memory packet transport.

    Constructor mirrors :class:`ConcurrentPipelineRunner` (same schedule
    plumbing, same ``lockstep`` / ``jitter`` / ``stall_timeout`` knobs),
    plus:

    model_factory:
        Spawn-safe callable rebuilding the model from scratch (a
        module-level function or ``functools.partial``).  Required for
        ``start_method="spawn"``; optional under ``"fork"``, where it
        switches the workers from inheriting the parent's stage objects
        to reconstructing them via :class:`StageBuildSpec` — the same
        code path ``spawn`` uses, handy for testing it.
    start_method:
        ``"fork"`` (default where available) or ``"spawn"``.
    ring_slack:
        Extra ring slots beyond the per-stage in-flight cap
        ``D_s + 1`` (see :func:`repro.pipeline.transport.ring_slots_for`).
    max_restarts:
        Crash recovery: how many times one :meth:`train` call may
        respawn its workers after a stage worker dies (``0``, the
        default, keeps the fail-fast behavior of raising
        :class:`PipelineRuntimeError`).  Every ``train`` entry is a
        drain barrier, so the runner snapshots the engine state there
        (:meth:`PipelineExecutor.state_dict`); when a worker is found
        dead — its control pipe hits EOF, or the liveness watchdog
        spots the exited process while another worker blocks on it —
        the run tears everything down, restores the snapshot, respawns
        all workers from it (the same ``StageBuildSpec`` + state-ship
        path a fresh launch uses) and replays the partial batch.  The
        replay starts from a consistent global state, so a recovered
        run is bit-identical to one that never crashed; ``restarts_used``
        counts the recoveries actually taken.  Recovery restarts *all*
        stages rather than just the dead one: in-flight packets die
        with the worker, and only drain-barrier state is globally
        consistent — a single-stage respawn could never be bit-exact.

    **lockstep** mode is bit-exact with :class:`PipelineExecutor` and the
    lockstep threaded runner: workers hold identical state (shipped via
    ``PipelineStage.state_dict``), execute the same transformations in
    the same step order, and float64 payloads cross the rings untouched.
    **free-running** mode keeps the eq.-5 staleness ceiling through the
    same per-stage in-flight caps, with completions driving batch
    boundaries exactly as in the threaded runner.  Trained weights,
    optimizer state, per-stage op counts/busy seconds, losses and
    version traces all ship back to the parent at drain time, so after
    ``train()`` the master model is updated in place just like with the
    other engines.
    """

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
        schedule: Schedule | None = None,
        lockstep: bool = False,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        model_factory: Callable[[], StageGraphModel] | None = None,
        start_method: str | None = None,
        ring_slack: int = 2,
        max_restarts: int = 0,
        precision: "str | None" = None,
        lockstep_ack_interval: int = 16,
    ):
        self._executor = PipelineExecutor(
            model,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            mitigation=mitigation,
            mode=mode,
            update_size=update_size,
            micro_batch_size=micro_batch_size,
            lr_schedule=lr_schedule,
            record_versions=record_versions,
            schedule=schedule,
            precision=precision,
        )
        self.lockstep = bool(lockstep)
        if lockstep_ack_interval < 1:
            raise ValueError(
                f"lockstep_ack_interval must be >= 1, got "
                f"{lockstep_ack_interval}"
            )
        self.lockstep_ack_interval = int(lockstep_ack_interval)
        self.last_control_stats: dict | None = None
        self.jitter = float(jitter)
        self.jitter_seed = int(jitter_seed)
        self.stall_timeout = float(stall_timeout)
        self.model_factory = model_factory
        self.ring_slack = int(ring_slack)
        available = mp.get_all_start_methods()
        if start_method is None:
            # fork only where it is actually safe: forking a NumPy/BLAS
            # parent on macOS (Accelerate) can deadlock in the child, so
            # anywhere but Linux the spawn + model_factory path is the
            # default (matching CPython's own default flip on darwin)
            start_method = (
                "fork"
                if sys.platform.startswith("linux") and "fork" in available
                else "spawn"
            )
        if start_method not in available:
            raise ValueError(
                f"start_method {start_method!r} not available on this "
                f"platform (have {available})"
            )
        if start_method != "fork" and model_factory is None:
            raise ValueError(
                f"start_method {start_method!r} cannot inherit stage "
                "objects; pass a spawn-safe model_factory so workers can "
                "rebuild their stage (see StageBuildSpec)"
            )
        self.start_method = start_method
        self._opt = dict(
            lr=lr, momentum=momentum, weight_decay=weight_decay,
            mitigation=mitigation,
        )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.max_restarts = int(max_restarts)
        self.restarts_used = 0
        self.last_runtime_stats: RuntimeStats | None = None
        self.completion_order: list[int] = []
        self._procs: list[mp.process.BaseProcess] = []
        self._conns: list[Any] = []
        self._child_conns: list[Any] = []
        self._rx_buf: list[deque] = []
        self._rings: list[ShmRing] = []
        self._fwd_rings: list[ShmRing] = []
        self._abort = None
        #: boundary layouts depend only on architecture + packet
        #: shape/dtype, so relaunches (per-segment drives, crash
        #: recovery) skip the dummy probe pass after the first launch
        self._layout_cache: dict[tuple, list] = {}
        #: set by ReplicatedPipelineRunner before a launch: one
        #: _ReduceSpec per stage, handed to the worker specs so flushes
        #: run the cross-replica reduction
        self._reduce_plan: list[_ReduceSpec] | None = None

    # (engine facade inherited from _ConcurrentEngineFacade)

    _infer_backend = "process"

    def _infer_stream_kwargs(self) -> dict:
        return {
            "model_factory": self.model_factory,
            "start_method": self.start_method,
        }

    # -- worker lifecycle ---------------------------------------------------

    def _launch(self, X: np.ndarray, Y: np.ndarray) -> None:
        S = self.num_stages
        width = max(1, self.schedule.micro_batch)
        probe = np.zeros((width,) + X.shape[1:], dtype=X.dtype)
        layout_key = (probe.shape, str(probe.dtype))
        layouts = self._layout_cache.get(layout_key)
        if layouts is None:
            layouts = probe_boundary_layouts(self.stages, probe)
            self._layout_cache[layout_key] = layouts
        fwd_rings, bwd_rings = build_pipeline_rings(
            self.stages, probe, slack=self.ring_slack, layouts=layouts
        )
        self._rings = fwd_rings + [r for r in bwd_rings if r is not None]
        self._fwd_rings = fwd_rings
        ctx = mp.get_context(self.start_method)
        self._abort = ctx.Event()
        self._conns = []
        self._child_conns = []
        self._rx_buf = [deque() for _ in range(S)]
        self._procs = []
        use_factory = self.model_factory is not None
        for s in range(S):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            stage = self.stages[s]
            spec = _ProcessWorkerSpec(
                stage_index=s,
                num_stages=S,
                lockstep=self.lockstep,
                update_after_backward=self.schedule.update_after_backward(s),
                conn=child_conn,
                fwd_in=fwd_rings[s],
                fwd_out=fwd_rings[s + 1] if s + 1 < S else None,
                bwd_in=bwd_rings[s],
                bwd_out=bwd_rings[s - 1] if s > 0 else None,
                abort=self._abort,
                stall_timeout=self.stall_timeout,
                jitter=self.jitter,
                jitter_seed=self.jitter_seed,
                stage_state=stage.state_dict(),
                stage=None if use_factory else stage,
                build_spec=(
                    StageBuildSpec(
                        model_factory=self.model_factory,
                        index=s,
                        lr=stage.lr,
                        momentum=self._opt["momentum"],
                        weight_decay=self._opt["weight_decay"],
                        mitigation=self._opt["mitigation"],
                        always_stash=self.schedule.stash_weights,
                        record_versions=stage.record_versions,
                        precision=self._executor.precision.mode,
                    )
                    if use_factory
                    else None
                ),
                labels=Y if stage.spec.kind == "loss" else None,
                num_samples=X.shape[0],
                reduce=(
                    self._reduce_plan[s]
                    if self._reduce_plan is not None
                    else None
                ),
            )
            proc = ctx.Process(
                target=_process_worker_main,
                args=(spec,),
                name=f"pipeline-stage-proc-{s}",
                daemon=True,
            )
            self._conns.append(parent_conn)
            self._child_conns.append(child_conn)
            self._procs.append(proc)
        # workers load their lr from the shipped state; broadcasts are
        # needed only when the schedule later changes it
        self._last_broadcast_lr = self.stages[0].lr if self.stages else None
        for p in self._procs:
            p.start()
        # the child ends now live in the workers; drop the parent's copies
        for conn in self._child_conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - idempotent
                pass
        self._child_conns = []

    def _broadcast(self, cmd) -> None:
        for conn in self._conns:
            conn.send(cmd)

    def _find_dead_worker(self) -> int | None:
        """Index of the first worker that died *abnormally*, or ``None``.

        Abnormal means a nonzero exit code: SIGKILL/OOM/segfault.  Every
        legitimate worker path — finalize reply, stop command, abort,
        even an internal error (reported as an ``err`` message first) —
        returns from ``_process_worker_main`` and exits 0, so exit code
        is the discriminator that works in every phase (a worker that
        has replied to finalize may exit 0 while the parent still drains
        its siblings).  The check exists because pipe EOF alone cannot
        flag a dead worker: under ``fork`` sibling workers inherit each
        other's pipe ends, keeping the write side open after a SIGKILL,
        and a dead stage can leave its *neighbors* blocked on rings with
        their own pipes silent.
        """
        for s, p in enumerate(self._procs):
            if p.ident is not None and (p.exitcode or 0) != 0:
                return s
        return None

    def _raise_dead_worker(self, s: int) -> None:
        raise PipelineRuntimeError(
            s,
            RuntimeError(
                "worker process died without reporting an error "
                f"(exitcode={self._procs[s].exitcode})"
            ),
        )

    def _scan_for_err(self) -> None:
        """Drain buffered worker messages; raise the first ``err`` found.

        A worker failure now often surfaces indirectly: the batched
        lockstep protocol lets the parent run ahead, so sibling workers
        of the stage that actually failed die next on the aborted
        transport (quietly — see ``_process_worker_main``), and the
        parent's first symptom can be a sibling's pipe EOF or a stall.
        The root-cause ``err`` report is still sitting in the failed
        worker's pipe; scanning every pipe before raising a secondary
        error keeps the failure attributed to the right stage.  Non-err
        messages (e.g. in-flight acks from healthy workers) are stashed
        and replayed to later ``_recv`` calls.
        """
        for s, conn in enumerate(self._conns):
            try:
                while conn.poll(0):
                    msg = conn.recv()
                    if msg[0] == "err":
                        raise PipelineRuntimeError(
                            msg[1], RuntimeError(msg[2])
                        )
                    self._rx_buf[s].append(msg)
            except (EOFError, OSError):
                continue

    def _recv(self, s: int):
        """One message from worker ``s`` with the stall deadline.

        While waiting, worker health is polled: an abnormally-exited
        worker raises :class:`PipelineRuntimeError` immediately instead
        of stalling out.  A killed worker with nothing buffered (the
        poll above was ``False``) sent nothing before dying — once
        ``send`` has returned in the child its bytes are in the pipe
        buffer and visible to ``poll`` — so raising loses no messages.
        """
        if self._rx_buf[s]:
            return self._rx_buf[s].popleft()  # err is never stashed
        deadline = time.monotonic() + self.stall_timeout
        while not self._conns[s].poll(0.05):
            dead = self._find_dead_worker()
            if dead is not None:
                self._scan_for_err()
                self._raise_dead_worker(dead)
            if time.monotonic() >= deadline:
                self._scan_for_err()
                raise RuntimeError(
                    f"pipeline runtime stalled waiting on stage {s} worker "
                    f"({self.stall_timeout:.1f}s) — likely deadlock or a "
                    "dead process"
                )
        try:
            msg = self._conns[s].recv()
        except (EOFError, OSError) as exc:
            # a worker killed without reporting (OOM, segfault) closes
            # its pipe end; surface the documented error, not a bare EOF
            # — unless a sibling's buffered err names the real culprit
            self._scan_for_err()
            raise PipelineRuntimeError(
                s,
                RuntimeError(
                    "worker process died without reporting an error "
                    f"(exitcode={self._procs[s].exitcode})"
                ),
            ) from exc
        if msg[0] == "err":
            raise PipelineRuntimeError(msg[1], RuntimeError(msg[2]))
        return msg

    def _apply_lr_schedule(self, pending=None) -> None:
        if self.lr_schedule is None:
            return
        lr = float(self.lr_schedule(self._executor.samples_completed))
        self._executor.set_lr(lr)
        # workers start from the shipped state's lr; only a *change*
        # needs a broadcast (a constant post-warmup schedule would
        # otherwise cost stages × samples no-op pipe sends).  The
        # lockstep driver passes its per-worker pending-command queues
        # instead of broadcasting, so the change rides the next batched
        # step message to each worker (same worker-side ordering: the
        # cmd applies before that worker's next op, exactly where the
        # old broadcast landed in its pipe).
        if lr != self._last_broadcast_lr:
            if pending is not None:
                for q in pending:
                    q.append(("set_lr", lr))
            else:
                self._broadcast(("set_lr", lr))
            self._last_broadcast_lr = lr

    def _finalize_workers(
        self, losses: np.ndarray, counters: list[StageRuntimeStats]
    ) -> None:
        """Collect trained state + measurements; load into parent stages."""
        self._broadcast(("finalize",))
        payloads = []
        for s in range(self.num_stages):
            msg = self._recv(s)
            if msg[0] != "state":  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"stage {s}: expected finalize state, got {msg[0]!r}"
                )
            payloads.append(msg[1])
        for s, payload in enumerate(payloads):
            if payload["stash_len"]:
                raise RuntimeError(
                    f"stage {s} finished with {payload['stash_len']} "
                    "stashed packets — pipeline did not drain"
                )
            stage = self.stages[s]
            stage.load_state_dict(payload["state"])
            stage.updates_applied = int(payload["updates_applied"])
            stage.version_trace.extend(payload["version_trace"])
            counters[s] = payload["counters"]
            if payload["losses"] is not None:
                np.copyto(losses, payload["losses"])

    def _teardown(self, failed: bool) -> None:
        if failed and self._abort is not None:
            self._abort.set()
        deadline = time.monotonic() + self.stall_timeout
        started = [p for p in self._procs if p.ident is not None]
        for p in started:
            p.join(max(0.0, deadline - time.monotonic()))
        for p in started:
            if p.is_alive():
                p.terminate()
                p.join(5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - idempotent teardown
                pass
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._procs = []
        self._conns = []
        self._child_conns = []
        self._rx_buf = []
        self._rings = []
        self._fwd_rings = []
        self._abort = None

    # -- public entry -------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Stream all samples through the process pipeline (training).

        With ``max_restarts > 0`` a dead stage worker does not kill the
        run: the engine state captured at this call's entry (a drain
        barrier) is restored, all workers respawn from it, and the
        partial batch replays — bit-identical to a crash-free run (see
        the constructor docs).
        """
        if self.schedule.forward_only:
            raise ValueError(
                f"schedule {self.schedule.name!r} is forward-only; use "
                "infer() (or repro.serve) instead of train()"
            )
        X = np.ascontiguousarray(self._executor.precision.cast_array(X))
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        n = X.shape[0]
        self.schedule.reset(n)
        self.completion_order = []
        if n == 0:
            counters = [
                StageRuntimeStats(index=s) for s in range(self.num_stages)
            ]
            runtime = RuntimeStats(
                mode=self.runtime_mode,
                schedule=self.schedule.name,
                num_stages=self.num_stages,
                wall_seconds=0.0,
                stages=counters,
                backend="process",
            )
            return self._finish_stats(np.zeros(0), 0, counters, runtime)
        snapshot = (
            self._executor.state_dict() if self.max_restarts > 0 else None
        )
        attempt = 0
        while True:
            try:
                return self._train_attempt(X, Y, n)
            except PipelineRuntimeError:
                if snapshot is None or attempt >= self.max_restarts:
                    raise
                attempt += 1
                self.restarts_used += 1
                # every worker (and its rings) is already gone — the
                # attempt's finally ran _teardown(failed=True); rewind
                # to the entry drain barrier and replay the batch
                self._executor.load_state_dict(snapshot)
                self.schedule.reset(n)
                self.completion_order = []

    def _train_attempt(
        self, X: np.ndarray, Y: np.ndarray, n: int
    ) -> PipelineRunStats:
        """One launch/drive/finalize cycle (extracted so crash recovery
        can replay it from a restored snapshot)."""
        losses = np.zeros(n)
        counters: list[StageRuntimeStats] = [
            StageRuntimeStats(index=s) for s in range(self.num_stages)
        ]
        self.last_control_stats = None
        failed = True
        try:
            self._launch(X, Y)
            # wall_seconds spans first injection to last completion —
            # the same window the threaded runner measures — so busy
            # fractions stay comparable across backends; ring/process
            # setup and the drain-time state collection are excluded
            t0 = time.perf_counter()
            if self.lockstep:
                time_steps = self._drive_lockstep(X, n)
            else:
                time_steps = self._drive_free(X, n)
            wall = time.perf_counter() - t0
            self._finalize_workers(losses, counters)
            failed = False
        finally:
            self._teardown(failed)
        runtime = RuntimeStats(
            mode=self.runtime_mode,
            schedule=self.schedule.name,
            num_stages=self.num_stages,
            wall_seconds=wall,
            stages=counters,
            backend="process",
            control=self.last_control_stats,
        )
        check_stages_drained(self.stages)
        return self._finish_stats(losses, time_steps, counters, runtime)

    # -- lockstep driver ----------------------------------------------------

    def _check_worker_errors(self) -> None:
        """Surface a worker death or error report without blocking.

        Under the batched protocol the parent no longer receives a
        per-tick message that would carry an ``err``; this poll is the
        replacement, run whenever the parent is about to wait (injection
        backpressure) or has seen the abort flag.
        """
        self._scan_for_err()
        dead = self._find_dead_worker()
        if dead is not None:
            self._raise_dead_worker(dead)

    def _send_injection(self, pid, start, size, payload) -> None:
        """Inject a packet into the stage-0 ring with bounded waiting.

        The batched protocol lets the parent run up to an ack window
        ahead of the workers, so a full injection ring is ordinary flow
        control rather than a rare race; spin on ``try_send`` with
        liveness checks so a dead or erroring worker surfaces as
        :class:`PipelineRuntimeError` instead of a transport stall.
        """
        ring = self._fwd_rings[0]
        if ring.try_send(pid, start, size, payload):
            return
        deadline = time.monotonic() + self.stall_timeout
        while True:
            self._check_worker_errors()
            if ring.try_send(pid, start, size, payload):
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    "pipeline runtime stalled injecting into the "
                    f"stage-0 ring ({self.stall_timeout:.1f}s) — likely "
                    "deadlock or a dead process"
                )
            time.sleep(0.0002)

    def _drive_lockstep(self, X: np.ndarray, n: int) -> int:
        """Mirror of ``PipelineExecutor._run``'s control flow: the parent
        tracks packet *positions* (metadata only) while the payloads hop
        worker-to-worker through the rings.

        Control plane (protocol notes at the top of the module): each
        worker gets at most **one** pipe write per simulated time step —
        ``("step", do_fwd, do_bwd, need_ack, cmds)`` with any
        batch-boundary flush / LR-schedule commands from the previous
        tick's barrier coalesced into ``cmds`` — and workers with
        nothing to do this tick get no message at all.  Completions are
        computed parent-side from the packet metadata it already tracks
        (stage 0's backward size, plus the loss-stage forward when
        ``S == 1``), which is exactly the sum the old per-tick ack
        barrier collected; workers report
        ``("ok", completed_since_last_ack)`` only every
        ``lockstep_ack_interval`` ticks as a flow-control barrier, and
        the parent cross-checks the acked total against its metadata
        count to catch protocol drift.  The per-worker operation
        sequence is unchanged from the per-tick protocol, so lockstep
        runs stay bit-exact with the simulator.
        """
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        pending: list[list] = [[] for _ in range(S)]
        proxy = _PendingCmdProxy(pending)
        fwd_meta: dict[int, tuple[int, int, int]] = {}
        bwd_meta: dict[int, tuple[int, int, int]] = {}
        ack_every = self.lockstep_ack_interval
        ticks_since_ack = 0
        expect_completed = 0  # metadata completions since the last ack
        sends = 0
        acks = 0
        while state.next_sample < n or fwd_meta or bwd_meta:
            if self._abort is not None and self._abort.is_set():
                # a worker posted an error and aborted the transport;
                # surface it instead of streaming more commands
                self._check_worker_errors()
                raise RuntimeError(  # pragma: no cover - err precedes abort
                    "pipeline transport aborted without a worker error "
                    "report"
                )
            if state.next_sample < n and 0 not in fwd_meta:
                size = min(sched.inject_size(state), n - state.next_sample)
                if size > 0:
                    i = state.next_sample
                    self._send_injection(i, i, size, [X[i : i + size]])
                    fwd_meta[0] = (i, i, size)
                    state.next_sample += size

            ticks_since_ack += 1
            need_ack = ticks_since_ack >= ack_every
            for s in range(S):
                do_fwd = s in fwd_meta
                do_bwd = s in bwd_meta
                if not (do_fwd or do_bwd or pending[s] or need_ack):
                    continue  # idle worker: skip the pipe write entirely
                self._conns[s].send(
                    ("step", do_fwd, do_bwd, need_ack, tuple(pending[s]))
                )
                pending[s].clear()
                sends += 1

            # what the old per-tick ack barrier summed: only stage 0's
            # backward completes samples (plus the seeded backward the
            # loss forward consumes when it *is* stage 0)
            completed = bwd_meta[0][2] if 0 in bwd_meta else 0
            if S == 1 and 0 in fwd_meta:
                completed += fwd_meta[0][2]

            new_fwd: dict[int, tuple[int, int, int]] = {}
            new_bwd: dict[int, tuple[int, int, int]] = {}
            for s, meta in fwd_meta.items():
                if s == S - 1:
                    # the loss stage consumed its own seeded backward this
                    # step; its upstream gradient surfaces next step
                    if S > 1:
                        new_bwd[S - 2] = meta
                else:
                    new_fwd[s + 1] = meta
            for s, meta in bwd_meta.items():
                if s > 0:
                    new_bwd[s - 1] = meta
            fwd_meta, bwd_meta = new_fwd, new_bwd
            state.completed += completed
            self._executor.samples_completed += completed
            expect_completed += completed
            state.step += 1

            # batch boundaries + LR schedule at the barrier, as in the
            # sim; generated commands ride the *next* tick's step sends
            sched.end_step(proxy, state)
            self._apply_lr_schedule(pending=pending)

            if need_ack:
                acked = 0
                for s in range(S):
                    msg = self._recv(s)  # the windowed barrier
                    if msg[0] != "ok":  # pragma: no cover - protocol bug
                        raise RuntimeError(
                            f"stage {s}: expected step ack, got {msg[0]!r}"
                        )
                    acked += msg[1]
                if acked != expect_completed:  # pragma: no cover - bug trap
                    raise RuntimeError(
                        "lockstep ack mismatch: workers completed "
                        f"{acked} samples this window, metadata "
                        f"predicted {expect_completed}"
                    )
                ticks_since_ack = 0
                expect_completed = 0
                acks += S

        # commands generated at the final tick's barrier (e.g. the last
        # batch flush) have no later step message to ride: deliver them
        # as standalone legacy commands before finalize
        for s in range(S):
            for cmd in pending[s]:
                self._conns[s].send(cmd)
                sends += 1
            pending[s].clear()

        ticks = state.step
        self.last_control_stats = {
            "protocol": "batched-step",
            "time_steps": ticks,
            "num_stages": S,
            "ack_interval": ack_every,
            "pipe_msgs_sent": sends,
            "acks_received": acks,
            "round_trips_total": sends + acks,
            "msgs_per_step": (sends + acks) / ticks if ticks else 0.0,
            # the pre-batching protocol: S step sends + S acks per tick
            "baseline_msgs_per_step": 2 * S,
        }
        return state.step

    # -- free-running driver -------------------------------------------------

    def _drive_free(self, X: np.ndarray, n: int) -> int:
        """Inject as the schedule allows (ring backpressure permitting)
        and react to completion events; workers self-drive off their
        rings with backward priority and the eq.-5 in-flight caps."""
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        proxy = _FlushProxy(self, wait_acks=True)
        last_progress = time.monotonic()
        while state.completed < n:
            progressed = False
            while state.next_sample < n:
                size = min(sched.inject_size(state), n - state.next_sample)
                if size <= 0:
                    break
                i = state.next_sample
                if not self._fwd_rings[0].try_send(
                    i, i, size, [X[i : i + size]]
                ):
                    break  # ring full: downstream backpressure
                state.next_sample += size
                progressed = True

            for conn in mp_connection.wait(self._conns, timeout=0.05):
                s = self._conns.index(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError) as exc:
                    raise PipelineRuntimeError(
                        s,
                        RuntimeError(
                            "worker process died without reporting an "
                            f"error (exitcode={self._procs[s].exitcode})"
                        ),
                    ) from exc
                if msg[0] == "err":
                    raise PipelineRuntimeError(
                        msg[1], RuntimeError(msg[2])
                    )
                if msg[0] != "done":  # pragma: no cover - protocol bug
                    raise RuntimeError(f"unexpected worker message {msg!r}")
                _, start, size = msg
                self.completion_order.append(start)
                state.completed += size
                self._executor.samples_completed += size
                # batch boundaries: a synchronous schedule's batch only
                # fully drains when every worker is idle (stage 0's
                # backward is globally last), so flushing here is race-free
                sched.end_step(proxy, state)
                self._apply_lr_schedule()
                progressed = True

            if state.completed < n:
                # liveness watchdog: a SIGKILLed worker whose pipe EOF
                # has not surfaced yet (e.g. a middle stage everyone
                # else is still blocked on) fails the drive promptly
                dead = self._find_dead_worker()
                if dead is not None:
                    self._raise_dead_worker(dead)

            now = time.monotonic()
            if progressed:
                last_progress = now
            elif now - last_progress > self.stall_timeout:
                raise RuntimeError(
                    f"pipeline runtime stalled: no completion for "
                    f"{self.stall_timeout:.1f}s "
                    f"({state.completed}/{n} samples done)"
                )
        # free-running has no global clock; report the modeled span (what
        # lockstep/sim would take) so utilization stays comparable
        return sched.drain_span(n, self.num_stages)


class ReplicatedPipelineRunner(_ConcurrentEngineFacade):
    """Hybrid parallelism: ``R`` data-parallel copies of the ``S``-stage
    pipeline over the process runtime (PipeDream-2BW-style replication,
    Narayanan et al. 2021).

    Each replica is a full :class:`ProcessPipelineRunner` (one worker
    process per stage) consuming a disjoint **block-cyclic shard** of the
    sample stream: sample ``i`` belongs to replica ``(i // U) % R`` where
    ``U`` is the per-replica update size (see
    :func:`repro.data.loader.shard_positions`).  That layout makes each
    replica's contribution to global batch ``k`` a contiguous slice of
    the stream, which is what lets the reduction reproduce a single
    pipeline's gradient math bit for bit.

    Synchronous schedules (``fill_drain``/``gpipe``) reduce gradients at
    every update barrier over a shared-memory **chain reduce plane**
    (:func:`~repro.pipeline.transport.build_reduce_rings`): per-packet
    gradient segments fold across replicas in stream order, so the
    global sum — and therefore every update — is hex-identical to one
    pipeline running update size ``R*U``.  That is this runner's testable
    contract (``tests/test_replica_parity.py``): replication changes
    wall-clock parallelism, not the trajectory.

    Asynchronous schedules (``pb``/``1f1b``) keep their fine-grained
    per-gradient updates *within* each replica — reducing every
    per-sample update across replicas would serialize exactly what the
    paper pipelines — and merge at the ``train()`` drain barrier by
    averaging per-replica weight deltas (folded in rank order, so the
    merge is deterministic).  The eq.-5 staleness ceiling holds *per
    replica* with local sample indices, since each replica is an
    unmodified S-stage pipeline over its shard.

    Contract deviations from the single-pipeline engines, documented:

    * ``model_factory`` is required (every replica rebuilds the model),
      and a ready-made ``schedule`` object is rejected — the runner
      derives the per-replica schedule (update size ``U``) and the
      master schedule (update size ``R*U`` for synchronous modes, so
      checkpoint schedule tags and :class:`DurableRun` cadences match
      the equivalent single pipeline).
    * ``lr_schedule`` is evaluated once per ``train()`` call at its
      entry drain barrier (on the master's ``samples_completed``), not
      per update: mid-batch LR changes cannot be reduced consistently
      across replicas without serializing them.
    * every parameter must receive a gradient in every packet's
      backward (true for all stage graphs in this repo); per-packet
      parameter sparsity is not supported in reduce mode.

    Crash recovery follows :class:`ProcessPipelineRunner`: with
    ``max_restarts > 0``, a dead worker in *any* replica aborts all
    replicas, restores the master snapshot taken at ``train()`` entry,
    and replays the batch — a replica death recovers exactly like a
    stage death, and the replay is bit-identical to a crash-free run.
    Checkpointing via :class:`DurableRun`/:func:`capture_checkpoint`
    works unchanged: between ``train()`` calls the authoritative state
    lives in the master executor's stages.
    """

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
        schedule: Schedule | None = None,
        lockstep: bool = False,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        model_factory: Callable[[], StageGraphModel] | None = None,
        start_method: str | None = None,
        ring_slack: int = 2,
        max_restarts: int = 0,
        replicas: int = 2,
        precision: "str | None" = None,
        lockstep_ack_interval: int = 16,
    ):
        if replicas < 2:
            raise ValueError(
                f"ReplicatedPipelineRunner needs replicas >= 2, got "
                f"{replicas} (use ProcessPipelineRunner for one replica)"
            )
        if schedule is not None:
            raise ValueError(
                "ReplicatedPipelineRunner derives its per-replica and "
                "master schedules from mode/update_size/micro_batch_size; "
                "a ready-made schedule object cannot be split"
            )
        if model_factory is None:
            raise ValueError(
                "ReplicatedPipelineRunner requires a spawn-safe "
                "model_factory: every replica rebuilds the model in its "
                "own worker processes"
            )
        self.replicas = int(replicas)
        rep_schedule = make_schedule(mode, update_size, micro_batch_size)
        if rep_schedule.forward_only:
            raise ValueError(
                f"schedule {rep_schedule.name!r} is forward-only; "
                "replication applies to training"
            )
        #: synchronous schedules reduce gradients at every update
        #: barrier; asynchronous ones run independent replicas merged
        #: at the train() drain barrier
        self._sync = not rep_schedule.update_after_backward(0)
        #: per-replica update size = the block-cyclic shard block
        self._block = max(1, int(rep_schedule.update_size))
        global_update = (
            self._block * self.replicas if self._sync else update_size
        )
        self._executor = PipelineExecutor(
            model,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            mitigation=mitigation,
            mode=mode,
            update_size=global_update,
            micro_batch_size=micro_batch_size,
            lr_schedule=lr_schedule,
            record_versions=record_versions,
            precision=precision,
        )
        self.lockstep = bool(lockstep)
        self.jitter = float(jitter)
        self.jitter_seed = int(jitter_seed)
        self.stall_timeout = float(stall_timeout)
        self.model_factory = model_factory
        self.ring_slack = int(ring_slack)
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.max_restarts = int(max_restarts)
        self.restarts_used = 0
        self.last_runtime_stats: RuntimeStats | None = None
        #: the R inner single-pipeline runners (``replica_runners[r]``
        #: is rank r); exposed so tests can reach per-replica state
        #: (version traces, worker pids) directly
        self.replica_runners: list[ProcessPipelineRunner] = []
        for r in range(self.replicas):
            rep = ProcessPipelineRunner(
                model_factory(),
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
                mitigation=mitigation,
                mode=mode,
                update_size=update_size,
                micro_batch_size=micro_batch_size,
                lr_schedule=None,  # evaluated once at the master barrier
                record_versions=record_versions,
                lockstep=lockstep,
                jitter=jitter,
                jitter_seed=jitter_seed * 1_000_003 + r,
                stall_timeout=stall_timeout,
                model_factory=model_factory,
                start_method=start_method,
                ring_slack=ring_slack,
                max_restarts=0,  # recovery is coordinated at this level
                precision=precision,
                lockstep_ack_interval=lockstep_ack_interval,
            )
            if rep.num_stages != self.num_stages:
                raise ValueError(
                    "model_factory builds a "
                    f"{rep.num_stages}-stage model but the master model "
                    f"has {self.num_stages} stages"
                )
            self.replica_runners.append(rep)
        self.start_method = self.replica_runners[0].start_method
        #: live-progress bases: master samples_completed only advances at
        #: the merge barrier, so mid-drive progress is the sum of the
        #: replicas' advances over these per-attempt baselines
        self._progress_bases: list[int] | None = None

    _infer_backend = "process"

    def _infer_stream_kwargs(self) -> dict:
        return {
            "model_factory": self.model_factory,
            "start_method": self.start_method,
        }

    @property
    def samples_completed(self) -> int:
        done = self._executor.samples_completed
        bases = self._progress_bases
        if bases is not None:
            done += sum(
                rep.samples_completed - base
                for rep, base in zip(self.replica_runners, bases)
            )
        return done

    # -- public entry -------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Shard the batch across the replicas and train them to the
        drain barrier (reducing per update for synchronous schedules,
        merging weight deltas at the end for asynchronous ones)."""
        X = np.ascontiguousarray(self._executor.precision.cast_array(X))
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        n = X.shape[0]
        self.schedule.reset(n)
        if n == 0:
            counters = [
                StageRuntimeStats(index=s) for s in range(self.num_stages)
            ]
            runtime = RuntimeStats(
                mode=self.runtime_mode,
                schedule=self.schedule.name,
                num_stages=self.num_stages,
                wall_seconds=0.0,
                stages=counters,
                backend="process",
                replicas=self.replicas,
            )
            return self._finish_stats(np.zeros(0), 0, counters, runtime)
        if self.lr_schedule is not None:
            # once per train() call, at its entry drain barrier (see the
            # class docstring's contract deviations)
            self._executor.set_lr(
                float(self.lr_schedule(self._executor.samples_completed))
            )
        snapshot = (
            self._executor.state_dict() if self.max_restarts > 0 else None
        )
        attempt = 0
        while True:
            try:
                return self._train_attempt(X, Y, n)
            except PipelineRuntimeError:
                if snapshot is None or attempt >= self.max_restarts:
                    raise
                attempt += 1
                self.restarts_used += 1
                self._executor.load_state_dict(snapshot)
                self.schedule.reset(n)

    # -- one attempt --------------------------------------------------------

    def _train_attempt(
        self, X: np.ndarray, Y: np.ndarray, n: int
    ) -> PipelineRunStats:
        R = self.replicas
        block = self._block
        shards = [shard_positions(n, r, R, block=block) for r in range(R)]
        # global batches in this stream; shards that hold no samples of
        # the final (or only) batch still join its reduce with an empty
        # contribution so the chains stay aligned
        if self._sync:
            global_batch = R * block
            rounds = -(-n // global_batch)
            missing = [
                rounds - (-(-int(pos.size) // block)) for pos in shards
            ]
        else:
            missing = [0] * R
        # ship the master's drain-barrier state into every replica
        master_states = [st.state_dict() for st in self.stages]
        for rep in self.replica_runners:
            for stage, st in zip(rep.stages, master_states):
                stage.load_state_dict(st)
        reduce_rings: list[ShmRing] = []
        if self._sync:
            chain, result = build_reduce_rings(self.stages, R, slots=2)
            reduce_rings = [r for per in chain for r in per]
            reduce_rings += [r for per in result for r in per]
            for r, rep in enumerate(self.replica_runners):
                rep._reduce_plan = [
                    _ReduceSpec(
                        rank=r,
                        world=R,
                        chain_in=chain[s][r - 1] if r > 0 else None,
                        chain_out=chain[s][r] if r < R - 1 else None,
                        result_in=result[s][r] if r < R - 1 else None,
                        result_out=result[s][r - 1] if r > 0 else None,
                    )
                    for s in range(self.num_stages)
                ]
        else:
            for rep in self.replica_runners:
                rep._reduce_plan = None
        part_stats: list[PipelineRunStats | None] = [None] * R
        errors: list[tuple[int, BaseException]] = []
        self._progress_bases = [
            rep.samples_completed for rep in self.replica_runners
        ]

        def drive(r: int) -> None:
            rep = self.replica_runners[r]
            pos = shards[r]
            try:
                part_stats[r] = self._drive_replica(
                    rep,
                    np.ascontiguousarray(X[pos]),
                    Y[pos],
                    missing[r],
                )
            except BaseException as exc:
                errors.append((r, exc))

        threads = [
            threading.Thread(
                target=drive, args=(r,), name=f"replica-driver-{r}",
                daemon=True,
            )
            for r in range(R)
        ]
        try:
            for t in threads:
                t.start()
            aborted = False
            while any(t.is_alive() for t in threads):
                if not errors and not aborted:
                    # cross-replica liveness watchdog: a replica's own
                    # drive can miss its worker's death window (e.g.
                    # the kill lands between drive phases), leaving the
                    # *other* replicas blocked in a reduce until their
                    # stall timeout.  The group monitor scans every
                    # replica's workers so any abnormal exit fails the
                    # whole group promptly.
                    for r, rep in enumerate(self.replica_runners):
                        dead = rep._find_dead_worker()
                        if dead is not None:
                            errors.append((
                                r,
                                PipelineRuntimeError(
                                    dead,
                                    RuntimeError(
                                        f"replica {r} stage {dead} worker "
                                        "process died (exitcode="
                                        f"{rep._procs[dead].exitcode})"
                                    ),
                                ),
                            ))
                            break
                if errors and not aborted:
                    # one replica failed: abort the others so their
                    # workers exit instead of stalling in a reduce no
                    # peer will ever join
                    aborted = True
                    for rep in self.replica_runners:
                        if rep._abort is not None:
                            rep._abort.set()
                for t in threads:
                    t.join(0.05)
        finally:
            for t in threads:
                t.join()
            for ring in reduce_rings:
                ring.close()
                ring.unlink()
            self._progress_bases = None
        if errors:
            for _, exc in errors:
                if isinstance(exc, PipelineRuntimeError):
                    raise exc
            raise errors[0][1]
        self._merge_replicas(master_states)
        losses = np.zeros(n)
        for pos, part in zip(shards, part_stats):
            if pos.size:
                losses[pos] = part.losses
        self._executor.samples_completed += n
        runtime = RuntimeStats.merge_replicas(
            [part.runtime for part in part_stats]
        )
        self.last_runtime_stats = runtime
        return PipelineRunStats.merge_replicas(
            part_stats,
            losses,
            updates_per_stage=[st.updates_applied for st in self.stages],
            runtime=runtime,
        )

    def _drive_replica(
        self,
        rep: ProcessPipelineRunner,
        Xr: np.ndarray,
        Yr: np.ndarray,
        missing: int,
    ) -> PipelineRunStats:
        """One replica's launch/drive/finalize cycle (its driver thread).

        Mirrors :meth:`ProcessPipelineRunner._train_attempt`, with two
        replication extras: workers are launched even for an empty shard
        (they must join the reduce), and ``missing`` zero-contribution
        flushes follow the drive so this replica participates in global
        batches its shard holds no samples of.
        """
        n_r = int(Xr.shape[0])
        losses_r = np.zeros(n_r)
        counters = [
            StageRuntimeStats(index=s) for s in range(rep.num_stages)
        ]
        time_steps = 0
        wall = 0.0
        failed = True
        try:
            rep.schedule.reset(n_r)
            rep.completion_order = []
            rep._launch(Xr, Yr)
            t0 = time.perf_counter()
            if n_r:
                if rep.lockstep:
                    time_steps = rep._drive_lockstep(Xr, n_r)
                else:
                    time_steps = rep._drive_free(Xr, n_r)
            for _ in range(missing):
                rep._broadcast(("flush", 0))
                if not rep.lockstep:
                    for s in range(rep.num_stages):
                        msg = rep._recv(s)
                        if msg[0] != "flushed":  # pragma: no cover
                            raise RuntimeError(
                                f"stage {s}: expected flush ack, got "
                                f"{msg[0]!r}"
                            )
            wall = time.perf_counter() - t0
            rep._finalize_workers(losses_r, counters)
            failed = False
        finally:
            rep._teardown(failed)
            rep._reduce_plan = None
        runtime = RuntimeStats(
            mode=rep.runtime_mode,
            schedule=rep.schedule.name,
            num_stages=rep.num_stages,
            wall_seconds=wall,
            stages=counters,
            backend="process",
        )
        check_stages_drained(rep.stages)
        return rep._finish_stats(losses_r, time_steps, counters, runtime)

    # -- merging ------------------------------------------------------------

    def _merge_replicas(self, master_states: list[dict]) -> None:
        """Fold the replicas' post-drive state into the master stages."""
        if self._sync:
            # the reduce already synchronized every update, so the
            # replicas must agree bit for bit; adopt rank 0 after
            # checking that invariant (a mismatch means the reduce plane
            # is broken — fail loudly, never average it away)
            ref_states = [
                st.state_dict() for st in self.replica_runners[0].stages
            ]
            for r, rep in enumerate(self.replica_runners[1:], start=1):
                for s, (stage, ref) in enumerate(
                    zip(rep.stages, ref_states)
                ):
                    st = stage.state_dict()
                    same = st["updates_applied"] == ref["updates_applied"]
                    for key in ("params", "velocity", "prev_weights"):
                        same = same and all(
                            a.tobytes() == b.tobytes()
                            for a, b in zip(st[key], ref[key])
                        )
                    if not same:
                        raise RuntimeError(
                            f"replica {r} diverged from replica 0 at "
                            f"stage {s} despite synchronized updates — "
                            "reduce plane violated its contract"
                        )
            for stage, st in zip(self.stages, ref_states):
                stage.load_state_dict(st)
            return
        # asynchronous schedules: average per-replica weight deltas
        # against the shipped base state (rank-order fold, deterministic)
        R = self.replicas
        for stage, base in zip(self.stages, master_states):
            per_rep = [
                rep.stages[stage.index].state_dict()
                for rep in self.replica_runners
            ]
            merged: dict = {
                "lr": base["lr"],
                "updates_applied": base["updates_applied"]
                + sum(
                    p["updates_applied"] - base["updates_applied"]
                    for p in per_rep
                ),
            }
            for key in ("params", "velocity", "prev_weights"):
                arrays = []
                for k in range(len(base[key])):
                    acc = per_rep[0][key][k] - base[key][k]
                    for p in per_rep[1:]:
                        acc = acc + (p[key][k] - base[key][k])
                    arrays.append(base[key][k] + acc / R)
                merged[key] = arrays
            stage.load_state_dict(merged)


def make_pipeline_engine(
    runtime: str,
    model: StageGraphModel,
    lr: float,
    lockstep: bool = False,
    **kwargs: Any,
) -> PipelineExecutor | ConcurrentPipelineRunner | ProcessPipelineRunner:
    """Build the requested pipeline engine behind one switch.

    ``runtime="sim"`` returns the discrete-time :class:`PipelineExecutor`;
    ``runtime="threaded"`` a :class:`ConcurrentPipelineRunner` (one worker
    thread per stage); ``runtime="process"`` a
    :class:`ProcessPipelineRunner` (one worker process per stage,
    shared-memory transport).  ``replicas=R`` with ``R > 1`` (process
    runtime only) returns a :class:`ReplicatedPipelineRunner`: R
    data-parallel pipeline copies with cross-replica gradient reduction
    at update barriers.  The concurrent engines are free-running unless
    ``lockstep=True``.  All engines expose the same
    ``train``/``samples_completed``/``set_lr`` surface, so callers like
    :class:`~repro.train.pb_trainer.PipelinedTrainer` switch engines
    without touching their training loops.
    """
    replicas = int(kwargs.pop("replicas", 1) or 1)
    if replicas > 1:
        if runtime != "process":
            raise ValueError(
                f"replicas={replicas} requires runtime='process' (the "
                "replicated runner is built on the process pipeline), "
                f"got runtime={runtime!r}"
            )
        return ReplicatedPipelineRunner(
            model, lr, lockstep=lockstep, replicas=replicas, **kwargs
        )
    if runtime == "sim":
        return PipelineExecutor(model, lr, **kwargs)
    if runtime == "threaded":
        return ConcurrentPipelineRunner(model, lr, lockstep=lockstep, **kwargs)
    if runtime == "process":
        return ProcessPipelineRunner(model, lr, lockstep=lockstep, **kwargs)
    raise ValueError(
        f"runtime must be 'sim', 'threaded' or 'process', got {runtime!r}"
    )
