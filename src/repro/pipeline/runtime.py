"""Concurrent multi-worker pipeline runtime (wall-clock counterpart of
:class:`~repro.pipeline.executor.PipelineExecutor`).

The executor is a discrete-time *simulation*: one Python loop plays every
stage's forward and backward sweep sequentially, so its utilization
numbers are modeled, never measured.  This module executes the same
pipeline the way PipeDream (Harlap et al. 2018) and torchgpipe (Kim et
al. 2020) actually run one: **one worker thread per stage**, packets
moving through per-stage inbound queues, each stage transforming a
``(B, ...)`` micro-batch the moment it has one.  The
:class:`~repro.pipeline.schedule.Schedule` protocol is reused unchanged —
injection gating, per-gradient vs averaged updates and weight stashing
are the schedule's decisions in both engines.

Mapping onto PipeDream's worker model
-------------------------------------

PipeDream structures pipeline-parallel training as per-stage workers
that (1) pull activations from an inbound forward queue, (2) pull
gradients from an inbound backward queue, (3) prefer backward work so
the pipeline drains, and (4) bound the number of in-flight mini-batches
per stage so weight staleness — and activation-stash memory — stay
bounded.  :class:`ConcurrentPipelineRunner` reproduces exactly that
shape:

* each :class:`~repro.pipeline.stage.PipelineStage` gets one worker
  thread and one :class:`_Channel` (a forward deque + a backward deque
  guarded by one condition variable);
* workers give **backward priority**: an arrived gradient is always
  processed before the next activation, which is PipeDream's drain rule
  and this runtime's deadlock-freedom argument (the oldest in-flight
  packet can always make progress because backward work is never gated);
* each stage admits a new forward only while fewer than
  ``D_s + 1 = 2(S-1-s) + 1`` packets are between their forward and
  backward at that stage.  This is PipeDream's in-flight bound; here it
  additionally guarantees the paper's eq. 5 *as an inequality*: the
  forward pass of sample ``i`` at stage ``s`` sees **at least**
  ``max(0, i - 2(S-1-s))`` updates applied (never staler than the
  discrete-time model), and trivially at most ``i``.

Two execution modes
-------------------

**lockstep** (``lockstep=True``, the default) inserts a barrier per
simulated time step: the coordinator scatters at most one forward and
one backward packet to every worker, waits for all of them, then runs
the schedule's batch-boundary hook — the exact control flow of
``PipelineExecutor._run`` with the per-stage work done concurrently.
Because no two stages share mutable state within a step (packets
produced in step ``t`` are consumed in ``t+1``; each stage's own
forward-before-backward order is preserved inside its worker), a
lockstep run is **bit-exact** with the simulator for every schedule —
the testable contract pinned by ``tests/test_runtime_parity.py``.

**free-running** (``lockstep=False``) drops the barrier: stages proceed
as soon as a packet arrives, which is the paper's actual claim — fine-
grained pipelining keeps all stages busy in *wall-clock* time.  Losses
and final weights are no longer bit-reproducible for the asynchronous
schedules (``pb``/``1f1b``), because how far a gradient has travelled
when a forward happens now depends on thread timing; what *is*
guaranteed is the eq.-5 staleness ceiling above, packet FIFO ordering
per stage, and exact schedule semantics for the synchronous schedules'
updates (``fill_drain``/``gpipe`` still flush the averaged update only
once the batch has fully drained, so their per-update math is unchanged;
only the loss *values* recorded while a batch is in flight can differ
for schedules that update mid-stream).

Every run produces a :class:`RuntimeStats` with measured per-stage
busy/idle wall-clock time and per-stage op counts; the op counts equal
the modeled occupancy-grid totals of :mod:`repro.pipeline.occupancy`
row by row (property-tested), tying the measured runtime back to the
paper's timing model.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.models.arch import StageGraphModel
from repro.pipeline.executor import (
    PipelineExecutor,
    PipelineRunStats,
    _Packet,
    check_stages_drained,
    softmax_xent_grad_batch,
)
from repro.pipeline.schedule import Schedule, ScheduleState

#: Seconds any single coordinator wait may block before the run is
#: declared stalled.  Generous for real work, small enough that a
#: deadlocked test fails loudly instead of hanging CI.
DEFAULT_STALL_TIMEOUT = 60.0

_STOP = object()  # lockstep command-queue sentinel


class PipelineRuntimeError(RuntimeError):
    """A worker thread died; carries the stage index and original error."""

    def __init__(self, stage_index: int, cause: BaseException):
        super().__init__(
            f"pipeline stage {stage_index} worker failed: {cause!r}"
        )
        self.stage_index = stage_index
        self.cause = cause


@dataclass
class StageRuntimeStats:
    """Measured per-stage activity of one threaded run."""

    index: int
    forward_ops: int = 0
    backward_ops: int = 0
    forward_samples: int = 0
    backward_samples: int = 0
    busy_seconds: float = 0.0

    @property
    def busy_steps(self) -> int:
        """Slot occupancy: one per packet transformation, the measured
        counterpart of one non-idle cell in an occupancy grid row."""
        return self.forward_ops + self.backward_ops


@dataclass
class RuntimeStats:
    """Wall-clock outcome of one :class:`ConcurrentPipelineRunner` run.

    ``wall_seconds`` spans first injection to last completion; each
    stage's ``busy_seconds`` sums its time inside forward/backward
    transformations, so ``idle_seconds(s)`` is measured (not modeled)
    pipeline bubble time.
    """

    mode: str  # "lockstep" | "free_running"
    schedule: str
    num_stages: int
    wall_seconds: float = 0.0
    stages: list[StageRuntimeStats] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        return sum(st.busy_seconds for st in self.stages)

    def busy_fraction(self, stage_index: int) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.stages[stage_index].busy_seconds / self.wall_seconds

    def idle_seconds(self, stage_index: int) -> float:
        return max(
            0.0, self.wall_seconds - self.stages[stage_index].busy_seconds
        )

    @property
    def mean_busy_fraction(self) -> float:
        if not self.stages:
            return 0.0
        return sum(
            self.busy_fraction(s.index) for s in self.stages
        ) / len(self.stages)

    def summary_rows(self) -> list[dict]:
        """One row per stage, ready for ``format_table``."""
        return [
            {
                "stage": st.index,
                "fwd_ops": st.forward_ops,
                "bwd_ops": st.backward_ops,
                "busy_s": round(st.busy_seconds, 6),
                "busy_frac": round(self.busy_fraction(st.index), 4),
            }
            for st in self.stages
        ]


@dataclass
class _WorkerFailure:
    """Posted to the completion queue when a worker dies."""

    stage_index: int
    error: BaseException


class _Channel:
    """A stage's inbound mailbox: forward + backward deques, one lock.

    Backward packets are kept separate from forward packets so the
    worker can give them priority without scanning a mixed queue.
    """

    __slots__ = ("cond", "fwd", "bwd", "closed")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.fwd: deque[_Packet] = deque()
        self.bwd: deque[_Packet] = deque()
        self.closed = False

    def put_fwd(self, pkt: _Packet) -> None:
        with self.cond:
            self.fwd.append(pkt)
            self.cond.notify_all()

    def put_bwd(self, pkt: _Packet) -> None:
        with self.cond:
            self.bwd.append(pkt)
            self.cond.notify_all()

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class _SimpleQueue:
    """Tiny blocking FIFO (threading.Condition based).

    ``queue.SimpleQueue`` would do; this variant exists so the stress
    tests can reason about exactly one synchronization primitive and so
    ``get`` can raise a stall error with context instead of ``Empty``.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._items: deque = deque()

    def put(self, item) -> None:
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def get(self, timeout: float, what: str):
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._items:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise RuntimeError(
                        f"pipeline runtime stalled waiting for {what} "
                        f"({timeout:.1f}s) — likely deadlock or a dead "
                        "worker"
                    )
                self._cond.wait(remaining)
            return self._items.popleft()


class ConcurrentPipelineRunner:
    """Execute a :class:`StageGraphModel` pipeline with one worker thread
    per stage (see module docstring for the design).

    The constructor mirrors :class:`PipelineExecutor` (it builds one
    internally, sharing stages, schedule and optimizer state), plus:

    lockstep:
        ``True`` for the barrier-per-time-step mode that is bit-exact
        with the simulator; ``False`` (default, matching
        :func:`make_pipeline_engine`) for free-running.  The default is
        the performance mode — pass ``lockstep=True`` explicitly
        wherever reproducibility matters.
    jitter:
        Maximum per-op random sleep in seconds injected into every
        worker loop (0 disables).  Used by the concurrency stress tests
        to randomize thread interleavings; lockstep results must be —
        and are — unchanged under any jitter.
    jitter_seed:
        Seed for the per-worker jitter RNGs (deterministic schedule of
        sleeps, nondeterministic OS interleaving).
    stall_timeout:
        Seconds any coordinator wait may block before the run raises
        instead of hanging.
    """

    def __init__(
        self,
        model: StageGraphModel,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        mitigation: MitigationConfig | None = None,
        mode: str = "pb",
        update_size: int = 1,
        micro_batch_size: int = 1,
        lr_schedule: Callable[[int], float] | None = None,
        record_versions: bool = False,
        schedule: Schedule | None = None,
        lockstep: bool = False,
        jitter: float = 0.0,
        jitter_seed: int = 0,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
    ):
        self._executor = PipelineExecutor(
            model,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            mitigation=mitigation,
            mode=mode,
            update_size=update_size,
            micro_batch_size=micro_batch_size,
            lr_schedule=lr_schedule,
            record_versions=record_versions,
            schedule=schedule,
        )
        self.lockstep = bool(lockstep)
        self.jitter = float(jitter)
        self.jitter_seed = int(jitter_seed)
        self.stall_timeout = float(stall_timeout)
        self.last_runtime_stats: RuntimeStats | None = None
        self._threads: list[threading.Thread] = []

    # -- executor facade (keeps PipelinedTrainer/run_pb_executor happy) ----

    @property
    def model(self) -> StageGraphModel:
        return self._executor.model

    @property
    def stages(self):
        return self._executor.stages

    @property
    def schedule(self) -> Schedule:
        return self._executor.schedule

    @property
    def mode(self) -> str:
        return self._executor.mode

    @property
    def update_size(self) -> int:
        return self._executor.update_size

    @property
    def num_stages(self) -> int:
        return self._executor.num_stages

    @property
    def samples_completed(self) -> int:
        return self._executor.samples_completed

    @property
    def lr_schedule(self):
        return self._executor.lr_schedule

    def set_lr(self, lr: float) -> None:
        self._executor.set_lr(lr)

    def flush_stages(self, count: int) -> None:
        self._executor.flush_stages(count)

    @property
    def runtime_mode(self) -> str:
        return "lockstep" if self.lockstep else "free_running"

    # -- shared per-stage transformations ----------------------------------
    #
    # These mirror the simulator's forward/backward sweep bodies
    # (executor._run): loss-stage seeding, update_after_backward, and the
    # op/sample accounting must stay in sync with it.  The bit-exact
    # parity goldens (tests/test_runtime_parity.py) pin that equivalence —
    # any unsynced change to either engine fails them at hex level.

    def _do_forward(
        self,
        s: int,
        pkt: _Packet,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> tuple[_Packet | None, _Packet | None]:
        """One forward transformation at stage ``s``.

        Returns ``(downstream_fwd, seeded_bwd)``; the loss stage
        produces the seeded backward packet (consumed the same step,
        exactly as the simulator seeds ``bwd_in`` during its forward
        sweep), every other stage produces the downstream forward.
        """
        stage = self.stages[s]
        if stage.spec.kind == "loss":
            lvec, glogits = softmax_xent_grad_batch(
                pkt.payload[0], Y[pkt.start : pkt.start + pkt.size]
            )
            losses[pkt.start : pkt.start + pkt.size] = lvec
            counters.forward_ops += 1
            counters.forward_samples += pkt.size
            return None, _Packet(pkt.pid, pkt.start, pkt.size, [glogits])
        out = stage.forward(pkt.pid, pkt.payload)
        counters.forward_ops += 1
        counters.forward_samples += pkt.size
        return _Packet(pkt.pid, pkt.start, pkt.size, out), None

    def _do_backward(
        self, s: int, pkt: _Packet, counters: StageRuntimeStats
    ) -> tuple[_Packet | None, int]:
        """One backward transformation at stage ``s``.

        Returns ``(upstream_bwd, completed_samples)``; only stage 0
        reports completions.
        """
        stage = self.stages[s]
        upstream = stage.backward(pkt.pid, pkt.payload)
        if self.schedule.update_after_backward(s):
            stage.apply_update()
        counters.backward_ops += 1
        counters.backward_samples += pkt.size
        if s > 0:
            return _Packet(pkt.pid, pkt.start, pkt.size, upstream), 0
        return None, pkt.size

    def _jitter_rng(self, s: int) -> np.random.Generator | None:
        if self.jitter <= 0.0:
            return None
        return np.random.default_rng(
            (self.jitter_seed * 1_000_003 + s) & 0xFFFFFFFF
        )

    # -- public entry -------------------------------------------------------

    def train(self, X: np.ndarray, Y: Sequence[int]) -> PipelineRunStats:
        """Stream all samples through the threaded pipeline (training)."""
        X = np.asarray(X)
        Y = np.asarray(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y length mismatch")
        self.schedule.reset(X.shape[0])
        if self.lockstep:
            stats = self._run_lockstep(X, Y)
        else:
            stats = self._run_free(X, Y)
        check_stages_drained(self.stages)
        return stats

    def _finish_stats(
        self,
        losses: np.ndarray,
        time_steps: int,
        counters: list[StageRuntimeStats],
        runtime: RuntimeStats,
    ) -> PipelineRunStats:
        self.last_runtime_stats = runtime
        return PipelineRunStats(
            losses=losses,
            time_steps=time_steps,
            forward_ops=sum(c.forward_ops for c in counters),
            backward_ops=sum(c.backward_ops for c in counters),
            num_stages=self.num_stages,
            samples=losses.shape[0],
            updates_per_stage=[st.updates_applied for st in self.stages],
            forward_samples=sum(c.forward_samples for c in counters),
            backward_samples=sum(c.backward_samples for c in counters),
            micro_batch=self.schedule.micro_batch,
            schedule=self.schedule.name,
            runtime=runtime,
        )

    # -- lockstep mode -------------------------------------------------------

    def _run_lockstep(self, X: np.ndarray, Y: np.ndarray) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        losses = np.zeros(n)
        counters = [StageRuntimeStats(index=s) for s in range(S)]
        cmd_qs = [_SimpleQueue() for _ in range(S)]
        res_q = _SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._lockstep_worker,
                args=(s, cmd_qs[s], res_q, Y, losses, counters[s]),
                name=f"pipeline-stage-{s}",
                daemon=True,
            )
            for s in range(S)
        ]
        for t in self._threads:
            t.start()

        fwd_in: dict[int, _Packet] = {}
        bwd_in: dict[int, _Packet] = {}
        t0 = time.perf_counter()
        try:
            while state.next_sample < n or fwd_in or bwd_in:
                # inject one new packet if the first stage is free (the
                # simulator's gate, kept verbatim)
                if state.next_sample < n and 0 not in fwd_in:
                    size = min(
                        sched.inject_size(state), n - state.next_sample
                    )
                    if size > 0:
                        i = state.next_sample
                        fwd_in[0] = _Packet(i, i, size, [X[i : i + size]])
                        state.next_sample += size

                # scatter: every worker steps once, concurrently
                for s in range(S):
                    cmd_qs[s].put(
                        ("step", fwd_in.pop(s, None), bwd_in.pop(s, None))
                    )
                # gather: the barrier — collect all S results
                failure: _WorkerFailure | None = None
                new_fwd: dict[int, _Packet] = {}
                new_bwd: dict[int, _Packet] = {}
                completed = 0
                for _ in range(S):
                    item = res_q.get(self.stall_timeout, "a lockstep step")
                    if isinstance(item, _WorkerFailure):
                        failure = failure or item
                        continue
                    s, fwd_out, bwd_out, done = item
                    if fwd_out is not None:
                        new_fwd[s + 1] = fwd_out
                    if bwd_out is not None:
                        new_bwd[s - 1] = bwd_out
                    completed += done
                if failure is not None:
                    raise PipelineRuntimeError(
                        failure.stage_index, failure.error
                    ) from failure.error
                state.completed += completed
                self._executor.samples_completed += completed
                fwd_in, bwd_in = new_fwd, new_bwd
                state.step += 1

                # batch boundaries + LR schedule run at the barrier, so
                # every stage sees them atomically (as in the simulator)
                sched.end_step(self._executor, state)
                if self.lr_schedule is not None:
                    self.set_lr(
                        self.lr_schedule(self._executor.samples_completed)
                    )
        finally:
            for q in cmd_qs:
                q.put(_STOP)
            self._join_workers()

        runtime = RuntimeStats(
            mode="lockstep",
            schedule=sched.name,
            num_stages=S,
            wall_seconds=time.perf_counter() - t0,
            stages=counters,
        )
        return self._finish_stats(losses, state.step, counters, runtime)

    def _lockstep_worker(
        self,
        s: int,
        cmd_q: _SimpleQueue,
        res_q: _SimpleQueue,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> None:
        rng = self._jitter_rng(s)
        while True:
            cmd = cmd_q.get(self.stall_timeout * 10, f"stage {s} command")
            if cmd is _STOP:
                return
            _, fwd_pkt, bwd_pkt = cmd
            try:
                if rng is not None:
                    time.sleep(rng.uniform(0.0, self.jitter))
                t0 = time.perf_counter()
                fwd_out = None
                completed = 0
                # forward before backward inside one step, exactly as the
                # simulator's forward sweep precedes its backward sweep
                if fwd_pkt is not None:
                    fwd_out, seeded = self._do_forward(
                        s, fwd_pkt, Y, losses, counters
                    )
                    if seeded is not None:
                        # the loss stage consumes its own seed this step
                        bwd_pkt = seeded
                bwd_out = None
                if bwd_pkt is not None:
                    bwd_out, completed = self._do_backward(
                        s, bwd_pkt, counters
                    )
                counters.busy_seconds += time.perf_counter() - t0
                res_q.put((s, fwd_out, bwd_out, completed))
            except BaseException as exc:  # propagate, never hang the barrier
                res_q.put(_WorkerFailure(s, exc))

    # -- free-running mode ---------------------------------------------------

    def _run_free(self, X: np.ndarray, Y: np.ndarray) -> PipelineRunStats:
        n = X.shape[0]
        S = self.num_stages
        sched = self.schedule
        state = ScheduleState(num_samples=n)
        losses = np.zeros(n)
        counters = [StageRuntimeStats(index=s) for s in range(S)]
        channels = [_Channel() for _ in range(S)]
        completion_q = _SimpleQueue()
        abort = threading.Event()
        #: completion order invariant: stage-0 backwards arrive FIFO
        self.completion_order: list[int] = []

        self._threads = [
            threading.Thread(
                target=self._free_worker,
                args=(s, channels, completion_q, abort, Y, losses,
                      counters[s]),
                name=f"pipeline-stage-{s}",
                daemon=True,
            )
            for s in range(S)
        ]
        t0 = time.perf_counter()
        for t in self._threads:
            t.start()

        try:
            while state.completed < n:
                # inject every packet the schedule currently allows; the
                # per-stage in-flight caps provide the backpressure
                while state.next_sample < n:
                    size = min(
                        sched.inject_size(state), n - state.next_sample
                    )
                    if size <= 0:
                        break
                    i = state.next_sample
                    channels[0].put_fwd(
                        _Packet(i, i, size, [X[i : i + size]])
                    )
                    state.next_sample += size

                item = completion_q.get(self.stall_timeout, "a completion")
                if isinstance(item, _WorkerFailure):
                    raise PipelineRuntimeError(
                        item.stage_index, item.error
                    ) from item.error
                start, size = item
                self.completion_order.append(start)
                state.completed += size
                self._executor.samples_completed += size
                # batch boundaries: when a synchronous schedule's batch has
                # fully drained, every worker is idle (stage 0's backward is
                # globally last), so flushing from here is race-free
                sched.end_step(self._executor, state)
                if self.lr_schedule is not None:
                    self.set_lr(
                        self.lr_schedule(self._executor.samples_completed)
                    )
        except BaseException:
            abort.set()
            raise
        finally:
            for ch in channels:
                ch.close()
            self._join_workers()

        runtime = RuntimeStats(
            mode="free_running",
            schedule=sched.name,
            num_stages=S,
            wall_seconds=time.perf_counter() - t0,
            stages=counters,
        )
        # free-running has no global clock; report the modeled span (what
        # lockstep/sim would take) so utilization stays comparable
        time_steps = sched.drain_span(n, S) if n else 0
        return self._finish_stats(losses, time_steps, counters, runtime)

    def _free_worker(
        self,
        s: int,
        channels: list[_Channel],
        completion_q: _SimpleQueue,
        abort: threading.Event,
        Y: np.ndarray,
        losses: np.ndarray,
        counters: StageRuntimeStats,
    ) -> None:
        stage = self.stages[s]
        ch = channels[s]
        rng = self._jitter_rng(s)
        # PipeDream in-flight bound: at most D_s + 1 packets between their
        # forward and backward here.  This is what turns eq. 5 into a
        # guaranteed staleness ceiling (see module docstring).
        cap = stage.delay + 1
        in_flight = 0
        while True:
            with ch.cond:
                item = None
                while item is None:
                    if abort.is_set():
                        return
                    if ch.bwd:  # backward priority: drain first
                        item = ("bwd", ch.bwd.popleft())
                    elif ch.fwd and in_flight < cap:
                        item = ("fwd", ch.fwd.popleft())
                    elif ch.closed and not ch.fwd and not ch.bwd:
                        return
                    else:
                        ch.cond.wait(0.05)  # re-check abort periodically
            kind, pkt = item
            try:
                if rng is not None:
                    time.sleep(rng.uniform(0.0, self.jitter))
                t0 = time.perf_counter()
                if kind == "fwd":
                    fwd_out, seeded = self._do_forward(
                        s, pkt, Y, losses, counters
                    )
                    if fwd_out is not None:
                        in_flight += 1
                        channels[s + 1].put_fwd(fwd_out)
                    elif seeded is not None:
                        # loss stage: forward seeds its own backward and
                        # processes it immediately (same-step semantics)
                        bwd_out, completed = self._do_backward(
                            s, seeded, counters
                        )
                        if bwd_out is not None:
                            channels[s - 1].put_bwd(bwd_out)
                        if completed:
                            completion_q.put((pkt.start, completed))
                else:
                    bwd_out, completed = self._do_backward(s, pkt, counters)
                    in_flight -= 1
                    if bwd_out is not None:
                        channels[s - 1].put_bwd(bwd_out)
                    if completed:
                        completion_q.put((pkt.start, completed))
                counters.busy_seconds += time.perf_counter() - t0
            except BaseException as exc:
                abort.set()
                completion_q.put(_WorkerFailure(s, exc))
                for other in channels:
                    with other.cond:
                        other.cond.notify_all()
                return

    # -- shutdown -------------------------------------------------------------

    def _join_workers(self) -> None:
        deadline = time.monotonic() + self.stall_timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        alive = [t.name for t in self._threads if t.is_alive()]
        self._threads = []
        if alive and sys.exc_info()[0] is None:
            # only complain when no richer error (worker failure, stall)
            # is already propagating — never mask the root cause.  A
            # straggler is a daemon that will exit once its in-flight op
            # returns and it observes the abort/closed flags.
            raise RuntimeError(
                f"pipeline workers failed to shut down: {alive}"
            )


def make_pipeline_engine(
    runtime: str,
    model: StageGraphModel,
    lr: float,
    lockstep: bool = False,
    **kwargs: Any,
) -> PipelineExecutor | ConcurrentPipelineRunner:
    """Build the requested pipeline engine behind one switch.

    ``runtime="sim"`` returns the discrete-time :class:`PipelineExecutor`;
    ``runtime="threaded"`` returns a :class:`ConcurrentPipelineRunner`
    (free-running unless ``lockstep=True``).  Both expose the same
    ``train``/``samples_completed``/``set_lr`` surface, so callers like
    :class:`~repro.train.pb_trainer.PipelinedTrainer` switch engines
    without touching their training loops.
    """
    if runtime == "sim":
        return PipelineExecutor(model, lr, **kwargs)
    if runtime == "threaded":
        return ConcurrentPipelineRunner(model, lr, lockstep=lockstep, **kwargs)
    raise ValueError(
        f"runtime must be 'sim' or 'threaded', got {runtime!r}"
    )
