"""The pipeline delay law and its projection to flat delay profiles.

With ``S`` stages, one forward and one backward transformation per stage
per time step, and update size one, stage ``s``'s gradient is computed from
weights that are ``D_s = 2(S-1-s)`` updates old (paper §2, eq. 5).  The
last stage has zero delay; the first has the maximum ``2(S-1)``.

:func:`pipeline_delay_profile` maps those per-stage delays onto a
:class:`~repro.core.staleness.PerParamDelay` so the flat Appendix-G.2
simulator can emulate a pipeline run at batch size ``B`` — the delay in
optimizer steps is then ``round(D_s / B)`` (the paper's Appendix E/F
experiments quote delays in "samples" for exactly this reason).
"""

from __future__ import annotations

from repro.core.staleness import PerParamDelay
from repro.models.arch import StageGraphModel


def stage_delay(index: int, num_stages: int) -> int:
    """Gradient delay (in updates at update-size one) of stage ``index``."""
    if not 0 <= index < num_stages:
        raise ValueError(f"stage index {index} out of range [0, {num_stages})")
    return 2 * (num_stages - 1 - index)


def max_pipeline_delay(model: StageGraphModel) -> int:
    """The first stage's delay, ``2(S-1)``."""
    return stage_delay(0, model.num_stages)


def pipeline_delay_profile(
    model: StageGraphModel, sim_batch_size: int = 1
) -> PerParamDelay:
    """Per-parameter delay profile emulating the model's pipeline.

    ``sim_batch_size`` converts sample-delays to optimizer-step delays when
    the flat simulator trains with batches (delay in steps =
    ``round(D_s / B)``).
    """
    sample_delays = {
        pid: stage_delay(s, model.num_stages)
        for pid, s in model.param_stage_index().items()
    }
    return PerParamDelay.from_sample_delays(sample_delays, sim_batch_size)


def stage_delay_table(model: StageGraphModel) -> list[dict]:
    """Row per stage: index, name, kind, delay, parameter count."""
    s_count = model.num_stages
    rows = []
    for i, st in enumerate(model.stage_defs):
        rows.append(
            {
                "stage": i,
                "name": st.name,
                "kind": st.kind,
                "delay": stage_delay(i, s_count),
                "params": sum(p.size for p in st.module.parameters())
                if st.module
                else 0,
            }
        )
    return rows
