"""Global configuration for the repro package.

Only two knobs live here; everything else is explicit function arguments.

``DEFAULT_DTYPE``
    dtype used for parameters and tensors created from Python scalars/lists.
    ``float64`` by default: the reproduction favours analysis-grade numerics
    (exact-equivalence tests between optimizers and the pipeline executor)
    over raw speed.  Benches that want speed can pass ``dtype=np.float32``
    explicitly.

``bench_scale()``
    Reads the ``REPRO_SCALE`` environment variable, used by the benchmark
    harness to pick between fast (``"bench"``, default) and full
    (``"paper"``) experiment sizes.
"""

from __future__ import annotations

import os

import numpy as np

DEFAULT_DTYPE = np.float64

#: Valid values for the REPRO_SCALE environment variable.
SCALES = ("bench", "paper")


def bench_scale() -> str:
    """Return the experiment scale requested via ``REPRO_SCALE``.

    Returns ``"bench"`` (fast, minutes for the whole suite) unless the
    environment selects ``"paper"`` (full architectures / schedules).
    """
    scale = os.environ.get("REPRO_SCALE", "bench").strip().lower()
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {SCALES}, got {scale!r}"
        )
    return scale
