"""SGD with momentum in the paper's velocity form (eqs. 7-8).

    v_{t+1} = m * v_t + g_t
    w_{t+1} = w_t - lr * v_{t+1}

No dampening; optional decoupled-from-loss L2 weight decay folded into the
gradient (``g += wd * w``), matching the reference He et al. setup.  An
optional Nesterov variant (update ``m*v_{t+1} + g_t``) is included because
the paper's quadratic analysis compares against it — note Nesterov is
exactly generalized spike compensation with ``a=m, b=1``.

Mixed precision (``precision=`` + optional ``loss_scaler=``): with a
reduced-precision policy the optimizer keeps **float64 master copies**
of every parameter — the update runs in float64 against the masters and
the result is projected back onto the storage grid (float32 / bf16) the
parameters live on, so many small gradients don't vanish into float32
rounding.  A :class:`~repro.precision.scaler.LossScaler` adds dynamic
loss scaling: the caller scales the loss before backprop, ``step``
unscales the gradients, and a non-finite gradient **skips the step
entirely** — weights and velocity stay byte-identical for a skipped
update (pinned by a property test) while the scale backs off.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.precision.policy import PrecisionPolicy, resolve_precision
from repro.precision.scaler import LossScaler


class SGDM:
    """Momentum SGD over a list of parameters."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        precision: "PrecisionPolicy | str | None" = None,
        loss_scaler: LossScaler | None = None,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self.precision = resolve_precision(precision)
        if not self.precision.trainable:
            raise ValueError(
                f"precision mode {self.precision.mode!r} is serving-only "
                "and cannot drive an optimizer"
            )
        self.loss_scaler = loss_scaler
        #: float64 master copies, present only for reduced-precision
        #: modes; velocity lives in the master dtype alongside them
        self._master: dict[int, np.ndarray] | None = None
        if self.precision.master_weights:
            self._master = {
                id(p): p.data.astype(np.float64, copy=True)
                for p in self.params
            }
        master_src = self._master
        self._velocity: dict[int, np.ndarray] = {
            id(p): np.zeros_like(
                master_src[id(p)] if master_src is not None else p.data
            )
            for p in self.params
        }
        #: per-parameter scratch buffers so ``step`` allocates nothing on
        #: the hot path (lazily created, keyed by parameter and role)
        self._scratch: dict[tuple[int, str], np.ndarray] = {}

    def velocity(self, p: Parameter) -> np.ndarray:
        """The current velocity buffer for parameter ``p``."""
        return self._velocity[id(p)]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def _buf(self, p: Parameter, role: str) -> np.ndarray:
        key = (id(p), role)
        ref = (
            self._master[id(p)] if self._master is not None else p.data
        )
        buf = self._scratch.get(key)
        if buf is None or buf.shape != ref.shape or buf.dtype != ref.dtype:
            buf = self._scratch[key] = np.empty_like(ref)
        return buf

    def step(self) -> None:
        """Apply one update using accumulated ``.grad`` fields.

        Fully in place: velocity, the weight-decay fold and the weight
        update all write into preallocated buffers
        (``np.multiply/add/subtract(..., out=...)``), so the steady-state
        optimizer allocates nothing per step.  The operation order is the
        textbook one — ``g + wd*w``, then ``v = m*v + g``, then
        ``w -= lr*update`` — so results are bit-identical to the naive
        out-of-place form (pinned in ``tests/test_optim.py``).

        With a :class:`~repro.precision.scaler.LossScaler` the gradient
        finiteness check runs **before** anything is mutated, so an
        overflow step leaves weights and velocity bit-unchanged.
        """
        scaler = self.loss_scaler
        inv_scale = 1.0
        if scaler is not None:
            if scaler.found_overflow(p.grad for p in self.params):
                scaler.update(True)
                self.zero_grad()
                return
            # the grads in hand were produced under the *current* scale;
            # capture its inverse before update(False) can grow it on a
            # growth tick, else that step's update is divided by
            # growth_factor too much
            inv_scale = 1.0 / scaler.scale if scaler.scale != 0 else 1.0
            scaler.update(False)
        m = self.momentum
        masters = self._master
        for p in self.params:
            if p.grad is None:
                continue
            if masters is not None:
                w = masters[id(p)]
                g = p.grad.astype(np.float64)
                if scaler is not None:
                    g *= inv_scale
            else:
                w = p.data
                g = p.grad
                if scaler is not None:
                    g = g * inv_scale
            if self.weight_decay:
                g_eff = self._buf(p, "g")
                np.multiply(w, self.weight_decay, out=g_eff)
                np.add(g, g_eff, out=g_eff)  # g_eff = g + wd*w
            else:
                g_eff = g
            v = self._velocity[id(p)]
            np.multiply(v, m, out=v)
            np.add(v, g_eff, out=v)
            step_buf = self._buf(p, "u")
            if self.nesterov:
                np.multiply(v, m, out=step_buf)
                np.add(step_buf, g_eff, out=step_buf)  # m*v_{t+1} + g
                np.multiply(step_buf, self.lr, out=step_buf)
            else:
                np.multiply(v, self.lr, out=step_buf)
            np.subtract(w, step_buf, out=w)
            if masters is not None:
                # project the float64 master back onto the storage grid
                p.data = self.precision.quantize(w)

    def state_dict(self) -> dict:
        state = {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "precision": self.precision.mode,
            "velocity": [self._velocity[id(p)].copy() for p in self.params],
        }
        if self._master is not None:
            state["master"] = [
                self._master[id(p)].copy() for p in self.params
            ]
        if self.loss_scaler is not None:
            state["loss_scaler"] = self.loss_scaler.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self.params):
            raise ValueError(
                f"state dict has {len(velocity)} velocity buffers but the "
                f"optimizer binds {len(self.params)} parameters"
            )
        saved_mode = state.get("precision", "float64")
        if saved_mode != self.precision.mode:
            raise ValueError(
                f"state dict was saved in precision mode {saved_mode!r} "
                f"but this optimizer runs in {self.precision.mode!r} — "
                "rebuild the optimizer with the matching precision"
            )
        expected = (
            np.dtype(np.float64)
            if self._master is not None
            else self.params[0].data.dtype
        )
        for i, (p, v) in enumerate(zip(self.params, velocity)):
            if tuple(v.shape) != tuple(p.data.shape):
                raise ValueError(
                    f"velocity[{i}] has shape {tuple(v.shape)} but "
                    f"parameter {i} expects {tuple(p.data.shape)} — "
                    "state dict does not match the bound parameters"
                )
            want = expected if self._master is not None else p.data.dtype
            if v.dtype != want:
                raise ValueError(
                    f"velocity[{i}] has dtype {v.dtype} but the optimizer "
                    f"runs in precision mode {self.precision.mode!r} "
                    f"(expected {np.dtype(want).name}) — refusing the "
                    "silent cast; re-save the state in the matching "
                    "precision"
                )
        masters = state.get("master")
        if (masters is not None) != (self._master is not None):
            raise ValueError(
                "state dict master-weight presence does not match the "
                f"optimizer (precision mode {self.precision.mode!r})"
            )
        if ("loss_scaler" in state) != (self.loss_scaler is not None):
            raise ValueError(
                "state dict loss-scaler presence does not match the "
                "optimizer (saved "
                f"{'with' if 'loss_scaler' in state else 'without'} a "
                "scaler, optimizer constructed "
                f"{'with' if self.loss_scaler is not None else 'without'} "
                "one) — rebuild the optimizer with the matching "
                "loss_scaler configuration"
            )
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        for p, v in zip(self.params, velocity):
            self._velocity[id(p)] = v.copy()
        if masters is not None:
            for p, w in zip(self.params, masters):
                self._master[id(p)] = w.astype(np.float64, copy=True)
                p.data = self.precision.quantize(self._master[id(p)])
        if self.loss_scaler is not None:
            self.loss_scaler.load_state_dict(state["loss_scaler"])
