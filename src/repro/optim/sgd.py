"""SGD with momentum in the paper's velocity form (eqs. 7-8).

    v_{t+1} = m * v_t + g_t
    w_{t+1} = w_t - lr * v_{t+1}

No dampening; optional decoupled-from-loss L2 weight decay folded into the
gradient (``g += wd * w``), matching the reference He et al. setup.  An
optional Nesterov variant (update ``m*v_{t+1} + g_t``) is included because
the paper's quadratic analysis compares against it — note Nesterov is
exactly generalized spike compensation with ``a=m, b=1``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class SGDM:
    """Momentum SGD over a list of parameters."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.params
        }

    def velocity(self, p: Parameter) -> np.ndarray:
        """The current velocity buffer for parameter ``p``."""
        return self._velocity[id(p)]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update using accumulated ``.grad`` fields."""
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v = self._velocity[id(p)]
            v *= self.momentum
            v += g
            update = self.momentum * v + g if self.nesterov else v
            p.data = p.data - self.lr * update

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "velocity": [self._velocity[id(p)].copy() for p in self.params],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        for p, v in zip(self.params, state["velocity"]):
            self._velocity[id(p)] = v.copy()
