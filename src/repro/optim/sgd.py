"""SGD with momentum in the paper's velocity form (eqs. 7-8).

    v_{t+1} = m * v_t + g_t
    w_{t+1} = w_t - lr * v_{t+1}

No dampening; optional decoupled-from-loss L2 weight decay folded into the
gradient (``g += wd * w``), matching the reference He et al. setup.  An
optional Nesterov variant (update ``m*v_{t+1} + g_t``) is included because
the paper's quadratic analysis compares against it — note Nesterov is
exactly generalized spike compensation with ``a=m, b=1``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class SGDM:
    """Momentum SGD over a list of parameters."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.params
        }
        #: per-parameter scratch buffers so ``step`` allocates nothing on
        #: the hot path (lazily created, keyed by parameter and role)
        self._scratch: dict[tuple[int, str], np.ndarray] = {}

    def velocity(self, p: Parameter) -> np.ndarray:
        """The current velocity buffer for parameter ``p``."""
        return self._velocity[id(p)]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def _buf(self, p: Parameter, role: str) -> np.ndarray:
        key = (id(p), role)
        buf = self._scratch.get(key)
        if buf is None or buf.shape != p.data.shape:
            buf = self._scratch[key] = np.empty_like(p.data)
        return buf

    def step(self) -> None:
        """Apply one update using accumulated ``.grad`` fields.

        Fully in place: velocity, the weight-decay fold and the weight
        update all write into preallocated buffers
        (``np.multiply/add/subtract(..., out=...)``), so the steady-state
        optimizer allocates nothing per step.  The operation order is the
        textbook one — ``g + wd*w``, then ``v = m*v + g``, then
        ``w -= lr*update`` — so results are bit-identical to the naive
        out-of-place form (pinned in ``tests/test_optim.py``).
        """
        m = self.momentum
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g_eff = self._buf(p, "g")
                np.multiply(p.data, self.weight_decay, out=g_eff)
                np.add(g, g_eff, out=g_eff)  # g_eff = g + wd*w
            else:
                g_eff = g
            v = self._velocity[id(p)]
            np.multiply(v, m, out=v)
            np.add(v, g_eff, out=v)
            step_buf = self._buf(p, "u")
            if self.nesterov:
                np.multiply(v, m, out=step_buf)
                np.add(step_buf, g_eff, out=step_buf)  # m*v_{t+1} + g
                np.multiply(step_buf, self.lr, out=step_buf)
            else:
                np.multiply(v, self.lr, out=step_buf)
            np.subtract(p.data, step_buf, out=p.data)

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "velocity": [self._velocity[id(p)].copy() for p in self.params],
        }

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self.params):
            raise ValueError(
                f"state dict has {len(velocity)} velocity buffers but the "
                f"optimizer binds {len(self.params)} parameters"
            )
        for i, (p, v) in enumerate(zip(self.params, velocity)):
            if tuple(v.shape) != tuple(p.data.shape):
                raise ValueError(
                    f"velocity[{i}] has shape {tuple(v.shape)} but "
                    f"parameter {i} expects {tuple(p.data.shape)} — "
                    "state dict does not match the bound parameters"
                )
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        for p, v in zip(self.params, velocity):
            self._velocity[id(p)] = v.copy()
