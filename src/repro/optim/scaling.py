"""Hyperparameter scaling for small update sizes (paper eq. 9).

Following Chiley et al. (2019), when moving from a reference batch size
``N_r`` to a new update size ``N``:

    m   = m_r ** (N / N_r)
    lr  = (1 - m) * N / ((1 - m_r) * N_r) * lr_r

This keeps (a) the momentum half-life constant *in samples* and (b) the
total contribution of each sample to the weights constant, which is what
makes batch-1 pipelined backpropagation comparable to the batch-128
baseline without re-tuning (validated in Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HyperParams:
    """An SGDM configuration tied to an update size."""

    lr: float
    momentum: float
    batch_size: int
    weight_decay: float = 0.0

    def scaled_to(self, batch_size: int) -> "HyperParams":
        """This configuration rescaled to a new update size via eq. 9."""
        lr, m = scale_for_batch_size(
            self.lr, self.momentum, self.batch_size, batch_size
        )
        return replace(self, lr=lr, momentum=m, batch_size=batch_size)


#: He et al. (2016a) CIFAR reference: lr 0.1, momentum 0.9, batch 128.
HE_CIFAR_REFERENCE = HyperParams(
    lr=0.1, momentum=0.9, batch_size=128, weight_decay=1e-4
)

#: He et al. (2016a) ImageNet reference: lr 0.1, momentum 0.9, batch 256.
HE_IMAGENET_REFERENCE = HyperParams(
    lr=0.1, momentum=0.9, batch_size=256, weight_decay=1e-4
)


def scale_for_batch_size(
    lr_ref: float,
    momentum_ref: float,
    batch_ref: int,
    batch_new: int,
) -> tuple[float, float]:
    """Eq. 9: scale ``(lr, momentum)`` from ``batch_ref`` to ``batch_new``."""
    if not 0.0 <= momentum_ref < 1.0:
        raise ValueError(f"momentum must be in [0, 1), got {momentum_ref}")
    if batch_ref <= 0 or batch_new <= 0:
        raise ValueError("batch sizes must be positive")
    m = momentum_ref ** (batch_new / batch_ref)
    lr = (1.0 - m) * batch_new / ((1.0 - momentum_ref) * batch_ref) * lr_ref
    return lr, m


def lr_for_momentum(
    lr_ref: float,
    momentum_ref: float,
    batch_ref: int,
    momentum_new: float,
    batch_new: int,
) -> float:
    """The second expression of eq. 9 alone, for momentum-sweep experiments.

    Used by the Appendix-F study: pick ``momentum_new`` freely, then scale
    the learning rate so each gradient's total contribution is unchanged.
    """
    return (
        (1.0 - momentum_new)
        * batch_new
        / ((1.0 - momentum_ref) * batch_ref)
        * lr_ref
    )


def momentum_half_life_samples(momentum: float, batch_size: int) -> float:
    """Half-life of the momentum decay measured in *samples*.

    Invariant under eq. 9 scaling (property-tested).
    """
    import math

    if momentum <= 0.0:
        return 0.0
    return batch_size * math.log(0.5) / math.log(momentum)


def per_sample_contribution(lr: float, momentum: float, batch_size: int) -> float:
    """Total long-run contribution of one sample's gradient to the weights.

    A unit gradient contributes ``lr * 1/(1-m)`` over time, shared by the
    ``batch_size`` samples in the update.  Invariant under eq. 9 scaling.
    """
    return lr / ((1.0 - momentum) * batch_size)
