"""Learning-rate schedules.

Schedules are callables ``step -> lr`` driven by the trainer; ``step`` is
counted in optimizer updates.  ``StepSchedule`` reproduces the He et al.
milestone decay; ``WarmupSchedule`` implements the linear warmup the paper
discusses as a delay-stabilization aid (§5).
"""

from __future__ import annotations

from typing import Sequence


class ConstantSchedule:
    """Always the base learning rate."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepSchedule:
    """Piecewise-constant decay: multiply by ``gamma`` at each milestone."""

    def __init__(self, base_lr: float, milestones: Sequence[int], gamma: float = 0.1):
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be sorted ascending")
        self.base_lr = float(base_lr)
        self.milestones = list(milestones)
        self.gamma = float(gamma)

    def __call__(self, step: int) -> float:
        lr = self.base_lr
        for m in self.milestones:
            if step >= m:
                lr *= self.gamma
        return lr


class WarmupSchedule:
    """Linear warmup from ``warmup_frac * lr`` wrapped around a schedule."""

    def __init__(self, inner, warmup_steps: int, warmup_frac: float = 0.1):
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        self.inner = inner
        self.warmup_steps = int(warmup_steps)
        self.warmup_frac = float(warmup_frac)

    def __call__(self, step: int) -> float:
        lr = self.inner(step)
        if self.warmup_steps and step < self.warmup_steps:
            frac = self.warmup_frac + (1.0 - self.warmup_frac) * (
                step / self.warmup_steps
            )
            return lr * frac
        return lr
