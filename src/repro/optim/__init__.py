"""Optimizers, LR schedules, and the paper's batch-size scaling rules."""

from repro.optim.sgd import SGDM
from repro.optim.scaling import (
    HyperParams,
    HE_CIFAR_REFERENCE,
    HE_IMAGENET_REFERENCE,
    scale_for_batch_size,
    momentum_half_life_samples,
    per_sample_contribution,
)
from repro.optim.lr_schedule import (
    ConstantSchedule,
    StepSchedule,
    WarmupSchedule,
)

__all__ = [
    "SGDM",
    "HyperParams",
    "HE_CIFAR_REFERENCE",
    "HE_IMAGENET_REFERENCE",
    "scale_for_batch_size",
    "momentum_half_life_samples",
    "per_sample_contribution",
    "ConstantSchedule",
    "StepSchedule",
    "WarmupSchedule",
]
