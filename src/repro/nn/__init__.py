"""Neural-network layers built on :mod:`repro.tensor`.

Torch-like ``Module``/``Parameter`` system with the layers the paper's
models need: ``Conv2d``, ``Linear``, ``GroupNorm`` (the paper's batch-free
normalizer), ``BatchNorm2d`` (for the BN-vs-GN delay-tolerance extension
experiments), ReLU/pooling/dropout, and loss modules.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear, Flatten
from repro.nn.conv import Conv2d
from repro.nn.norm import GroupNorm, BatchNorm2d, group_norm_for
from repro.nn.activation import ReLU, Tanh, Sigmoid, Identity
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool
from repro.nn.dropout import Dropout
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Flatten",
    "Conv2d",
    "GroupNorm",
    "BatchNorm2d",
    "group_norm_for",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "init",
]
