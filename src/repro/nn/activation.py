"""Activation modules (thin wrappers over tensor ops)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, relu, sigmoid, tanh


class ReLU(Module):
    """Rectified linear unit layer."""
    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class Tanh(Module):
    """Hyperbolic tangent layer."""
    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid layer."""
    def forward(self, x: Tensor) -> Tensor:
        return sigmoid(x)


class Identity(Module):
    """Pass-through layer (placeholder stage)."""
    def forward(self, x: Tensor) -> Tensor:
        return x
