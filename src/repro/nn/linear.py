"""Fully-connected layer and the Flatten helper."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, matmul
from repro.utils.rng import new_rng


class Linear(Module):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else new_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.uniform_fan_in((in_features, out_features), rng)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = matmul(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Flatten(Module):
    """Flatten all dims after the batch dim (NCHW -> N,(C*H*W))."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)
