"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.ops_conv import conv2d
from repro.tensor.tensor import Tensor
from repro.utils.rng import new_rng


class Conv2d(Module):
    """Conv layer (NCHW); square kernel/stride/padding.

    ``bias=False`` by default when followed by a normalization layer is the
    caller's choice (the model zoo does this, matching the reference
    ResNet/VGG implementations).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else new_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}, "
            f"bias={self.bias is not None})"
        )
