"""Normalization layers.

The paper trains at per-worker batch size one, which rules out Batch
Normalization; Group Normalization (Wu & He 2018) is used instead with an
initial group *size* of two (channels per group).  ``BatchNorm2d`` is kept
for the Appendix-B-style delay experiments and for the BN-vs-GN
delay-tolerance comparison mentioned in the paper's discussion.

Both are implemented as *composites* of autodiff primitives so their
backward passes are correct by construction (and verified by grad-checks).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, sqrt


class GroupNorm(Module):
    """Group normalization over an NCHW tensor.

    Statistics are computed per sample over each group of channels, making
    the layer independent of batch size — the property PB training at
    update-size one requires.
    """

    def __init__(
        self,
        num_groups: int,
        num_channels: int,
        eps: float = 1e-5,
        affine: bool = True,
    ):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"channels ({num_channels}) must divide into groups ({num_groups})"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((1, num_channels, 1, 1)))
            self.bias = Parameter(init.zeros((1, num_channels, 1, 1)))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        grouped = x.reshape((n, self.num_groups, -1))
        mu = grouped.mean(axis=2, keepdims=True)
        centered = grouped - mu
        var = (centered * centered).mean(axis=2, keepdims=True)
        normalized = centered / sqrt(var + self.eps)
        out = normalized.reshape((n, c, h, w))
        if self.affine:
            out = out * self.weight + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"GroupNorm(groups={self.num_groups}, channels={self.num_channels})"
        )


def group_norm_for(channels: int, group_size: int = 2) -> GroupNorm:
    """GroupNorm with a fixed *channels-per-group* size (paper: size two).

    Falls back to one group when ``channels < group_size`` and reduces the
    group size until it divides ``channels``.
    """
    size = min(group_size, channels)
    while channels % size:
        size -= 1
    return GroupNorm(num_groups=channels // size, num_channels=channels)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel with running stats."""

    def __init__(
        self,
        num_channels: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        affine: bool = True,
    ):
        super().__init__()
        self.num_channels = num_channels
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones((1, num_channels, 1, 1)))
            self.bias = Parameter(init.zeros((1, num_channels, 1, 1)))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_channels))
        self.register_buffer("running_var", np.ones(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            # update running stats outside the graph
            m = self.momentum
            count = n * h * w
            unbiased = var.data.reshape(-1) * count / max(count - 1, 1)
            self.set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mu.data.reshape(-1),
            )
            self.set_buffer(
                "running_var", (1 - m) * self.running_var + m * unbiased
            )
            normalized = centered / sqrt(var + self.eps)
        else:
            mu = self.running_mean.reshape(1, c, 1, 1)
            var = self.running_var.reshape(1, c, 1, 1)
            normalized = (x - mu) / np.sqrt(var + self.eps)
        if self.affine:
            normalized = normalized * self.weight + self.bias
        return normalized

    def __repr__(self) -> str:
        return f"BatchNorm2d(channels={self.num_channels})"
