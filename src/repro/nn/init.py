"""Weight initialization schemes (He, Xavier, uniform-fan-in).

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro import config


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for linear ``(in, out)`` or conv ``(OC, IC, KH, KW)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        oc, ic, kh, kw = shape
        rf = kh * kw
        return ic * rf, oc * rf
    raise ValueError(f"unsupported weight shape {shape}")


def he_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mode: str = "fan_out",
    dtype=None,
) -> np.ndarray:
    """Kaiming-normal init (He et al. 2015), fan_out mode by default as in
    the reference ResNet implementation."""
    fan_in, fan_out = _fans(shape)
    fan = fan_out if mode == "fan_out" else fan_in
    std = np.sqrt(2.0 / fan)
    return rng.normal(0.0, std, size=shape).astype(dtype or config.DEFAULT_DTYPE)


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, dtype=None
) -> np.ndarray:
    """Glorot-uniform init."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(
        dtype or config.DEFAULT_DTYPE
    )


def uniform_fan_in(
    shape: tuple[int, ...], rng: np.random.Generator, dtype=None
) -> np.ndarray:
    """Torch-style default: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    fan_in, _ = _fans(shape)
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(
        dtype or config.DEFAULT_DTYPE
    )


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=dtype or config.DEFAULT_DTYPE)


def ones(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=dtype or config.DEFAULT_DTYPE)
