"""Pooling modules."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.ops_conv import avg_pool2d, max_pool2d
from repro.tensor.tensor import Tensor


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel: int):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel})"


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel: int):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel})"


class GlobalAvgPool(Module):
    """Average over all spatial positions: NCHW -> NC."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
