"""``Module``/``Parameter`` containers with recursive parameter discovery.

The optimizer APIs in :mod:`repro.optim` and :mod:`repro.core` operate on
the ``Parameter`` lists these containers expose.  ``state_dict`` /
``load_state_dict`` copy raw arrays so optimizers holding weight *history*
(delay simulation) can snapshot and restore model state cheaply.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True, dtype=None):
        super().__init__(data, requires_grad=requires_grad, dtype=dtype)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` (they are auto-registered) and implement ``forward``.
    """

    def __init__(self):
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        params = self.__dict__.get("_params")
        modules = self.__dict__.get("_modules")
        if params is None or modules is None:
            raise RuntimeError(
                "Module.__init__() must be called before assigning attributes"
            )
        params.pop(name, None)
        modules.pop(name, None)
        if isinstance(value, Parameter):
            params[name] = value
        elif isinstance(value, Module):
            modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(array)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, array: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(array)
        object.__setattr__(self, name, self._buffers[name])

    # -- forward -------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal -----------------------------------------------------------

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, mod in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from mod.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, mod in self.named_modules():
            yield mod

    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for mod_name, mod in self.named_modules(prefix):
            for p_name, p in mod._params.items():
                if id(p) in seen:
                    continue
                seen.add(id(p))
                full = f"{mod_name}.{p_name}" if mod_name else p_name
                yield full, p

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for mod_name, mod in self.named_modules(prefix):
            for b_name, b in mod._buffers.items():
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                yield full, b

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for mod in self.modules():
            fn(mod)
        return self

    # -- mode / grads ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for mod in self.modules():
            object.__setattr__(mod, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- state -----------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameter and buffer arrays, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, b in self.named_buffers():
            state[f"{name}"] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict key match)."""
        own_params = dict(self.named_parameters())
        own_buffers = {}
        for mod_name, mod in self.named_modules():
            for b_name in mod._buffers:
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                own_buffers[full] = (mod, b_name)
        expected = set(own_params) | set(own_buffers)
        if expected != set(state):
            missing = expected - set(state)
            extra = set(state) - expected
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, arr in state.items():
            if name in own_params:
                p = own_params[name]
                if p.data.shape != arr.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {p.data.shape} vs {arr.shape}"
                    )
                p.data = arr.astype(p.data.dtype, copy=True)
            else:
                mod, b_name = own_buffers[name]
                mod.set_buffer(b_name, arr.copy())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        self._seq: list[Module] = []
        for i, mod in enumerate(modules):
            setattr(self, f"m{i}", mod)
            self._seq.append(mod)

    def forward(self, x):
        for mod in self._seq:
            x = mod(x)
        return x

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, i: int) -> Module:
        return self._seq[i]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._seq)


class ModuleList(Module):
    """List container whose entries are registered as sub-modules."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._list: list[Module] = []
        for mod in modules:
            self.append(mod)

    def append(self, mod: Module) -> None:
        setattr(self, f"m{len(self._list)}", mod)
        self._list.append(mod)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, i: int) -> Module:
        return self._list[i]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its entries directly")
