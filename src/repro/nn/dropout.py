"""Inverted dropout with an explicit, reseedable random stream."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.utils.rng import new_rng


class Dropout(Module):
    """Inverted dropout: train-time mask scaled by ``1/(1-p)``; eval = id.

    The mask stream comes from the module's own generator so training runs
    are reproducible; call :meth:`reseed` to restart the stream.
    """

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._seed = seed
        self._rng = new_rng(seed)

    def reseed(self, seed: int | None = None) -> None:
        self._seed = self._seed if seed is None else seed
        self._rng = new_rng(self._seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
