"""Loss modules."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, cross_entropy


class CrossEntropyLoss(Module):
    """Fused softmax cross-entropy over integer labels."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, labels) -> Tensor:
        return cross_entropy(logits, labels, reduction=self.reduction)


class MSELoss(Module):
    """Mean squared error."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        diff = pred - target
        sq = diff * diff
        return sq.mean() if self.reduction == "mean" else sq.sum()
