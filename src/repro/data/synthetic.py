"""Seeded synthetic image-classification datasets.

Each class gets a smooth random "prototype" field; samples are noisy,
jittered mixtures of their class prototype and a smooth background.  The
resulting task is learnable but non-trivial (a linear model cannot reach
the accuracy a small CNN can), and — importantly for this reproduction —
training on it is sensitive to gradient staleness, which is the phenomenon
the paper's experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.utils.rng import derive_seed, new_rng


@dataclass
class Dataset:
    """Train/val arrays in NCHW layout with integer labels."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.x_train.shape[1:]

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name}, train={len(self.y_train)}, "
            f"val={len(self.y_val)}, classes={self.num_classes}, "
            f"shape={self.image_shape})"
        )


def _smooth_field(
    rng: np.random.Generator, channels: int, size: int, smoothness: float
) -> np.ndarray:
    """A smooth random field in [-1, 1]^(C,H,W)."""
    field = rng.normal(size=(channels, size, size))
    field = ndimage.gaussian_filter(field, sigma=(0, smoothness, smoothness))
    peak = np.abs(field).max() or 1.0
    return field / peak


def make_synthetic(
    name: str = "synthetic",
    num_classes: int = 10,
    image_size: int = 16,
    channels: int = 3,
    train_size: int = 2048,
    val_size: int = 512,
    noise: float = 1.0,
    prototype_strength: float = 1.0,
    smoothness: float = 2.0,
    seed: int = 0,
) -> Dataset:
    """Build a synthetic dataset.

    ``noise`` controls difficulty: each sample is
    ``prototype_strength * P_y + noise * (smooth noise field)`` with a
    random per-sample gain, so higher noise lowers the attainable accuracy
    and stretches the training curves (useful for making method gaps
    visible at bench scale).
    """
    rng = new_rng(derive_seed(seed, "synthetic", name))
    protos = np.stack(
        [
            _smooth_field(rng, channels, image_size, smoothness)
            for _ in range(num_classes)
        ]
    )

    def _sample(n: int, rng: np.random.Generator):
        y = rng.integers(0, num_classes, size=n)
        gain = rng.uniform(0.7, 1.3, size=(n, 1, 1, 1))
        signal = prototype_strength * protos[y] * gain
        bg = rng.normal(size=(n, channels, image_size, image_size))
        bg = ndimage.gaussian_filter(bg, sigma=(0, 0, 1.0, 1.0))
        x = signal + noise * bg
        return x.astype(np.float64), y.astype(np.int64)

    x_train, y_train = _sample(train_size, rng)
    x_val, y_val = _sample(val_size, rng)
    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train,
        x_val=x_val,
        y_val=y_val,
        num_classes=num_classes,
    )


def SyntheticCifar(
    seed: int = 0,
    image_size: int = 16,
    train_size: int = 2048,
    val_size: int = 512,
    noise: float = 1.2,
) -> Dataset:
    """CIFAR-10 stand-in: 10 classes, 3 channels (16x16 at bench scale;
    pass ``image_size=32`` for the paper-shape input)."""
    return make_synthetic(
        name=f"synth-cifar{image_size}",
        num_classes=10,
        image_size=image_size,
        train_size=train_size,
        val_size=val_size,
        noise=noise,
        seed=seed,
    )


def SyntheticImageNet(
    seed: int = 0,
    image_size: int = 32,
    num_classes: int = 20,
    train_size: int = 2048,
    val_size: int = 512,
    noise: float = 1.2,
) -> Dataset:
    """ImageNet stand-in: more classes, larger images (downscaled)."""
    return make_synthetic(
        name=f"synth-imagenet{image_size}",
        num_classes=num_classes,
        image_size=image_size,
        train_size=train_size,
        val_size=val_size,
        noise=noise,
        seed=seed,
    )
