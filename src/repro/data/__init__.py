"""Synthetic datasets, augmentation, and batching.

CIFAR-10/ImageNet are not available offline, so the experiments run on
seeded synthetic image-classification tasks with the same interface (see
DESIGN.md for why this preserves the paper's comparisons: every experiment
measures *relative* degradation/recovery between training methods, not
absolute accuracy).
"""

from repro.data.synthetic import (
    Dataset,
    make_synthetic,
    SyntheticCifar,
    SyntheticImageNet,
)
from repro.data.augment import PadCropFlip
from repro.data.loader import (
    ResumableSampleStream,
    iterate_batches,
    sample_stream,
    shard_positions,
)

__all__ = [
    "Dataset",
    "make_synthetic",
    "SyntheticCifar",
    "SyntheticImageNet",
    "PadCropFlip",
    "ResumableSampleStream",
    "iterate_batches",
    "sample_stream",
    "shard_positions",
]
