"""Batch iteration and per-sample streams over datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np


def iterate_batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    augment=None,
    shuffle: bool = True,
    drop_last: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(xb, yb)`` batches for one epoch.

    ``augment`` is an optional callable ``(batch, rng) -> batch``.
    ``drop_last`` keeps update sizes constant (important when comparing
    against scaled hyperparameters).
    """
    n = x.shape[0]
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    idx = np.arange(n)
    if shuffle:
        if rng is None:
            raise ValueError("shuffle=True requires an rng")
        idx = rng.permutation(n)
    stop = n - (n % batch_size) if drop_last else n
    for start in range(0, stop, batch_size):
        take = idx[start : start + batch_size]
        xb = x[take]
        yb = y[take]
        if augment is not None:
            if rng is None:
                raise ValueError("augmentation requires an rng")
            xb = augment(xb, rng)
        yield xb, yb


def sample_stream(
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    rng: np.random.Generator,
    augment=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``epochs`` shuffled (augmented) passes into one stream.

    The pipelined executor consumes samples one at a time; this produces
    the full sample sequence for a multi-epoch run up front.
    """
    xs, ys = [], []
    for _ in range(int(epochs)):
        idx = rng.permutation(x.shape[0])
        xb = x[idx]
        if augment is not None:
            xb = augment(xb, rng)
        xs.append(xb)
        ys.append(y[idx])
    return np.concatenate(xs), np.concatenate(ys)
