"""Batch iteration and per-sample streams over datasets.

Two stream flavors feed the pipelined trainers:

* :func:`sample_stream` — the eager helper: materializes every epoch of
  a multi-epoch run up front (O(epochs·N) memory).  Kept for tests and
  small experiment sweeps, where a few hundred samples are cheaper to
  concatenate than to manage.
* :class:`ResumableSampleStream` — the lazy equivalent the trainers
  consume: one epoch in memory at a time (O(N)), identical sample
  sequence for the same seed (equivalence-tested), and a serializable
  cursor ``(epoch, index, rng state)`` so a checkpointed run resumes on
  the exact sample the uninterrupted run would have seen next.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np


def iterate_batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    augment=None,
    shuffle: bool = True,
    drop_last: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(xb, yb)`` batches for one epoch.

    ``augment`` is an optional callable ``(batch, rng) -> batch``.
    ``drop_last`` keeps update sizes constant (important when comparing
    against scaled hyperparameters).
    """
    n = x.shape[0]
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    idx = np.arange(n)
    if shuffle:
        if rng is None:
            raise ValueError("shuffle=True requires an rng")
        idx = rng.permutation(n)
    stop = n - (n % batch_size) if drop_last else n
    for start in range(0, stop, batch_size):
        take = idx[start : start + batch_size]
        xb = x[take]
        yb = y[take]
        if augment is not None:
            if rng is None:
                raise ValueError("augmentation requires an rng")
            xb = augment(xb, rng)
        yield xb, yb


def shard_positions(
    n: int, rank: int, world: int, block: int = 1
) -> np.ndarray:
    """Global stream positions owned by ``rank`` under block-cyclic
    sharding: sample ``i`` belongs to ``(i // block) % world``.

    With ``block`` equal to a replica's update size, each rank's share
    of a global round of ``world * block`` samples is one *contiguous*
    stream slice — the property the replicated pipeline runner's
    chain-ordered gradient reduction relies on (see
    ``pipeline/runtime.py``).
    """
    if world < 1:
        raise ValueError(f"world must be >= 1, got {world}")
    if not 0 <= rank < world:
        raise ValueError(f"rank {rank} outside [0, {world})")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    idx = np.arange(int(n))
    return idx[(idx // block) % world == rank]


def sample_stream(
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    rng: np.random.Generator,
    augment=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``epochs`` shuffled (augmented) passes into one stream.

    The eager helper: materializes the full multi-epoch sequence up
    front, which caps run length by RAM.  The trainers use
    :class:`ResumableSampleStream` instead (same sequence, one epoch in
    memory, resumable); this stays as the reference implementation the
    lazy stream is equivalence-tested against, and as a convenience for
    small test workloads.
    """
    xs, ys = [], []
    for _ in range(int(epochs)):
        idx = rng.permutation(x.shape[0])
        xb = x[idx]
        if augment is not None:
            xb = augment(xb, rng)
        xs.append(xb)
        ys.append(y[idx])
    return np.concatenate(xs), np.concatenate(ys)


class ResumableSampleStream:
    """Lazy multi-epoch sample stream with a serializable cursor.

    Produces exactly the sequence :func:`sample_stream` would (same
    ``rng`` consumption order: one permutation draw, then the augment's
    draws, per epoch) but materializes only the *current* epoch, so a
    run's length is bounded by patience, not memory.

    The cursor is ``(epoch, index, rng_state)`` where ``rng_state`` is
    the generator state **at the current epoch's start** — restoring it
    regenerates the epoch's permutation and augmentation bit-exactly and
    skips to ``index``, so a resumed run continues mid-epoch on the very
    next sample the uninterrupted run would have consumed.  The
    checkpoint subsystem (:mod:`repro.pipeline.checkpoint`) persists this
    cursor next to the engine state.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
        augment=None,
    ):
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot stream an empty dataset")
        if int(epochs) < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        self.x = x
        self.y = y
        self.epochs = int(epochs)
        self.rng = rng
        self.augment = augment
        self.epoch = 0  # current epoch (== epochs when exhausted)
        self.index = 0  # next sample within the current epoch
        self._epoch_x: np.ndarray | None = None
        self._epoch_y: np.ndarray | None = None
        self._epoch_rng_state: dict | None = None

    # -- sharding -----------------------------------------------------------

    def shard(
        self, rank: int, world: int, block: int = 1
    ) -> "_ShardedSampleStream":
        """A stream over this stream's ``rank``-th block-cyclic shard.

        The shard draws the *same* per-epoch permutation (and
        augmentation) as the unsharded stream — each shard deep-copies
        the rng so all ``world`` shards of one parent agree on every
        epoch's sample order — and then keeps only the positions
        :func:`shard_positions` assigns to ``rank``.  Together the
        shards are disjoint and cover the stream exactly.

        Must be called before any sample is consumed (the shard starts
        its own cursor at position 0).
        """
        if self.position != 0:
            raise ValueError(
                "shard() must be called on an unconsumed stream "
                f"(position {self.position})"
            )
        return _ShardedSampleStream(
            self.x, self.y, self.epochs, copy.deepcopy(self.rng),
            rank, world, block=block, augment=self.augment,
        )

    # -- cursor arithmetic --------------------------------------------------

    @property
    def samples_per_epoch(self) -> int:
        return int(self.x.shape[0])

    @property
    def total_samples(self) -> int:
        return self.epochs * self.samples_per_epoch

    @property
    def position(self) -> int:
        """Samples consumed so far (global stream offset)."""
        return self.epoch * self.samples_per_epoch + self.index

    @property
    def remaining(self) -> int:
        return self.total_samples - self.position

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    # -- epoch materialization ----------------------------------------------

    def _materialize_epoch(self) -> None:
        """Shuffle (and augment) the current epoch; one epoch in memory.

        Consumes the rng exactly as :func:`sample_stream` does for this
        epoch.  The pre-permutation rng state is *not* kept here — a
        cursor captured mid-epoch stores it via :meth:`state_dict`'s
        ``_epoch_rng_state`` bookkeeping below.
        """
        if self._epoch_x is not None:
            return
        self._epoch_rng_state = copy.deepcopy(self.rng.bit_generator.state)
        idx = self.rng.permutation(self.samples_per_epoch)
        xb = self.x[idx]
        if self.augment is not None:
            xb = self.augment(xb, self.rng)
        self._epoch_x = xb
        self._epoch_y = self.y[idx]

    def _drop_epoch(self) -> None:
        self._epoch_x = None
        self._epoch_y = None
        self._epoch_rng_state = None

    # -- consumption --------------------------------------------------------

    def next_chunk(self, max_samples: int) -> tuple[np.ndarray, np.ndarray]:
        """The next up-to-``max_samples`` samples, crossing epoch
        boundaries as needed; returns ``(xs, ys)`` (views when the chunk
        fits inside one epoch, copies otherwise)."""
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        need = min(int(max_samples), self.remaining)
        if need <= 0:
            raise ValueError("stream is exhausted")
        parts_x: list[np.ndarray] = []
        parts_y: list[np.ndarray] = []
        n = self.samples_per_epoch
        while need > 0:
            self._materialize_epoch()
            take = min(need, n - self.index)
            parts_x.append(self._epoch_x[self.index : self.index + take])
            parts_y.append(self._epoch_y[self.index : self.index + take])
            self.index += take
            need -= take
            if self.index >= n:
                self.epoch += 1
                self.index = 0
                self._drop_epoch()
        if len(parts_x) == 1:
            return parts_x[0], parts_y[0]
        return np.concatenate(parts_x), np.concatenate(parts_y)

    # -- cursor (checkpoint/resume) -----------------------------------------

    def state_dict(self) -> dict:
        """Serializable cursor: ``(epoch, index)`` plus the rng state at
        the current epoch's start (the live rng state when nothing of
        the epoch has been consumed yet)."""
        if self._epoch_x is None:
            rng_state = copy.deepcopy(self.rng.bit_generator.state)
        else:
            rng_state = copy.deepcopy(self._epoch_rng_state)
        return {
            "epoch": int(self.epoch),
            "index": int(self.index),
            "epochs": int(self.epochs),
            "samples_per_epoch": self.samples_per_epoch,
            "rng_state": rng_state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` cursor.

        The stream must wrap the same dataset (size-checked); the next
        :meth:`next_chunk` regenerates the in-progress epoch from the
        restored rng state and continues at ``index``.
        """
        if "shard" in state and not isinstance(self, _ShardedSampleStream):
            raise ValueError(
                "cursor was captured over a sharded stream; load it into "
                "the matching stream.shard(rank, world) instead"
            )
        if int(state["samples_per_epoch"]) != self.samples_per_epoch:
            raise ValueError(
                f"cursor was captured over {state['samples_per_epoch']} "
                f"samples/epoch, this stream has {self.samples_per_epoch}"
            )
        epoch = int(state["epoch"])
        index = int(state["index"])
        epochs = int(state["epochs"])
        if not 0 <= epoch <= epochs:
            raise ValueError(f"cursor epoch {epoch} outside [0, {epochs}]")
        if not 0 <= index < max(1, self.samples_per_epoch):
            raise ValueError(f"cursor index {index} outside the epoch")
        self.epochs = epochs
        self.epoch = epoch
        self.index = index
        self.rng.bit_generator.state = copy.deepcopy(state["rng_state"])
        self._drop_epoch()


class _ShardedSampleStream(ResumableSampleStream):
    """One block-cyclic shard of a :class:`ResumableSampleStream`.

    Each epoch the *full* dataset is permuted (and augmented) with the
    same rng consumption as the unsharded stream, then sliced down to
    this rank's :func:`shard_positions` — so sibling shards partition
    every epoch's sample sequence exactly, and ``samples_per_epoch`` /
    the resume cursor count in shard-local samples.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
        rank: int,
        world: int,
        block: int = 1,
        augment=None,
    ):
        super().__init__(x, y, epochs, rng, augment=augment)
        self._positions = shard_positions(x.shape[0], rank, world, block)
        if self._positions.size == 0:
            raise ValueError(
                f"shard {rank}/{world} (block {block}) is empty for "
                f"{x.shape[0]} samples/epoch"
            )
        self.rank = int(rank)
        self.world = int(world)
        self.block = int(block)

    @property
    def samples_per_epoch(self) -> int:
        return int(self._positions.size)

    def _materialize_epoch(self) -> None:
        if self._epoch_x is not None:
            return
        self._epoch_rng_state = copy.deepcopy(self.rng.bit_generator.state)
        # permute/augment the FULL epoch (identical rng consumption to
        # the unsharded stream and to every sibling shard), then slice
        idx = self.rng.permutation(self.x.shape[0])
        xb = self.x[idx]
        if self.augment is not None:
            xb = self.augment(xb, self.rng)
        self._epoch_x = xb[self._positions]
        self._epoch_y = self.y[idx][self._positions]

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shard"] = {
            "rank": self.rank,
            "world": self.world,
            "block": self.block,
            "dataset_size": int(self.x.shape[0]),
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        sh = state.get("shard")
        if sh is None:
            raise ValueError(
                "cursor was captured over an unsharded stream; load it "
                "into the parent ResumableSampleStream instead"
            )
        mine = {
            "rank": self.rank,
            "world": self.world,
            "block": self.block,
            "dataset_size": int(self.x.shape[0]),
        }
        theirs = {k: int(v) for k, v in sh.items()}
        if theirs != mine:
            raise ValueError(
                f"cursor belongs to shard {theirs}, this stream is {mine}"
            )
        super().load_state_dict(state)
