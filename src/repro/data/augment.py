"""Standard small-image augmentation: pad-and-crop plus horizontal flip
(the He et al. CIFAR recipe)."""

from __future__ import annotations

import numpy as np


class PadCropFlip:
    """Random translation via zero-pad + crop, and random horizontal flip.

    Vectorized over the batch; driven by the caller's generator so training
    runs are reproducible.
    """

    def __init__(self, pad: int = 2, flip_p: float = 0.5):
        if pad < 0:
            raise ValueError("pad must be >= 0")
        if not 0.0 <= flip_p <= 1.0:
            raise ValueError("flip_p must be in [0, 1]")
        self.pad = int(pad)
        self.flip_p = float(flip_p)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pad
        if p:
            padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
            out = np.empty_like(x)
            offs = rng.integers(0, 2 * p + 1, size=(n, 2))
            for i in range(n):
                oy, ox = offs[i]
                out[i] = padded[i, :, oy : oy + h, ox : ox + w]
        else:
            out = x.copy()
        if self.flip_p:
            flips = rng.random(n) < self.flip_p
            out[flips] = out[flips][..., ::-1]
        return out
