"""Spike Compensation (paper §3.2).

The modified update for a gradient delayed by ``D`` steps is

    v_{t+1} = m v_t + g_t
    w_{t+1} = w_t - lr * (a v_{t+1} + b g_t)          (eq. 12)

The default coefficients (SC_D, eq. 14) replay at once the weight-update
mass the delayed gradient *would* have contributed in the no-delay case:

    a = m**D,   b = (1 - m**D) / (1 - m)

so the total long-run contribution of each gradient is unchanged — only
its timing moves.  Special cases (all property-tested):

* ``D = 0``  -> ``a=1, b=0``: plain SGDM.
* ``m = 0``  -> the update is the plain (delayed) gradient.
* ``D = 1``  -> ``a=m, b=1``: exactly Nesterov momentum (§3.5).
* SC_2D ("overcompensation", Appendix E) substitutes ``2D`` for ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass


def spike_coefficients(momentum: float, delay: float) -> tuple[float, float]:
    """The default SC_D coefficients ``(a, b)`` of eq. 14.

    ``delay`` may be fractional (used by overcompensation sweeps).
    """
    if not 0.0 <= momentum < 1.0:
        raise ValueError(f"momentum must be in [0, 1), got {momentum}")
    if delay < 0:
        raise ValueError(f"delay must be >= 0, got {delay}")
    if momentum == 0.0:
        # lim m->0: a = m^D -> (1 if D == 0 else 0); b = (1-m^D)/(1-m)
        return (1.0, 0.0) if delay == 0 else (0.0, 1.0)
    a = momentum**delay
    b = (1.0 - a) / (1.0 - momentum)
    return a, b


@dataclass(frozen=True)
class SpikeConfig:
    """Configuration for (generalized) spike compensation.

    ``scale`` multiplies the delay before computing the default
    coefficients (``scale=2`` is the paper's SC_2D overcompensation).
    Explicit ``a``/``b`` override the defaults entirely (GSC, eq. 12).
    """

    scale: float = 1.0
    a: float | None = None
    b: float | None = None

    def coefficients(self, momentum: float, delay: float) -> tuple[float, float]:
        """Resolve ``(a, b)`` for a given momentum and *unscaled* delay."""
        if (self.a is None) != (self.b is None):
            raise ValueError("explicit GSC coefficients require both a and b")
        if self.a is not None and self.b is not None:
            return float(self.a), float(self.b)
        return spike_coefficients(momentum, self.scale * delay)

    @staticmethod
    def nesterov() -> "SpikeConfig":
        """GSC coefficients equal to Nesterov momentum (a=m requires the
        momentum at resolve time, so this returns the D=1 default, which is
        identical — see §3.5)."""
        return SpikeConfig(scale=1.0)
