"""Delay profiles for the flat (Appendix G.2) simulator.

A profile answers "how stale is the gradient for parameter ``p`` at step
``t``?".  Three shapes cover the paper's experiments:

* :class:`ConstantDelay` — the controlled studies (Figures 10, 13, 14).
* :class:`PerParamDelay` — per-stage pipeline delays ``2(S-1-s)`` mapped
  onto parameters (used to emulate PB without the executor; see
  :func:`repro.pipeline.delays.pipeline_delay_profile`).
* :class:`RandomDelay` — ASGD-style random staleness (Appendix G.2's
  closing remark), sampled once per optimizer step.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.utils.rng import new_rng


class DelayProfile:
    """Interface: per-parameter, per-step gradient delay."""

    def max_delay(self) -> int:
        raise NotImplementedError

    def begin_step(self, t: int) -> None:
        """Hook called once per optimizer step (used by random profiles)."""

    def delay_for(self, param_id: int, t: int) -> int:
        raise NotImplementedError


class ConstantDelay(DelayProfile):
    """Every parameter delayed by the same fixed number of steps."""

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = int(delay)

    def max_delay(self) -> int:
        return self.delay

    def delay_for(self, param_id: int, t: int) -> int:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay})"


class PerParamDelay(DelayProfile):
    """Explicit mapping ``id(param) -> delay`` (e.g. per pipeline stage)."""

    def __init__(self, mapping: Mapping[int, int], default: int = 0):
        self.mapping = dict(mapping)
        self.default = int(default)
        if any(d < 0 for d in self.mapping.values()) or self.default < 0:
            raise ValueError("delays must be >= 0")

    @classmethod
    def from_sample_delays(
        cls,
        sample_delays: Mapping[int, int],
        sim_batch_size: int = 1,
    ) -> "PerParamDelay":
        """Convert per-parameter *sample* delays to optimizer-*step*
        delays at the simulation batch size (``round(d / B)``).

        The pipeline schedules quote staleness in samples (eq. 5's
        ``D_s = 2(S-1-s)``, owned by
        :func:`repro.pipeline.delays.stage_delay`); the flat simulator
        steps once per batch.  With ``sim_batch_size=1`` the profile
        matches the executor's per-gradient schedules exactly
        (``consistent=False`` for ``pb``, ``consistent=True`` for
        ``1f1b``; property-tested).
        """
        if sim_batch_size < 1:
            raise ValueError("sim_batch_size must be >= 1")
        return cls(
            {
                pid: int(round(d / sim_batch_size))
                for pid, d in sample_delays.items()
            }
        )

    def max_delay(self) -> int:
        return max([self.default, *self.mapping.values()], default=self.default)

    def delay_for(self, param_id: int, t: int) -> int:
        return self.mapping.get(param_id, self.default)

    def __repr__(self) -> str:
        return f"PerParamDelay(n={len(self.mapping)}, max={self.max_delay()})"


class RandomDelay(DelayProfile):
    """Delay drawn uniformly from ``[low, high]`` once per step (ASGD)."""

    def __init__(self, low: int, high: int, seed: int = 0):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)
        self._rng = new_rng(seed)
        self._current = self.low

    def max_delay(self) -> int:
        return self.high

    def begin_step(self, t: int) -> None:
        self._current = int(self._rng.integers(self.low, self.high + 1))

    def delay_for(self, param_id: int, t: int) -> int:
        return self._current

    def __repr__(self) -> str:
        return f"RandomDelay([{self.low}, {self.high}])"
