"""Declarative bundle of all delay mitigations, with the paper's presets.

A :class:`MitigationConfig` is consumed both by the Appendix-G.2
:class:`~repro.core.delayed_sgd.DelayedSGDM` simulator and by the per-stage
optimizers of the cycle-accurate pipeline executor, so every experiment
names its method the same way the paper does::

    MitigationConfig.none()             # plain PB
    MitigationConfig.sc()               # PB + SC_D
    MitigationConfig.sc(scale=2)        # PB + SC_2D
    MitigationConfig.lwp()              # PB + LWP_D      (velocity form)
    MitigationConfig.lwp(scale=2)       # PB + LWP_2D
    MitigationConfig.lwp_plus_sc()      # PB + LWPv_D + SC_D  (the headline)
    MitigationConfig.lwp_plus_sc("w")   # PB + LWPw_D + SC_D
    MitigationConfig.stashing()         # PB + WS (Harlap et al.)
    MitigationConfig.spectrain()        # SpecTrain (Chen et al.)
    MitigationConfig.gradient_shrinking()  # Zhuang et al.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compensation import SpikeConfig
from repro.core.prediction import PredictionConfig


@dataclass(frozen=True)
class MitigationConfig:
    """What to do about stale gradients / inconsistent weights.

    Attributes
    ----------
    spike:
        Spike-compensation settings, or ``None`` to disable.
    prediction:
        Weight-prediction settings (kind ``"none"`` disables).
    weight_stashing:
        Use the forward-pass weights again on the backward pass
        (Harlap et al. 2018).  In the flat simulator this is identical to
        "consistent delay"; in the executor the stage stashes the weight
        values used on each sample's forward.
    gradient_shrink_base:
        If set, scales each arriving gradient by ``base ** D`` (Zhuang et
        al. 2019 gradient shrinking).  ``None`` disables.
    name:
        Label used in printed tables.
    """

    spike: SpikeConfig | None = None
    prediction: PredictionConfig = field(default_factory=PredictionConfig)
    weight_stashing: bool = False
    gradient_shrink_base: float | None = None
    name: str = "PB"

    # -- presets (paper nomenclature) ------------------------------------

    @staticmethod
    def none() -> "MitigationConfig":
        return MitigationConfig(name="PB")

    @staticmethod
    def sc(scale: float = 1.0) -> "MitigationConfig":
        label = "PB+SC_D" if scale == 1.0 else f"PB+SC_{scale:g}D"
        return MitigationConfig(spike=SpikeConfig(scale=scale), name=label)

    @staticmethod
    def gsc(a: float, b: float) -> "MitigationConfig":
        return MitigationConfig(
            spike=SpikeConfig(a=a, b=b), name=f"PB+GSC(a={a:g},b={b:g})"
        )

    @staticmethod
    def lwp(
        form: str = "v", scale: float = 1.0, horizon: float | None = None
    ) -> "MitigationConfig":
        kind = "lwp_v" if form == "v" else "lwp_w"
        if horizon is not None:
            label = f"PB+LWP(T={horizon:g})"
        else:
            label = "PB+LWP_D" if scale == 1.0 else f"PB+LWP_{scale:g}D"
        return MitigationConfig(
            prediction=PredictionConfig(
                kind=kind, horizon_scale=scale, horizon=horizon
            ),
            name=label,
        )

    @staticmethod
    def lwp_plus_sc(
        form: str = "v",
        lwp_scale: float = 1.0,
        sc_scale: float = 1.0,
    ) -> "MitigationConfig":
        kind = "lwp_v" if form == "v" else "lwp_w"
        return MitigationConfig(
            spike=SpikeConfig(scale=sc_scale),
            prediction=PredictionConfig(kind=kind, horizon_scale=lwp_scale),
            name=f"PB+LWP{form}_D+SC_D",
        )

    @staticmethod
    def stashing() -> "MitigationConfig":
        """Weight stashing (Harlap et al. 2018)."""
        return MitigationConfig(weight_stashing=True, name="PB+WS")

    @staticmethod
    def spectrain(offset: float = 0.0) -> "MitigationConfig":
        return MitigationConfig(
            prediction=PredictionConfig(
                kind="spectrain", spectrain_offset=offset
            ),
            name="PB+SpecTrain",
        )

    @staticmethod
    def gradient_shrinking(base: float | None = None) -> "MitigationConfig":
        """Zhuang et al. baseline; ``base=None`` uses the momentum at
        resolve time."""
        return MitigationConfig(
            gradient_shrink_base=base if base is not None else -1.0,
            name="PB+GradShrink",
        )

    # -- helpers ----------------------------------------------------------

    def shrink_factor(self, momentum: float, delay: float) -> float:
        """The gradient-shrinking multiplier for a given delay."""
        if self.gradient_shrink_base is None:
            return 1.0
        base = (
            momentum
            if self.gradient_shrink_base < 0
            else self.gradient_shrink_base
        )
        return float(base**delay)

    def spike_coefficients(
        self, momentum: float, delay: float
    ) -> tuple[float, float]:
        """Resolve (a, b); plain SGDM coefficients when spike is disabled."""
        if self.spike is None:
            return 1.0, 0.0
        return self.spike.coefficients(momentum, delay)
