"""Linear Weight Prediction (paper §3.3) and SpecTrain horizons (App. C).

At forward time the backward-pass weights are estimated ``T`` steps ahead
("horizon"); with our velocity form this is

    w_hat = w_{t-D} - lr * T * v_{t-D}                 (eq. 18, LWPv)

and the weight-difference form

    w_hat = w_{t-D} + T * (w_{t-D} - w_{t-D-1})        (eq. 19, LWPw)

The two coincide for unmodified SGDM and differ when combined with spike
compensation (eq. 26).  The default horizon is ``T = D`` (LWP_D);
``horizon_scale=2`` gives the overcompensating LWP_2D of Appendix E.

SpecTrain (Chen et al. 2018), reconstructed per Appendix C / Figure 11:
every stage predicts to the *same* future time step ("vertical sync") —
the pipeline step at which the sample's last backward completes.  For
stage ``s`` of ``S`` (delay ``D_s = 2(S-1-s)``) the forward horizon is
``D_s + s`` and the backward pass *re-predicts* with horizon ``s``.  In
the flat (constant-delay) simulator the stage offset is the
``spectrain_offset`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

PredictionKind = Literal["none", "lwp_v", "lwp_w", "spectrain"]


def predict_velocity_form(
    w: np.ndarray, v: np.ndarray, lr: float, horizon: float
) -> np.ndarray:
    """eq. 18: ``w - lr * T * v`` (assumes constant velocity over T steps)."""
    if horizon == 0:
        return w.copy()
    return w - lr * horizon * v


def predict_weight_diff_form(
    w: np.ndarray, w_prev: np.ndarray, horizon: float
) -> np.ndarray:
    """eq. 19: ``w + T * (w - w_prev)``."""
    if horizon == 0:
        return w.copy()
    return w + horizon * (w - w_prev)


@dataclass(frozen=True)
class PredictionConfig:
    """Weight-prediction settings.

    Attributes
    ----------
    kind:
        ``"none"``, ``"lwp_v"``, ``"lwp_w"`` or ``"spectrain"``.
    horizon_scale:
        ``T = horizon_scale * D`` unless ``horizon`` is given explicitly.
    horizon:
        Absolute horizon override (used by the Figure-7/12 sweeps).
    spectrain_offset:
        The vertical-sync offset added to the forward horizon and used as
        the backward re-prediction horizon (stage index ``s`` in the
        pipeline executor; configurable scalar in the flat simulator).
    """

    kind: PredictionKind = "none"
    horizon_scale: float = 1.0
    horizon: float | None = None
    spectrain_offset: float = 0.0

    def __post_init__(self):
        if self.kind not in ("none", "lwp_v", "lwp_w", "spectrain"):
            raise ValueError(f"unknown prediction kind {self.kind!r}")

    def forward_horizon(self, delay: float, offset: float | None = None) -> float:
        """The horizon used when predicting forward-pass weights."""
        if self.kind == "none":
            return 0.0
        base = self.horizon if self.horizon is not None else (
            self.horizon_scale * delay
        )
        if self.kind == "spectrain":
            off = self.spectrain_offset if offset is None else offset
            return base + off
        return base

    def backward_horizon(self, offset: float | None = None) -> float:
        """The horizon used when re-predicting on the backward pass
        (SpecTrain only; zero for LWP)."""
        if self.kind != "spectrain":
            return 0.0
        return self.spectrain_offset if offset is None else offset

    @property
    def uses_velocity(self) -> bool:
        return self.kind in ("lwp_v", "spectrain")

    @property
    def uses_weight_history(self) -> bool:
        return self.kind == "lwp_w"
