"""The Appendix-G.2 delay simulator: ``DelayedSGDM``.

Trains any model with *stale gradients* without constructing a pipeline:

1. ``load_forward_weights()`` — loads each parameter with the weights from
   ``D`` steps ago (optionally advanced by weight prediction);
2. the caller runs forward and builds the loss;
3. ``prepare_backward()`` — for **inconsistent** runs (real PB semantics
   without weight stashing) reloads the *current* master weights so the
   backward pass uses them (the autodiff engine reads parameter values
   lazily, see :mod:`repro.tensor`); **consistent** runs (= weight
   stashing) keep the stale weights;
4. the caller backprops;
5. ``step()`` — applies the (possibly spike-compensated) update to the
   master weights and pushes a history snapshot.

Delays come from a :class:`~repro.core.staleness.DelayProfile`: constant
(controlled studies), per-parameter (emulating per-stage pipeline delays),
or random (ASGD).

This simulator is also the *ground truth for the pipeline schedules'
staleness accounting*: with the pipeline profile
(:func:`~repro.pipeline.delays.pipeline_delay_profile`, built via
:meth:`~repro.core.staleness.PerParamDelay.from_sample_delays`) and
per-sample steps, ``consistent=False`` reproduces the ``"pb"`` schedule
exactly (forward stale by eq. 5, backward on current weights) and
``consistent=True`` reproduces ``"1f1b"`` (PipeDream weight stashing:
forward and backward share the stale weights).  Both equivalences are
property-tested in ``tests/test_schedule_properties.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.history import ParamHistory
from repro.core.mitigation import MitigationConfig
from repro.core.prediction import (
    predict_velocity_form,
    predict_weight_diff_form,
)
from repro.core.staleness import ConstantDelay, DelayProfile
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, cross_entropy


class DelayedSGDM:
    """Momentum SGD with simulated gradient delay and mitigation.

    Parameters
    ----------
    params:
        Model parameters (or a :class:`Module`).
    lr, momentum, weight_decay:
        SGDM hyperparameters (eqs. 7-8); ``lr`` may be reassigned between
        steps by an LR schedule.
    delay:
        Integer (constant) or a :class:`DelayProfile`.
    mitigation:
        A :class:`MitigationConfig`; the default is plain delayed SGDM.
    consistent:
        ``True`` = the same stale weights are used on forward and backward
        ("Consistent Delay" in Figure 10; equivalent to weight stashing).
        ``False`` = forward uses stale weights, backward uses current ones
        ("Forward Delay Only" / PB without stashing).  A mitigation with
        ``weight_stashing=True`` forces consistency.
    """

    def __init__(
        self,
        params: Iterable[Parameter] | Module,
        lr: float,
        momentum: float = 0.0,
        delay: int | DelayProfile = 0,
        mitigation: MitigationConfig | None = None,
        consistent: bool = True,
        weight_decay: float = 0.0,
    ):
        if isinstance(params, Module):
            params = params.parameters()
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.profile: DelayProfile = (
            ConstantDelay(delay) if isinstance(delay, int) else delay
        )
        self.mitigation = mitigation or MitigationConfig.none()
        self.consistent = bool(consistent) or self.mitigation.weight_stashing
        self.t = 0

        max_d = self.profile.max_delay()
        self._velocity: dict[int, np.ndarray] = {}
        self._history: dict[int, ParamHistory] = {}
        self._master: dict[int, np.ndarray] = {}
        self._loaded = False
        for p in self.params:
            pid = id(p)
            self._velocity[pid] = np.zeros_like(p.data)
            hist = ParamHistory(maxlen=max_d + 2)
            hist.push(p.data, self._velocity[pid])
            self._history[pid] = hist

    # -- step phases -----------------------------------------------------

    def begin_step(self) -> None:
        """Start a step: sample random delays, snapshot master weights."""
        self.profile.begin_step(self.t)
        for p in self.params:
            self._master[id(p)] = p.data
        self._loaded = True

    def load_forward_weights(self) -> None:
        """Load each parameter with its (possibly predicted) stale value."""
        if not self._loaded:
            self.begin_step()
        pred = self.mitigation.prediction
        for p in self.params:
            pid = id(p)
            d = self.profile.delay_for(pid, self.t)
            w_old, v_old = self._history[pid].get(d)
            if pred.kind == "none":
                p.data = w_old.copy()
            elif pred.kind in ("lwp_v", "spectrain"):
                horizon = pred.forward_horizon(d)
                p.data = predict_velocity_form(w_old, v_old, self.lr, horizon)
            elif pred.kind == "lwp_w":
                horizon = pred.forward_horizon(d)
                w_prev, _ = self._history[pid].get(d + 1)
                p.data = predict_weight_diff_form(w_old, w_prev, horizon)
            else:  # pragma: no cover - guarded by PredictionConfig
                raise AssertionError(pred.kind)

    def prepare_backward(self) -> None:
        """Select the weights the backward pass will read."""
        if not self._loaded:
            raise RuntimeError("call load_forward_weights() before backward")
        pred = self.mitigation.prediction
        if self.consistent:
            return  # keep the forward (stale/predicted) weights
        for p in self.params:
            pid = id(p)
            master = self._master[pid]
            if pred.kind == "spectrain":
                # re-predict at backward time from the current state
                horizon = pred.backward_horizon()
                p.data = predict_velocity_form(
                    master, self._velocity[pid], self.lr, horizon
                )
            else:
                p.data = master

    def step(self) -> None:
        """Apply the (compensated) update to master weights; advance time."""
        if not self._loaded:
            raise RuntimeError("step() without load_forward_weights()")
        m = self.momentum
        for p in self.params:
            pid = id(p)
            master = self._master[pid]
            d = self.profile.delay_for(pid, self.t)
            v = self._velocity[pid]
            if p.grad is not None:
                g = p.grad.astype(master.dtype, copy=False)
                if self.weight_decay:
                    g = g + self.weight_decay * master
                shrink = self.mitigation.shrink_factor(m, d)
                if shrink != 1.0:
                    g = g * shrink
                v *= m
                v += g
                a, b = self.mitigation.spike_coefficients(m, d)
                update = a * v if b == 0.0 else a * v + b * g
                p.data = master - self.lr * update
            else:
                p.data = master
            self._history[pid].push(p.data, v)
            p.grad = None
        self.t += 1
        self._loaded = False
        self._master.clear()

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def velocity(self, p: Parameter) -> np.ndarray:
        return self._velocity[id(p)]


def delayed_train_step(
    optimizer: DelayedSGDM,
    model: Module,
    x: np.ndarray | Tensor,
    y: np.ndarray | Sequence[int],
) -> float:
    """One full simulator step on a (batched) sample; returns the loss."""
    optimizer.begin_step()
    optimizer.load_forward_weights()
    logits = model(x if isinstance(x, Tensor) else Tensor(x))
    loss = cross_entropy(logits, y)
    optimizer.prepare_backward()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return float(loss.data)
