"""The paper's contribution: delay mitigation for pipelined backpropagation.

* :mod:`~repro.core.compensation` — Spike Compensation coefficients
  (eq. 14; generalized form eq. 12).
* :mod:`~repro.core.prediction` — Linear Weight Prediction in velocity and
  weight-difference form (eqs. 18-19), plus the SpecTrain-style extended
  horizon (Appendix C).
* :mod:`~repro.core.mitigation` — :class:`MitigationConfig`, bundling
  spike compensation, weight prediction, weight stashing, and the
  gradient-shrinking baseline into one declarative object with the paper's
  named presets.
* :mod:`~repro.core.staleness` — delay profiles (constant, per-parameter /
  per-stage, random ASGD-style).
* :mod:`~repro.core.delayed_sgd` — :class:`DelayedSGDM`, the Appendix-G.2
  delay simulator: trains any model with stale gradients, consistent or
  inconsistent weights, and any mitigation, without a pipeline.
"""

from repro.core.compensation import SpikeConfig, spike_coefficients
from repro.core.prediction import (
    PredictionConfig,
    predict_velocity_form,
    predict_weight_diff_form,
)
from repro.core.mitigation import MitigationConfig
from repro.core.staleness import (
    ConstantDelay,
    PerParamDelay,
    RandomDelay,
    DelayProfile,
)
from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step

__all__ = [
    "SpikeConfig",
    "spike_coefficients",
    "PredictionConfig",
    "predict_velocity_form",
    "predict_weight_diff_form",
    "MitigationConfig",
    "ConstantDelay",
    "PerParamDelay",
    "RandomDelay",
    "DelayProfile",
    "DelayedSGDM",
    "delayed_train_step",
]
