"""Ring buffers of past (weight, velocity) snapshots per parameter.

The delay simulator (Appendix G.2) "has a buffer of old parameter values";
each entry here pairs the post-update weights ``w_t`` with the velocity
``v_t`` that produced them (``w_t = w_{t-1} - lr * v_t``), which is exactly
the pairing eqs. 18/19 rely on for the two LWP forms to coincide under
plain SGDM.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class ParamHistory:
    """Bounded history of (weights, velocity) snapshots for one parameter."""

    def __init__(self, maxlen: int):
        if maxlen < 1:
            raise ValueError("history needs maxlen >= 1")
        self._buf: deque[tuple[np.ndarray, np.ndarray]] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._buf)

    def push(self, w: np.ndarray, v: np.ndarray) -> None:
        """Store copies of the post-update state."""
        self._buf.append((w.copy(), v.copy()))

    def get(self, steps_back: int) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot from ``steps_back`` updates ago (0 = most recent).

        Clamped to the oldest available entry — this mirrors the pipeline
        fill phase, during which a stage has seen fewer updates than its
        structural delay.
        """
        if not self._buf:
            raise RuntimeError("history is empty; push the initial state first")
        idx = min(int(steps_back), len(self._buf) - 1)
        return self._buf[-1 - idx]

    @property
    def maxlen(self) -> int:
        return self._buf.maxlen  # type: ignore[return-value]
