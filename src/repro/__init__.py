"""repro — reproduction of "Pipelined Backpropagation at Scale" (MLSYS 2021).

This package implements, from scratch on NumPy:

* a reverse-mode autodiff engine and NN layer library (:mod:`repro.tensor`,
  :mod:`repro.nn`, :mod:`repro.models`),
* the paper's delay-mitigation methods — Spike Compensation and Linear
  Weight Prediction — plus baselines (:mod:`repro.core`),
* a cycle-accurate fine-grained pipelined-backpropagation executor and the
  pipeline timing/utilization model (:mod:`repro.pipeline`),
* the convex-quadratic staleness analysis (:mod:`repro.quadratic`),
* synthetic datasets, trainers and one experiment entry point per paper
  table/figure (:mod:`repro.data`, :mod:`repro.train`,
  :mod:`repro.experiments`).

Quickstart::

    import repro
    from repro.data import SyntheticCifar
    from repro.models import resnet_tiny
    from repro.train import PipelinedTrainer
    from repro.core import MitigationConfig

    data = SyntheticCifar(seed=0)
    model = resnet_tiny(num_classes=data.num_classes)
    trainer = PipelinedTrainer(model, data,
                               mitigation=MitigationConfig.lwp_plus_sc())
    trainer.train(num_samples=2000)
"""

from repro.version import __version__

from repro import config

__all__ = ["__version__", "config"]
