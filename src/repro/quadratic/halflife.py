"""Optimal half-lives over condition-number windows (Figures 5-7, 12).

For a spectrum dense in ``[lambda_N, lambda_1]`` with ``kappa =
lambda_1/lambda_N``, a choice of ``(eta, m)`` converges at the *worst*
rate over the window ``[eta*lambda_N, eta*lambda_1]`` — on the log axis a
sliding window of constant length ``log10(kappa)``.  The optimal rate
``r*`` minimizes that window-max over the learning rate (window position)
and optionally the momentum; the reported quantity is the error half-life
``-ln 2 / ln r*`` (paper §3.5).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import maximum_filter1d

from repro.quadratic.polynomials import MethodSpec
from repro.quadratic.roots import rate_grid


def half_life_from_rate(rate: float) -> float:
    """``-ln 2 / ln r``; infinite for non-converging rates."""
    if not np.isfinite(rate) or rate >= 1.0:
        return float("inf")
    if rate <= 0.0:
        return 0.0
    return float(-np.log(2.0) / np.log(rate))


def _window_points(kappa: float, points_per_decade: int) -> int:
    """Number of grid points spanning ``log10(kappa)`` decades."""
    if kappa < 1.0:
        raise ValueError(f"condition number must be >= 1, got {kappa}")
    return max(1, int(round(np.log10(kappa) * points_per_decade)) + 1)


def _per_momentum_best_rate(rates: np.ndarray, window: int) -> np.ndarray:
    """For each momentum row: min over window positions of the window max."""
    if window > rates.shape[1]:
        raise ValueError(
            f"condition-number window ({window}) exceeds the eta*lambda grid "
            f"({rates.shape[1]} points); widen the grid"
        )
    if window == 1:
        return rates.min(axis=1)
    # maximum_filter1d computes centered window maxima; valid positions are
    # those where the full window fits inside the row.
    maxes = maximum_filter1d(rates, size=window, axis=1, mode="nearest")
    half = window // 2
    lo = half
    hi = rates.shape[1] - (window - 1 - half)
    return maxes[:, lo:hi].min(axis=1)


def min_half_life_over_window(
    method: MethodSpec,
    delay: int,
    kappa: float,
    eta_lams: np.ndarray,
    momenta: np.ndarray,
    points_per_decade: int,
    rates: np.ndarray | None = None,
) -> float:
    """Best achievable half-life over (eta, m) for a given kappa/delay."""
    if rates is None:
        rates = rate_grid(method, delay, eta_lams, momenta)
    window = _window_points(kappa, points_per_decade)
    best = _per_momentum_best_rate(rates, window).min()
    return half_life_from_rate(float(best))


def condition_number_sweep(
    methods: dict[str, MethodSpec],
    kappas: np.ndarray,
    delay: int = 1,
    points_per_decade: int = 8,
    lo: float = -9.0,
    hi: float = 1.0,
    momenta: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Figure 5: min half-life vs condition number, per method.

    The rate grid is computed once per method and reused across kappas.
    """
    n = int((hi - lo) * points_per_decade) + 1
    eta_lams = np.logspace(lo, hi, n)
    if momenta is None:
        u = np.linspace(0.0, 5.0, 26)
        momenta = np.concatenate([[0.0], 1.0 - 10.0 ** (-u[1:])])
    out: dict[str, np.ndarray] = {}
    for name, method in methods.items():
        rates = rate_grid(method, delay, eta_lams, momenta)
        vals = [
            min_half_life_over_window(
                method, delay, k, eta_lams, momenta, points_per_decade, rates
            )
            for k in kappas
        ]
        out[name] = np.asarray(vals)
    return out


def delay_sweep(
    methods: dict[str, MethodSpec],
    delays: np.ndarray,
    kappa: float = 1e3,
    points_per_decade: int = 8,
    momenta: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Figure 6: min half-life vs delay at fixed condition number."""
    eta_lams = np.logspace(-9.0, 1.0, 10 * points_per_decade + 1)
    if momenta is None:
        u = np.linspace(0.0, 5.0, 26)
        momenta = np.concatenate([[0.0], 1.0 - 10.0 ** (-u[1:])])
    out: dict[str, np.ndarray] = {}
    for name, method in methods.items():
        vals = [
            min_half_life_over_window(
                method, int(d), kappa, eta_lams, momenta, points_per_decade
            )
            for d in delays
        ]
        out[name] = np.asarray(vals)
    return out


def momentum_curve(
    method: MethodSpec,
    delay: int,
    kappa: float,
    momenta: np.ndarray,
    points_per_decade: int = 8,
) -> np.ndarray:
    """Figure 7: best half-life as a function of momentum (eta optimized)."""
    eta_lams = np.logspace(-9.0, 1.0, 10 * points_per_decade + 1)
    rates = rate_grid(method, delay, eta_lams, momenta)
    window = _window_points(kappa, points_per_decade)
    best = _per_momentum_best_rate(rates, window)
    return np.asarray([half_life_from_rate(float(r)) for r in best])


def horizon_sweep(
    make_method,
    scales: np.ndarray,
    delay: int,
    kappa: float,
    points_per_decade: int = 8,
    momenta: np.ndarray | None = None,
) -> np.ndarray:
    """Figure 12: min half-life vs prediction scale ``alpha`` (T = alpha*D).

    ``make_method(alpha)`` must return a :class:`MethodSpec`.
    """
    eta_lams = np.logspace(-9.0, 1.0, 10 * points_per_decade + 1)
    if momenta is None:
        u = np.linspace(0.0, 5.0, 26)
        momenta = np.concatenate([[0.0], 1.0 - 10.0 ** (-u[1:])])
    vals = []
    for alpha in scales:
        method = make_method(float(alpha))
        vals.append(
            min_half_life_over_window(
                method, delay, kappa, eta_lams, momenta, points_per_decade
            )
        )
    return np.asarray(vals)
