"""Dominant roots of the characteristic polynomials and rate grids."""

from __future__ import annotations

import numpy as np

from repro.quadratic.polynomials import MethodSpec


def dominant_root(coeffs: np.ndarray) -> float:
    """``|r_max|`` — the magnitude of the largest root of ``coeffs``.

    The error of the corresponding recurrence decays like
    ``|r_max|**t`` (eq. 33); values >= 1 mean divergence/stall.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    nz = np.flatnonzero(coeffs)
    if nz.size == 0:
        return 0.0
    trimmed = coeffs[nz[0] :]
    if trimmed.size == 1:
        return 0.0
    roots = np.roots(trimmed)
    return float(np.abs(roots).max()) if roots.size else 0.0


def rate_grid(
    method: MethodSpec,
    delay: int,
    eta_lams: np.ndarray,
    momenta: np.ndarray,
) -> np.ndarray:
    """``|r_max|`` over a (momentum x eta*lambda) grid — Figure 4 data.

    Rows follow ``momenta``, columns ``eta_lams``.
    """
    eta_lams = np.asarray(eta_lams, dtype=float)
    momenta = np.asarray(momenta, dtype=float)
    out = np.empty((momenta.size, eta_lams.size))
    for i, m in enumerate(momenta):
        for j, el in enumerate(eta_lams):
            out[i, j] = dominant_root(method.coefficients(el, m, delay))
    return out


def stability_mask(rates: np.ndarray) -> np.ndarray:
    """Boolean mask of the stable region (``|r_max| < 1``)."""
    return rates < 1.0


def default_eta_lambda_grid(points_per_decade: int = 8) -> np.ndarray:
    """Figure-4 x-axis: ``eta*lambda`` from 1e-9 to 1 (log-spaced)."""
    n = 9 * points_per_decade + 1
    return np.logspace(-9.0, 0.0, n)


def default_momentum_grid(points_per_decade: int = 8) -> np.ndarray:
    """Figure-4 y-axis: ``m = 1 - 10**-u`` for u in [0, 5] plus m = 0."""
    n = 5 * points_per_decade + 1
    u = np.linspace(0.0, 5.0, n)
    return np.concatenate([[0.0], 1.0 - 10.0 ** (-u[1:])])
