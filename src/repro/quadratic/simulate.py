"""Direct simulation of delayed SGDM dynamics on quadratics.

Two uses:

* :func:`simulate_recurrence` iterates the *update-rule* form (velocity +
  delayed gradient + prediction + spike compensation) for one coordinate;
  its measured asymptotic rate must match the dominant characteristic
  root — the cross-validation of the §3.5 derivation.
* :class:`ConvexQuadratic` + :func:`run_delayed_quadratic` run the full
  vector dynamics over an eigenvalue spectrum, producing the empirical
  error traces behind the Figure 5-7 story (and the ill-conditioned
  examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def simulate_recurrence(
    eta_lam: float,
    momentum: float,
    delay: int,
    a: float = 1.0,
    b: float = 0.0,
    T: float = 0.0,
    steps: int = 400,
    w0: float = 1.0,
) -> np.ndarray:
    """Iterate one coordinate of the delayed dynamics; returns ``w`` trace.

    Uses the weight-difference LWP form (the form eq. 31 analyzes):

        w_pred = (T+1) w_{t-D} - T w_{t-D-1}
        g_t    = eta_lam * w_pred
        v_t+1  = m v_t + g_t
        w_t+1  = w_t - (a v_{t+1} + b g_t)

    (The learning rate is folded into ``eta_lam``.)
    """
    D = int(delay)
    hist = [float(w0)] * (D + 2)  # w_{t-D-1} .. w_t
    v = 0.0
    out = np.empty(steps + 1)
    out[0] = w0
    for t in range(steps):
        w_tD = hist[-1 - D]
        w_tD1 = hist[-2 - D]
        w_pred = (T + 1.0) * w_tD - T * w_tD1
        g = eta_lam * w_pred
        v = momentum * v + g
        w_new = hist[-1] - (a * v + b * g)
        hist.append(w_new)
        hist.pop(0)
        out[t + 1] = w_new
    return out


def empirical_rate(trace: np.ndarray, tail: int = 100) -> float:
    """Asymptotic per-step decay rate fitted on the trace's tail.

    Fits ``log |w_t|`` linearly over the last ``tail`` steps; returns
    ``exp(slope)``.  Returns ``inf`` if the trace diverged.
    """
    trace = np.asarray(trace, dtype=float)
    mags = np.abs(trace)
    if not np.all(np.isfinite(mags)) or mags[-1] > 1e12:
        return float("inf")
    seg = mags[-tail:]
    seg = np.where(seg < 1e-300, 1e-300, seg)
    x = np.arange(seg.size, dtype=float)
    slope = np.polyfit(x, np.log(seg), 1)[0]
    return float(np.exp(slope))


@dataclass
class ConvexQuadratic:
    """``L(w) = 0.5 * sum_i lambda_i w_i^2`` with gradient ``lambda * w``."""

    eigenvalues: np.ndarray

    @staticmethod
    def log_spectrum(
        kappa: float, n: int = 64, lambda_max: float = 1.0
    ) -> "ConvexQuadratic":
        """A spectrum log-dense in ``[lambda_max/kappa, lambda_max]``."""
        lams = np.logspace(
            np.log10(lambda_max / kappa), np.log10(lambda_max), n
        )
        return ConvexQuadratic(eigenvalues=lams)

    def loss(self, w: np.ndarray) -> float:
        return float(0.5 * np.sum(self.eigenvalues * w * w))

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.eigenvalues * w

    @property
    def condition_number(self) -> float:
        lams = self.eigenvalues
        return float(lams.max() / lams.min())


def run_delayed_quadratic(
    quad: ConvexQuadratic,
    lr: float,
    momentum: float,
    delay: int,
    a: float = 1.0,
    b: float = 0.0,
    T: float = 0.0,
    steps: int = 1000,
    w0: np.ndarray | None = None,
    form: str = "w",
) -> np.ndarray:
    """Vectorized delayed-SGDM run over the spectrum; returns error norms.

    ``form`` selects the LWP flavour: ``"w"`` (weight difference) or
    ``"v"`` (velocity, eq. 18).  Errors are parameter-space L2 norms per
    step (all coordinates start at 1).
    """
    if form not in ("w", "v"):
        raise ValueError(f"form must be 'w' or 'v', got {form!r}")
    lams = quad.eigenvalues
    n = lams.size
    w = np.ones(n) if w0 is None else np.asarray(w0, dtype=float).copy()
    v = np.zeros(n)
    D = int(delay)
    w_hist = [w.copy() for _ in range(D + 2)]
    v_hist = [v.copy() for _ in range(D + 2)]
    errs = np.empty(steps + 1)
    errs[0] = float(np.linalg.norm(w))
    for t in range(steps):
        w_tD = w_hist[-1 - D]
        if form == "w":
            w_tD1 = w_hist[-2 - D]
            w_pred = (T + 1.0) * w_tD - T * w_tD1
        else:
            v_tD = v_hist[-1 - D]
            w_pred = w_tD - lr * T * v_tD
        g = lams * w_pred
        v = momentum * v + g
        w = w - lr * (a * v + b * g)
        w_hist.append(w.copy())
        w_hist.pop(0)
        v_hist.append(v.copy())
        v_hist.pop(0)
        errs[t + 1] = float(np.linalg.norm(w))
        if not np.isfinite(errs[t + 1]) or errs[t + 1] > 1e12:
            errs[t + 1 :] = np.inf
            break
    return errs
