"""Characteristic polynomials of delayed SGDM with mitigation.

Starting from the combined-mitigation state-transition equation (eq. 39,
with the weight-difference LWP form and the linear gradient
``grad L(w) = lambda * w``):

    w_{t+1} = (1+m) w_t - m w_{t-1}
              - eta*lam*(a+b) * [(T+1) w_{t-D} - T w_{t-D-1}]
              + eta*lam*m*b   * [(T+1) w_{t-D-1} - T w_{t-D-2}]

substituting ``w_t = z^t`` and clearing ``z^{t-D-2}`` gives

    p(z) = z^{D+3} - (1+m) z^{D+2} + m z^{D+1}
           + eta*lam*(a+b)(T+1) z^2
           - eta*lam*[(a+b) T + m b (T+1)] z
           + eta*lam*m*b*T                                     (eq. 31)

All other methods are special cases: GDM ``(a,b,T)=(1,0,0)``, generalized
spike compensation ``T=0`` (eq. 29), LWP ``(a,b)=(1,0)`` (eq. 30), and
Nesterov momentum ``(a,b,T)=(m,1,0)``.  Setting special cases via
coefficient *addition* handles the index collisions that occur for small
``D``, and the extra ``z^k`` factors the unified form introduces only add
roots at zero, which never affect the dominant root.

**Sign note (eq. 28):** the paper prints the constant term of the GDM
polynomial as ``- eta*lam``; substituting ``a=1, b=0, T=0`` above (or
requiring plain GD at ``D=0, m=0`` to give the correct root
``z = 1 - eta*lam``) shows it must be ``+ eta*lam``.  Equations 29-31 are
printed consistently with the ``+`` convention; our implementation uses
the derived signs throughout and the simulation cross-checks in
``tests/test_quadratic_simulate.py`` confirm them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.compensation import spike_coefficients


def characteristic_coefficients(
    eta_lam: float,
    momentum: float,
    delay: int,
    a: float = 1.0,
    b: float = 0.0,
    T: float = 0.0,
) -> np.ndarray:
    """Polynomial coefficients (highest degree first) of eq. 31."""
    if delay < 0:
        raise ValueError(f"delay must be >= 0, got {delay}")
    D = int(delay)
    m = float(momentum)
    el = float(eta_lam)
    c = np.zeros(D + 4)
    c[0] += 1.0
    c[1] -= 1.0 + m
    c[2] += m
    c[D + 1] += el * (a + b) * (T + 1.0)
    c[D + 2] -= el * ((a + b) * T + m * b * (T + 1.0))
    c[D + 3] += el * m * b * T
    return c


@dataclass(frozen=True)
class MethodSpec:
    """A named mapping ``(momentum, delay) -> (a, b, T)``.

    ``delay_override`` pins the delay used in the *dynamics* (e.g. the
    no-delay baselines of Figure 4) independent of the sweep delay.
    """

    name: str
    abT: Callable[[float, int], tuple[float, float, float]]
    delay_override: int | None = None

    def coefficients(
        self, eta_lam: float, momentum: float, delay: int
    ) -> np.ndarray:
        d = self.delay_override if self.delay_override is not None else delay
        a, b, T = self.abT(momentum, d)
        return characteristic_coefficients(eta_lam, momentum, d, a=a, b=b, T=T)


GDM = MethodSpec("GDM", lambda m, d: (1.0, 0.0, 0.0))
GDM_NO_DELAY = MethodSpec("GDM D=0", lambda m, d: (1.0, 0.0, 0.0), delay_override=0)
NESTEROV = MethodSpec("Nesterov", lambda m, d: (m, 1.0, 0.0))
NESTEROV_NO_DELAY = MethodSpec(
    "Nesterov D=0", lambda m, d: (m, 1.0, 0.0), delay_override=0
)


def sc_method(scale: float = 1.0, name: str | None = None) -> MethodSpec:
    """Spike compensation with default coefficients at ``scale * D``."""

    def abT(m: float, d: int) -> tuple[float, float, float]:
        a, b = spike_coefficients(m, scale * d)
        return a, b, 0.0

    return MethodSpec(name or (f"SC_{scale:g}D" if scale != 1 else "SC_D"), abT)


def lwp_method(
    scale: float = 1.0, horizon: float | None = None, name: str | None = None
) -> MethodSpec:
    """Linear weight prediction with ``T = scale*D`` (or explicit T)."""

    def abT(m: float, d: int) -> tuple[float, float, float]:
        T = horizon if horizon is not None else scale * d
        return 1.0, 0.0, T

    if name is None:
        name = (
            f"LWP T={horizon:g}"
            if horizon is not None
            else (f"LWP_{scale:g}D" if scale != 1 else "LWP_D")
        )
    return MethodSpec(name, abT)


def combined_method(
    lwp_scale: float = 1.0, sc_scale: float = 1.0, name: str | None = None
) -> MethodSpec:
    """LWPw + SC combined (eq. 31 with both coefficient sets active)."""

    def abT(m: float, d: int) -> tuple[float, float, float]:
        a, b = spike_coefficients(m, sc_scale * d)
        return a, b, lwp_scale * d

    return MethodSpec(name or "LWPw_D+SC_D", abT)


#: Named methods used throughout the figures.
METHOD_REGISTRY: dict[str, MethodSpec] = {
    "gdm": GDM,
    "gdm_d0": GDM_NO_DELAY,
    "nesterov": NESTEROV,
    "nesterov_d0": NESTEROV_NO_DELAY,
    "sc": sc_method(),
    "sc_2d": sc_method(2.0),
    "lwp": lwp_method(),
    "lwp_2d": lwp_method(2.0),
    "combined": combined_method(),
}
