"""Convex-quadratic staleness analysis (paper §3.5, Appendices D-E).

Per-coordinate expected dynamics of delayed SGDM with mitigation form a
linear recurrence; its characteristic polynomial's dominant root gives the
asymptotic convergence rate.  This package computes:

* the characteristic polynomials (eqs. 28-31, rederived from eq. 39 — see
  :mod:`~repro.quadratic.polynomials` for the eq.-28 sign-typo note),
* dominant-root heatmaps over ``(eta*lambda, momentum)`` (Figure 4),
* optimal half-lives over condition-number windows (Figures 5-7, 12),
* direct simulations of the same recurrences and of full quadratics with
  eigenvalue spectra, used to cross-validate the root analysis and to run
  empirical delayed-optimization experiments.
"""

from repro.quadratic.polynomials import (
    characteristic_coefficients,
    MethodSpec,
    GDM,
    NESTEROV,
    sc_method,
    lwp_method,
    combined_method,
    METHOD_REGISTRY,
)
from repro.quadratic.roots import dominant_root, rate_grid
from repro.quadratic.halflife import (
    half_life_from_rate,
    min_half_life_over_window,
    condition_number_sweep,
    delay_sweep,
    momentum_curve,
    horizon_sweep,
)
from repro.quadratic.simulate import (
    simulate_recurrence,
    empirical_rate,
    ConvexQuadratic,
    run_delayed_quadratic,
)

__all__ = [
    "characteristic_coefficients",
    "MethodSpec",
    "GDM",
    "NESTEROV",
    "sc_method",
    "lwp_method",
    "combined_method",
    "METHOD_REGISTRY",
    "dominant_root",
    "rate_grid",
    "half_life_from_rate",
    "min_half_life_over_window",
    "condition_number_sweep",
    "delay_sweep",
    "momentum_curve",
    "horizon_sweep",
    "simulate_recurrence",
    "empirical_rate",
    "ConvexQuadratic",
    "run_delayed_quadratic",
]
