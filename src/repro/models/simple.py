"""Small stage-graph networks for tests and fast benches."""

from __future__ import annotations

from repro.models.arch import StageDef, StageGraphModel
from repro.nn import (
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    ReLU,
    Sequential,
    group_norm_for,
)
from repro.utils.rng import derive_seed, new_rng


def small_cnn(
    num_classes: int = 10,
    in_channels: int = 3,
    widths: tuple[int, ...] = (8, 16),
    with_norm: bool = True,
    seed: int = 0,
) -> StageGraphModel:
    """A plain conv chain (no skips): conv+norm+relu stages, pool, fc, loss.

    With ``len(widths)`` convs this has ``len(widths) + 3`` stages — small
    enough that the cycle-accurate pipeline executor runs in milliseconds.
    """
    stages: list[StageDef] = []
    ch = in_channels
    for i, w in enumerate(widths):
        parts = [
            Conv2d(ch, w, 3, padding=1, bias=not with_norm,
                   rng=new_rng(derive_seed(seed, "cnn", i))),
        ]
        if with_norm:
            parts.append(group_norm_for(w))
        parts.append(ReLU())
        stages.append(StageDef(f"conv{i}", module=Sequential(*parts)))
        ch = w
    stages.append(StageDef("global_pool", module=GlobalAvgPool()))
    stages.append(
        StageDef(
            "fc",
            module=Linear(ch, num_classes, rng=new_rng(derive_seed(seed, "fc"))),
        )
    )
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name="small_cnn")


class SmallCNN(StageGraphModel):
    """Class form of :func:`small_cnn` for isinstance-style use."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, seed: int = 0):
        built = small_cnn(num_classes=num_classes, in_channels=in_channels, seed=seed)
        super().__init__(built.stage_defs, name="small_cnn")


def mlp(
    in_features: int,
    num_classes: int,
    hidden: tuple[int, ...] = (32, 32),
    seed: int = 0,
) -> StageGraphModel:
    """Fully-connected stage graph on flattened inputs."""
    stages: list[StageDef] = [StageDef("flatten", module=Flatten())]
    prev = in_features
    for i, h in enumerate(hidden):
        stages.append(
            StageDef(
                f"fc{i}",
                module=Sequential(
                    Linear(prev, h, rng=new_rng(derive_seed(seed, "mlp", i))),
                    ReLU(),
                ),
            )
        )
        prev = h
    stages.append(
        StageDef(
            "head",
            module=Linear(prev, num_classes, rng=new_rng(derive_seed(seed, "head"))),
        )
    )
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name="mlp")
