"""Model registry: name -> builder, plus the paper's Table-1 stage counts."""

from __future__ import annotations

from typing import Callable

from repro.models.arch import StageGraphModel
from repro.models.resnet import (
    resnet20,
    resnet32,
    resnet44,
    resnet56,
    resnet110,
    resnet50_tiny,
    resnet_tiny,
    preact_resnet50,
)
from repro.models.simple import mlp, small_cnn
from repro.models.vgg import vgg11, vgg13, vgg16, vgg_tiny

MODEL_BUILDERS: dict[str, Callable[..., StageGraphModel]] = {
    "vgg11": vgg11,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "rn20": resnet20,
    "rn32": resnet32,
    "rn44": resnet44,
    "rn56": resnet56,
    "rn110": resnet110,
    "rn50": preact_resnet50,
    "vgg_tiny": vgg_tiny,
    "rn_tiny": resnet_tiny,
    "rn50_tiny": resnet50_tiny,
    "small_cnn": small_cnn,
}

#: Pipeline stage counts reported in the paper (Table 1 + §4 for RN50).
PAPER_STAGE_COUNTS: dict[str, int] = {
    "vgg11": 29,
    "vgg13": 33,
    "vgg16": 39,
    "rn20": 34,
    "rn32": 52,
    "rn44": 70,
    "rn56": 88,
    "rn110": 169,
    "rn50": 78,
}


def build_model(name: str, **kwargs) -> StageGraphModel:
    """Build a registered model by name."""
    if name not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        )
    return MODEL_BUILDERS[name](**kwargs)


__all__ = ["MODEL_BUILDERS", "PAPER_STAGE_COUNTS", "build_model", "mlp"]
