"""Stage-graph model representation.

The paper partitions networks into fine-grained pipeline stages: "we combine
each convolution layer and its associated normalization and non-linearity
into a single pipeline stage.  In our implementation the sum nodes between
residual blocks also become pipeline stages" (§4).  We mirror that here: a
model *is* a list of :class:`StageDef` entries, and
:class:`StageGraphModel` interprets the list either as one monolithic module
(for batch training / the Appendix-G.2 delay simulator) or hands it to
:mod:`repro.pipeline` for cycle-accurate pipelined execution.

Residual connections in a linear pipeline are modelled with a *skip stack*:
the payload travelling between stages is ``(main, skip_0, ..., skip_k)``.
A stage may push the block input (``push_skip="input"``, identity
shortcuts) or the pre-activated input (``push_skip="preact"``, downsample
shortcuts — the 1x1 conv in pre-activation ResNets consumes
``relu(norm(x))``), a stage with ``channel=-1`` transforms the top of the
skip stack (the downsample conv riding the skip path), and a ``sum`` stage
pops and adds.  ResNet blocks do not nest, so stack discipline suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, relu

StageKind = Literal["compute", "sum", "identity", "loss"]


class PreActConvUnit(Module):
    """norm -> ReLU -> conv, fused into one pipeline stage (paper §4).

    :meth:`forward_parts` additionally exposes the pre-activated tensor so a
    downsample shortcut can branch off it.
    """

    def __init__(self, norm: Module, conv: Module):
        super().__init__()
        self.norm = norm
        self.conv = conv

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(relu(self.norm(x)))

    def forward_parts(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return ``(conv(preact), preact)`` where ``preact = relu(norm(x))``."""
        o = relu(self.norm(x))
        return self.conv(o), o


@dataclass
class StageDef:
    """One pipeline stage.

    Attributes
    ----------
    name:
        Unique human-readable stage name.
    kind:
        ``"compute"`` (has a module), ``"sum"`` (residual add),
        ``"identity"`` (structural stage occupying a pipeline slot, e.g. the
        softmax stage in the ImageNet convention), or ``"loss"`` (terminal).
    module:
        The compute module; ``None`` for structural kinds.
    channel:
        ``0`` = transform the main activation; ``-1`` = transform the top of
        the skip stack (downsample convs).
    push_skip:
        ``None``, ``"input"`` (push raw stage input), or ``"preact"``
        (module must be :class:`PreActConvUnit`; push the pre-activation).
    """

    name: str
    kind: StageKind = "compute"
    module: Module | None = None
    channel: int = 0
    push_skip: str | None = None

    def __post_init__(self):
        if self.kind == "compute" and self.module is None:
            raise ValueError(f"compute stage {self.name!r} needs a module")
        if self.kind != "compute" and self.module is not None:
            raise ValueError(f"{self.kind} stage {self.name!r} cannot hold a module")
        if self.push_skip not in (None, "input", "preact"):
            raise ValueError(f"bad push_skip {self.push_skip!r} on {self.name!r}")
        if self.push_skip == "preact" and not isinstance(self.module, PreActConvUnit):
            raise ValueError(
                f"push_skip='preact' on {self.name!r} requires a PreActConvUnit"
            )
        if self.channel not in (0, -1):
            raise ValueError(f"channel must be 0 or -1, got {self.channel}")

    @property
    def has_params(self) -> bool:
        return self.module is not None and len(self.module.parameters()) > 0


class StageGraphModel(Module):
    """A model defined by a linear list of pipeline stages.

    Running :meth:`forward` executes all stages sequentially (ignoring
    structural stages), which is numerically identical to what an ideal
    drained pipeline computes — this is the basis of the Figure-16-style
    executor validation.
    """

    def __init__(self, stages: list[StageDef], name: str = "model"):
        super().__init__()
        self.name = name
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")
        if stages and stages[-1].kind != "loss":
            raise ValueError("the final stage must be the loss stage")
        self.stage_defs = list(stages)
        for i, st in enumerate(stages):
            if st.module is not None:
                setattr(self, f"stage{i}_{st.name}", st.module)

    # -- plain execution ------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:
        """Run all stages on a batch, returning logits."""
        main = x if isinstance(x, Tensor) else Tensor(x)
        skips: list[Tensor] = []
        for st in self.stage_defs:
            if st.kind == "compute":
                if st.channel == -1:
                    if not skips:
                        raise RuntimeError(f"stage {st.name!r}: empty skip stack")
                    skips[-1] = st.module(skips[-1])
                elif st.push_skip == "input":
                    skips.append(main)
                    main = st.module(main)
                elif st.push_skip == "preact":
                    main, preact = st.module.forward_parts(main)
                    skips.append(preact)
                else:
                    main = st.module(main)
            elif st.kind == "sum":
                if not skips:
                    raise RuntimeError(f"stage {st.name!r}: empty skip stack")
                main = main + skips.pop()
            # identity / loss stages are structural: no batch-mode compute
        if skips:
            raise RuntimeError(f"{len(skips)} unconsumed skip connections")
        return main

    # -- pipeline metadata ------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Total pipeline stages including structural ones (paper Table 1)."""
        return len(self.stage_defs)

    def stage_names(self) -> list[str]:
        return [s.name for s in self.stage_defs]

    def param_stage_index(self) -> dict[int, int]:
        """Map ``id(parameter) -> stage index`` for per-stage delay profiles."""
        mapping: dict[int, int] = {}
        for i, st in enumerate(self.stage_defs):
            if st.module is None:
                continue
            for p in st.module.parameters():
                mapping[id(p)] = i
        return mapping

    def describe(self) -> str:
        """Human-readable stage listing."""
        lines = [f"{self.name}: {self.num_stages} stages"]
        for i, st in enumerate(self.stage_defs):
            extra = ""
            if st.push_skip:
                extra += f" push={st.push_skip}"
            if st.channel == -1:
                extra += " [skip-path]"
            nparam = (
                sum(p.size for p in st.module.parameters()) if st.module else 0
            )
            lines.append(f"  [{i:3d}] {st.kind:8s} {st.name:24s} params={nparam}{extra}")
        return "\n".join(lines)
