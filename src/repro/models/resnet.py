"""Pre-activation ResNets (He et al. 2016b) as stage graphs.

CIFAR family (ResNet-20/32/44/56/110): 3 groups of ``n`` basic blocks with
widths (16, 32, 64); batch norm replaced by group norm (group size two) per
the paper.  Stage convention (reproduces Table 1 exactly, ``3B + 7`` stages
for ``B`` total blocks):

* stem conv — 1 stage;
* each block — 2 fused norm-relu-conv stages + 1 sum stage;
* the two group transitions — 1 downsample-conv stage each (skip path);
* tail — final norm+relu, global average pool, fc, loss — 4 stages.

ImageNet family (ResNet-50): 16 bottleneck blocks [3,4,6,3]; convention
(78 stages): stem = conv / norm / relu / maxpool (4), blocks = 3 fused conv
stages + sum (64), 4 downsample convs, tail = norm, relu, pool, fc,
softmax, loss (6).  The 3x3-stride-2 stem max-pool of the reference model
is replaced by a 2x2 pool (our pooling kernels are non-overlapping); this
changes FLOPs slightly but not the pipeline structure.

``resnet_tiny`` / ``resnet50_tiny`` are width/depth-reduced versions with
the same stage *conventions*, used by the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.models.arch import PreActConvUnit, StageDef, StageGraphModel
from repro.nn import (
    Conv2d,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    group_norm_for,
)
from repro.utils.rng import derive_seed, new_rng


def _conv(rng_seed: int, *args, **kwargs) -> Conv2d:
    return Conv2d(*args, bias=False, rng=new_rng(rng_seed), **kwargs)


def preact_resnet_cifar(
    blocks_per_group: int,
    widths: tuple[int, int, int] = (16, 32, 64),
    num_classes: int = 10,
    in_channels: int = 3,
    group_size: int = 2,
    seed: int = 0,
    name: str | None = None,
) -> StageGraphModel:
    """Build a CIFAR pre-activation ResNet stage graph.

    ``depth = 6 * blocks_per_group + 2`` (ResNet-20 has
    ``blocks_per_group=3``).
    """
    stages: list[StageDef] = []
    sid = 0

    def seed_next() -> int:
        nonlocal sid
        sid += 1
        return derive_seed(seed, "resnet", sid)

    stages.append(
        StageDef(
            "stem_conv",
            module=_conv(seed_next(), in_channels, widths[0], 3, padding=1),
        )
    )
    ch = widths[0]
    for g, width in enumerate(widths):
        for b in range(blocks_per_group):
            stride = 2 if (g > 0 and b == 0) else 1
            transition = stride != 1 or ch != width
            tag = f"g{g}b{b}"
            if transition:
                unit1 = PreActConvUnit(
                    group_norm_for(ch, group_size),
                    _conv(seed_next(), ch, width, 3, stride=stride, padding=1),
                )
                stages.append(
                    StageDef(f"{tag}_conv1", module=unit1, push_skip="preact")
                )
                stages.append(
                    StageDef(
                        f"{tag}_downsample",
                        module=_conv(seed_next(), ch, width, 1, stride=stride),
                        channel=-1,
                    )
                )
            else:
                unit1 = PreActConvUnit(
                    group_norm_for(ch, group_size),
                    _conv(seed_next(), ch, width, 3, padding=1),
                )
                stages.append(
                    StageDef(f"{tag}_conv1", module=unit1, push_skip="input")
                )
            unit2 = PreActConvUnit(
                group_norm_for(width, group_size),
                _conv(seed_next(), width, width, 3, padding=1),
            )
            stages.append(StageDef(f"{tag}_conv2", module=unit2))
            stages.append(StageDef(f"{tag}_sum", kind="sum"))
            ch = width

    stages.append(
        StageDef(
            "final_norm_relu",
            module=Sequential(group_norm_for(ch, group_size), ReLU()),
        )
    )
    stages.append(StageDef("global_pool", module=GlobalAvgPool()))
    stages.append(
        StageDef(
            "fc", module=Linear(ch, num_classes, rng=new_rng(seed_next()))
        )
    )
    stages.append(StageDef("loss", kind="loss"))
    depth = 6 * blocks_per_group + 2
    return StageGraphModel(stages, name=name or f"resnet{depth}")


def preact_resnet50(
    layers: tuple[int, int, int, int] = (3, 4, 6, 3),
    widths: tuple[int, int, int, int] = (64, 128, 256, 512),
    expansion: int = 4,
    num_classes: int = 1000,
    in_channels: int = 3,
    group_size: int = 2,
    stem_stride: int = 2,
    stem_kernel: int = 7,
    seed: int = 0,
    name: str | None = None,
) -> StageGraphModel:
    """Build a bottleneck pre-activation ResNet (ImageNet convention).

    ``stem_stride=1`` / ``stem_kernel=3`` keep small (bench-scale) inputs
    viable and the stem gradient in range without changing the stage
    structure.
    """
    stages: list[StageDef] = []
    sid = 0

    def seed_next() -> int:
        nonlocal sid
        sid += 1
        return derive_seed(seed, "resnet50", sid)

    stem_w = widths[0]
    stages.append(
        StageDef(
            "stem_conv",
            module=_conv(
                seed_next(), in_channels, stem_w, stem_kernel,
                stride=stem_stride, padding=stem_kernel // 2,
            ),
        )
    )
    stages.append(StageDef("stem_norm", module=group_norm_for(stem_w, group_size)))
    stages.append(StageDef("stem_relu", module=ReLU()))
    stages.append(StageDef("stem_pool", module=MaxPool2d(2)))

    ch = stem_w
    for g, (n_blocks, width) in enumerate(zip(layers, widths)):
        out_ch = width * expansion
        for b in range(n_blocks):
            stride = 2 if (g > 0 and b == 0) else 1
            transition = stride != 1 or ch != out_ch
            tag = f"g{g}b{b}"
            if transition:
                unit1 = PreActConvUnit(
                    group_norm_for(ch, group_size),
                    _conv(seed_next(), ch, width, 1),
                )
                stages.append(
                    StageDef(f"{tag}_conv1", module=unit1, push_skip="preact")
                )
                stages.append(
                    StageDef(
                        f"{tag}_downsample",
                        module=_conv(seed_next(), ch, out_ch, 1, stride=stride),
                        channel=-1,
                    )
                )
            else:
                unit1 = PreActConvUnit(
                    group_norm_for(ch, group_size),
                    _conv(seed_next(), ch, width, 1),
                )
                stages.append(
                    StageDef(f"{tag}_conv1", module=unit1, push_skip="input")
                )
            unit2 = PreActConvUnit(
                group_norm_for(width, group_size),
                _conv(seed_next(), width, width, 3, stride=stride, padding=1),
            )
            stages.append(StageDef(f"{tag}_conv2", module=unit2))
            unit3 = PreActConvUnit(
                group_norm_for(width, group_size),
                _conv(seed_next(), width, out_ch, 1),
            )
            stages.append(StageDef(f"{tag}_conv3", module=unit3))
            stages.append(StageDef(f"{tag}_sum", kind="sum"))
            ch = out_ch

    stages.append(StageDef("final_norm", module=group_norm_for(ch, group_size)))
    stages.append(StageDef("final_relu", module=ReLU()))
    stages.append(StageDef("global_pool", module=GlobalAvgPool()))
    stages.append(
        StageDef("fc", module=Linear(ch, num_classes, rng=new_rng(seed_next())))
    )
    stages.append(StageDef("softmax", kind="identity"))
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name=name or "resnet50")


# -- paper-size constructors -----------------------------------------------


def resnet20(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Pre-activation ResNet-20 for CIFAR (paper Table 1)."""
    return preact_resnet_cifar(3, num_classes=num_classes, seed=seed, **kw)


def resnet32(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Pre-activation ResNet-32 for CIFAR (paper Table 1)."""
    return preact_resnet_cifar(5, num_classes=num_classes, seed=seed, **kw)


def resnet44(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Pre-activation ResNet-44 for CIFAR (paper Table 1)."""
    return preact_resnet_cifar(7, num_classes=num_classes, seed=seed, **kw)


def resnet56(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Pre-activation ResNet-56 for CIFAR (paper Table 1)."""
    return preact_resnet_cifar(9, num_classes=num_classes, seed=seed, **kw)


def resnet110(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Pre-activation ResNet-110 for CIFAR (paper Table 1)."""
    return preact_resnet_cifar(18, num_classes=num_classes, seed=seed, **kw)


# -- bench-scale constructors ------------------------------------------------


def resnet_tiny(
    num_classes: int = 10,
    blocks_per_group: int = 1,
    widths: tuple[int, int, int] = (8, 16, 32),
    seed: int = 0,
    **kw,
) -> StageGraphModel:
    """Depth/width-reduced CIFAR ResNet with the same stage conventions."""
    return preact_resnet_cifar(
        blocks_per_group,
        widths=widths,
        num_classes=num_classes,
        seed=seed,
        name=f"resnet_tiny{6 * blocks_per_group + 2}",
        **kw,
    )


def resnet50_tiny(
    num_classes: int = 10,
    layers: tuple[int, int, int, int] = (1, 1, 1, 1),
    widths: tuple[int, int, int, int] = (8, 16, 24, 32),
    seed: int = 0,
    **kw,
) -> StageGraphModel:
    """Reduced bottleneck ResNet with the ImageNet stage conventions."""
    return preact_resnet50(
        layers=layers,
        widths=widths,
        expansion=2,
        num_classes=num_classes,
        seed=seed,
        name="resnet50_tiny",
        **kw,
    )
