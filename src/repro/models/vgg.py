"""VGG networks for CIFAR (Simonyan & Zisserman 2014, Fu 2019 CIFAR config).

Stage convention (reproduces Table 1 exactly: ``2*convs + 13`` stages):
each conv contributes two stages (conv / norm+relu), each of the five
max-pools is a stage, and the classifier follows the Fu (2019) layout —
Dropout, Linear(512,512), ReLU, Dropout, Linear(512,512), ReLU,
Linear(512,classes) — one stage per op (7) plus the loss stage.

The paper's batch-size-one setting precludes batch norm; we attach group
norm to each conv stage by default (``with_norm=False`` recovers the plain
Fu configuration; stage counts are unchanged because the norm fuses into
the relu stage).
"""

from __future__ import annotations

from repro.models.arch import StageDef, StageGraphModel
from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    group_norm_for,
)
from repro.utils.rng import derive_seed, new_rng

#: Feature configurations: ints are conv output channels, "M" is max-pool.
VGG_CONFIGS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M",
              512, 512, 512, "M"],
    # bench-scale config: 4 convs, 3 pools, narrow
    "vgg_tiny": [8, "M", 16, "M", 16, 16, "M"],
}


def build_vgg(
    cfg_name: str,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    with_norm: bool = True,
    group_size: int = 2,
    hidden: int = 512,
    dropout_p: float = 0.5,
    width_divisor: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> StageGraphModel:
    """Build a VGG stage graph from a named feature configuration.

    ``image_size`` fixes the classifier input width (each "M" halves the
    spatial dims); for the standard 32x32 CIFAR input the features pool to
    1x1 and the classifier input equals the final channel count (512).

    ``width_divisor`` shrinks every conv width (floor 4) without changing
    the stage structure — used by the bench-scale experiments, which must
    preserve the paper's per-network pipeline depths (Table 1) while
    staying CPU-friendly.
    """
    cfg = VGG_CONFIGS[cfg_name]
    if width_divisor > 1:
        cfg = [c if c == "M" else max(4, int(c) // width_divisor) for c in cfg]
    stages: list[StageDef] = []
    sid = 0

    def seed_next() -> int:
        nonlocal sid
        sid += 1
        return derive_seed(seed, "vgg", sid)

    ch = in_channels
    conv_i = 0
    pool_i = 0
    for item in cfg:
        if item == "M":
            stages.append(StageDef(f"pool{pool_i}", module=MaxPool2d(2)))
            pool_i += 1
            continue
        out_ch = int(item)
        stages.append(
            StageDef(
                f"conv{conv_i}",
                module=Conv2d(
                    ch, out_ch, 3, padding=1, bias=not with_norm,
                    rng=new_rng(seed_next()),
                ),
            )
        )
        post = (
            Sequential(group_norm_for(out_ch, group_size), ReLU())
            if with_norm
            else ReLU()
        )
        stages.append(StageDef(f"post{conv_i}", module=post))
        ch = out_ch
        conv_i += 1

    # classifier: Fu (2019) layout, one stage per op; the flatten is fused
    # into the first dropout stage (structural reshape, no pipeline slot).
    spatial = image_size // (2**pool_i)
    if spatial < 1:
        raise ValueError(
            f"image_size {image_size} too small for {pool_i} pooling stages"
        )
    feat = ch * spatial * spatial
    hidden_dim = hidden
    stages.append(
        StageDef(
            "drop0",
            module=Sequential(Flatten(), Dropout(dropout_p, seed=seed_next())),
        )
    )
    stages.append(
        StageDef("fc0", module=Linear(feat, hidden_dim, rng=new_rng(seed_next())))
    )
    stages.append(StageDef("fc0_relu", module=ReLU()))
    stages.append(StageDef("drop1", module=Dropout(dropout_p, seed=seed_next())))
    stages.append(
        StageDef(
            "fc1", module=Linear(hidden_dim, hidden_dim, rng=new_rng(seed_next()))
        )
    )
    stages.append(StageDef("fc1_relu", module=ReLU()))
    stages.append(
        StageDef(
            "fc2", module=Linear(hidden_dim, num_classes, rng=new_rng(seed_next()))
        )
    )
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name=name or cfg_name)


def vgg11(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """VGG-11 for CIFAR with the paper stage convention."""
    return build_vgg("vgg11", num_classes=num_classes, seed=seed, **kw)


def vgg13(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """VGG-13 for CIFAR with the paper stage convention."""
    return build_vgg("vgg13", num_classes=num_classes, seed=seed, **kw)


def vgg16(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """VGG-16 for CIFAR with the paper stage convention."""
    return build_vgg("vgg16", num_classes=num_classes, seed=seed, **kw)


def vgg_tiny(num_classes: int = 10, seed: int = 0, **kw) -> StageGraphModel:
    """Bench-scale VGG (4 convs): for 16x16 inputs pools to 2x2 spatially."""
    kw.setdefault("hidden", 32)
    kw.setdefault("dropout_p", 0.1)
    kw.setdefault("image_size", 16)
    return build_vgg("vgg_tiny", num_classes=num_classes, seed=seed, **kw)
