"""Model zoo: pre-activation ResNets, VGG, and small test networks.

Every model is expressed as a :class:`~repro.models.arch.StageGraphModel`
— a linear sequence of pipeline-stage definitions (compute stages, residual
sum nodes, structural softmax/loss stages).  The same object trains as an
ordinary module *and* partitions 1:1 into fine-grained pipeline stages,
reproducing the paper's Table 1 stage counts exactly.
"""

from repro.models.arch import (
    StageDef,
    StageGraphModel,
    PreActConvUnit,
)
from repro.models.resnet import (
    preact_resnet_cifar,
    preact_resnet50,
    resnet20,
    resnet32,
    resnet44,
    resnet56,
    resnet110,
    resnet_tiny,
    resnet50_tiny,
)
from repro.models.vgg import vgg11, vgg13, vgg16, vgg_tiny
from repro.models.simple import SmallCNN, small_cnn, mlp
from repro.models.registry import build_model, MODEL_BUILDERS, PAPER_STAGE_COUNTS

__all__ = [
    "StageDef",
    "StageGraphModel",
    "PreActConvUnit",
    "preact_resnet_cifar",
    "preact_resnet50",
    "resnet20",
    "resnet32",
    "resnet44",
    "resnet56",
    "resnet110",
    "resnet_tiny",
    "resnet50_tiny",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg_tiny",
    "SmallCNN",
    "small_cnn",
    "mlp",
    "build_model",
    "MODEL_BUILDERS",
    "PAPER_STAGE_COUNTS",
]
