"""The serving front-end: futures in, micro-batched pipeline, logits out.

:class:`PipelineServer` wires the serving subsystem together::

    submit(x) ──> DynamicBatcher ──> dispatcher thread ──> InferenceStream
       │            (bounded,          (coalesce into        (sim/threaded/
       │             Overloaded)        (B,...) packets)      process rings)
       │                                                          │
       └────────────── Future.set_result(logits) <── collector thread

Two daemon threads own the pipeline stream's two ends — the
**dispatcher** pulls coalesced packets from the batcher and pushes them
into the stream (spinning politely under backpressure), the
**collector** pulls finished logits out, slices them back into
per-request rows, resolves the futures and records
:class:`~repro.serve.stats.RequestTiming` entries.  The stream is SPSC
by construction (one submitting thread, one polling thread), which is
exactly the discipline the shared-memory rings require.

Saturation behavior is explicit end to end: the batcher's bounded queue
turns overload into :class:`~repro.serve.batcher.Overloaded` at
``submit`` (HTTP 429 on the wire), the stream's bounded in-flight window
turns pipeline congestion into dispatcher backpressure, and nothing
anywhere grows without bound or drops silently — ``stop()`` drains
every admitted request before tearing the stream down, failing leftover
futures loudly if the pipeline died.

A stdlib HTTP endpoint (:meth:`PipelineServer.serve_http`) exposes
``POST /infer``, ``GET /stats`` and ``GET /healthz`` for curl-level
serving without any third-party dependency.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.pipeline.inference import InferenceStreamError
from repro.serve.batcher import DynamicBatcher, Overloaded, PendingRequest
from repro.serve.session import InferenceSession
from repro.serve.stats import RequestTiming, ServingStats


class PipelineServer:
    """Serve an :class:`~repro.serve.session.InferenceSession` (module
    docstring).  Not started at construction — call :meth:`start` (or
    use as a context manager) so tests can stage deterministic request
    mixes before the dispatcher begins draining.

    SLO knobs: ``max_batch`` (packet width cap, default the session's
    micro-batch), ``max_wait`` (coalescing deadline on the oldest
    queued request), ``max_queue`` (admission bound — beyond it,
    ``submit`` raises :class:`Overloaded`).
    """

    def __init__(
        self,
        session: InferenceSession,
        max_batch: int | None = None,
        max_wait: float = 0.002,
        max_queue: int = 64,
        result_timeout: float = 30.0,
    ):
        max_batch = session.micro_batch if max_batch is None else max_batch
        if max_batch > session.micro_batch:
            raise ValueError(
                f"max_batch ({max_batch}) cannot exceed the session "
                f"micro_batch ({session.micro_batch}) — ring slots are "
                "sized for the session width"
            )
        self.session = session
        self.batcher = DynamicBatcher(
            max_batch=max_batch, max_wait=max_wait, max_queue=max_queue
        )
        self.stats = ServingStats()
        self.stats.set_gauge_source(
            lambda: {
                "pending": self.batcher.pending,
                "in_flight": self.in_flight,
            }
        )
        self.result_timeout = float(result_timeout)
        self._ready_reason = "serving"
        self._stream = None
        self._pending: dict[int, list[PendingRequest]] = {}
        self._pending_lock = threading.Lock()
        self._packet_ids = iter(range(1 << 62))
        self._stop = threading.Event()
        self._dispatcher_done = threading.Event()
        self._error: BaseException | None = None
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._http_server = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "PipelineServer":
        if self._started:
            return self
        if self._stopped:
            # stop() closed the batcher for good (its drain guarantees
            # depend on it); a restarted server would open a fresh
            # stream whose requests could never be admitted
            raise RuntimeError(
                "PipelineServer is single-use: this one was stopped; "
                "build a new server to serve again"
            )
        try:
            self._stream = self.session.open_stream()
        except BaseException as exc:
            # a failed start can never serve the requests staged before
            # it — fail their futures now instead of hanging them
            self._error = exc
            self._stopped = True
            self._fail_pending(exc)
            raise
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop, name="serve-dispatch",
                daemon=True,
            ),
            threading.Thread(
                target=self._collect_loop, name="serve-collect", daemon=True
            ),
        ]
        self._started = True
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Drain admitted requests, then tear the pipeline down (the
        server is single-use: a stopped server cannot be restarted)."""
        if not self._started:
            # never (successfully) started — but requests may have been
            # staged before a failed start(); they can never complete,
            # so fail them loudly rather than leaving futures hanging
            self._stopped = True
            self._fail_pending(
                self._error or Overloaded("server stopped")
            )
            return
        self._stopped = True
        self.batcher.close()
        # the dispatcher exits once the batcher is drained; the
        # collector once every in-flight packet has come back
        self._dispatcher_done.wait(self.result_timeout)
        deadline = time.monotonic() + self.result_timeout
        while time.monotonic() < deadline and self._error is None:
            with self._pending_lock:
                if not self._pending:
                    break
            time.sleep(1e-4)
        self._stop.set()
        for t in self._threads:
            t.join(self.result_timeout)
        self._threads = []
        self._fail_pending(
            self._error or Overloaded("server stopped")
        )
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self._started = False
        self.http_stop()

    def __enter__(self) -> "PipelineServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- readiness (drain state for rolling weight swaps) --------------------

    @property
    def ready(self) -> bool:
        """Readiness, as distinct from liveness: a ready server admits
        new traffic; a draining one only finishes what it admitted.
        The fleet router excludes not-ready replicas from dispatch."""
        return (
            self._started
            and not self._stopped
            and self._error is None
            and not self.batcher.draining
        )

    @property
    def ready_reason(self) -> str:
        if self._error is not None:
            return f"failed: {self._error!r}"
        if self._stopped:
            return "stopped"
        if not self._started:
            return "not started"
        if self.batcher.draining:
            return self._ready_reason
        return "serving"

    def mark_draining(self, reason: str = "draining") -> None:
        """Stop admitting new requests (``submit`` raises
        :class:`Overloaded`; ``/readyz`` reports 503) while every
        already-admitted request still completes.  Reversible with
        :meth:`mark_ready` — though a weight hot-swap instead retires
        this server once drained and starts a fresh one."""
        self._ready_reason = reason
        self.batcher.set_draining(True)

    def mark_ready(self) -> None:
        self._ready_reason = "serving"
        self.batcher.set_draining(False)

    @property
    def in_flight(self) -> int:
        """Requests dispatched into the pipeline whose logits have not
        come back yet (complements the batcher's ``pending`` gauge)."""
        with self._pending_lock:
            return sum(len(batch) for batch in self._pending.values())

    # -- request entry ------------------------------------------------------

    def submit_request(
        self,
        x: np.ndarray,
        slo_class: str | None = None,
        max_wait: float | None = None,
    ) -> PendingRequest:
        """Admit one request; returns its :class:`PendingRequest`
        (monotone ``request_id`` + the Future resolving to its logits
        row).  Raises :class:`Overloaded` when the admission queue is
        full or the server is draining (the backpressure contract) and
        re-raises a pipeline failure if the stream has died.

        ``slo_class`` tags the request through the batcher into the
        stats; ``max_wait`` overrides the coalescing deadline for this
        request only (the fleet's per-class slack pricing)."""
        if self._error is not None:
            raise InferenceStreamError(
                f"serving pipeline failed: {self._error!r}"
            ) from self._error
        x = np.asarray(x, dtype=self.session.dtype)
        expected = self.session.sample_shape
        if expected is not None and tuple(x.shape) != expected:
            raise ValueError(
                f"request shape {tuple(x.shape)} does not match the "
                f"session's sample shape {expected}"
            )
        try:
            return self.batcher.submit(
                x, max_wait=max_wait, slo_class=slo_class
            )
        except Overloaded:
            self.stats.record_rejected(slo_class)
            raise

    def submit(self, x: np.ndarray) -> Future:
        """:meth:`submit_request`, returning just the Future."""
        return self.submit_request(x).future

    def infer_one(self, x: np.ndarray, timeout: float | None = None):
        """Convenience: submit + wait; returns the logits row."""
        return self.submit(x).result(
            self.result_timeout if timeout is None else timeout
        )

    # -- worker loops -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        try:
            while not self._stop.is_set():
                batch = self.batcher.next_batch(timeout=0.05)
                if not batch:
                    if self.batcher.closed:
                        return
                    continue
                X = np.stack([req.x for req in batch])
                pid = next(self._packet_ids)
                with self._pending_lock:
                    self._pending[pid] = batch
                backoff = 1e-5
                while not self._stream.submit(pid, pid, X):
                    # pipeline full: back off until the collector frees
                    # a slot (bounded by stream capacity)
                    if self._stop.is_set():
                        return
                    time.sleep(backoff)
                    backoff = min(backoff * 2.0, 1e-3)
        except BaseException as exc:
            self._error = exc
            self._fail_pending(exc)
        finally:
            self._dispatcher_done.set()

    def _collect_loop(self) -> None:
        batch: list[PendingRequest] | None = None
        idle_sleep = 1e-5
        try:
            while not self._stop.is_set():
                results = self._stream.poll()
                if not results:
                    # exponential idle backoff (same shape as the
                    # process stage workers): an idle server must not
                    # burn a core polling; the cap stays well under the
                    # default coalescing deadline so loaded-path
                    # latency is unaffected
                    time.sleep(idle_sleep)
                    idle_sleep = min(idle_sleep * 2.0, 1e-3)
                    continue
                idle_sleep = 1e-5
                t_now = time.monotonic()
                for pid, _start, logits in results:
                    with self._pending_lock:
                        batch = self._pending.pop(pid, None)
                    if batch is None:  # pragma: no cover - protocol bug
                        raise InferenceStreamError(
                            f"result for unknown packet {pid}"
                        )
                    if logits.shape[0] != len(batch):
                        raise InferenceStreamError(
                            f"packet {pid}: {logits.shape[0]} result rows "
                            f"for {len(batch)} requests"
                        )
                    for i, req in enumerate(batch):
                        req.future.set_result(np.array(logits[i], copy=True))
                        self.stats.record(
                            RequestTiming(
                                request_id=req.request_id,
                                queue_wait=req.t_dispatch - req.t_submit,
                                pipeline_time=t_now - req.t_dispatch,
                                latency=t_now - req.t_submit,
                                batch_size=len(batch),
                                slo_class=req.slo_class,
                            ),
                            t_now,
                        )
                    batch = None  # fully resolved
        except BaseException as exc:
            self._error = exc
            # a batch popped from _pending but not fully resolved would
            # be invisible to _fail_pending — fail its futures here
            for req in batch or []:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.stats.record_failed()
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        """Fail every future still in flight — loudly, never silently."""
        # stop admitting and release the batcher's coalescing deadline:
        # without the close, a request younger than max_wait would not
        # be returned by the drain loop below and its future would hang
        self.batcher.close()
        with self._pending_lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for batch in leftovers:
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.stats.record_failed()
        while True:
            drained = self.batcher.next_batch(timeout=0.0)
            if not drained:
                break
            for req in drained:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.stats.record_failed()

    # -- HTTP front door ----------------------------------------------------

    def serve_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Start the stdlib-socket HTTP endpoint on ``host:port`` (port
        0 = ephemeral).  Returns the bound ``(host, port)``.

        * ``POST /infer`` with body ``{"x": <nested list>}`` (optional
          ``"class"`` SLO tag) -> ``{"request_id", "logits",
          "latency_ms"}`` (429 when overloaded, 400 on malformed
          input);
        * ``GET /stats`` -> :meth:`ServingStats.snapshot`;
        * ``GET /healthz`` -> liveness + the weight fingerprint (shape
          unchanged since PR 5 — probes keyed on it keep working);
        * ``GET /readyz`` -> readiness: 200 while admitting, 503 with
          the reason + fingerprint while draining/reloading/stopped,
          so a router health-checks replicas out during a hot-swap.
        """
        if not self._started:
            raise RuntimeError("start() the server before serve_http()")
        server = _make_http_server(self, host, port)
        self._http_server = server
        thread = threading.Thread(
            target=server.serve_forever, name="serve-http", daemon=True
        )
        thread.start()
        return server.server_address[0], server.server_address[1]

    def http_stop(self) -> None:
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            self._http_server = None


def _make_http_server(
    pipeline_server: PipelineServer, host: str, port: int
) -> ThreadingHTTPServer:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1.0"

        def log_message(self, *args) -> None:  # quiet by default
            pass

        def _reply(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                # liveness only — response shape is stable (PR 5)
                self._reply(
                    200,
                    {
                        "ok": pipeline_server._error is None,
                        "model": pipeline_server.session.model.name,
                        "fingerprint": pipeline_server.session.fingerprint,
                        "runtime": pipeline_server.session.runtime,
                    },
                )
            elif self.path == "/readyz":
                ready = pipeline_server.ready
                self._reply(
                    200 if ready else 503,
                    {
                        "ready": ready,
                        "reason": pipeline_server.ready_reason,
                        "fingerprint": pipeline_server.session.fingerprint,
                        "pending": pipeline_server.batcher.pending,
                        "in_flight": pipeline_server.in_flight,
                    },
                )
            elif self.path == "/stats":
                self._reply(
                    200,
                    {
                        **pipeline_server.stats.snapshot(),
                        "precision": pipeline_server.session.precision.mode,
                    },
                )
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if self.path != "/infer":
                self._reply(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
                x = np.asarray(payload["x"], dtype=pipeline_server.session.dtype)
                slo_class = payload.get("class")
                if slo_class is not None and not isinstance(slo_class, str):
                    raise TypeError("'class' must be a string")
            except (ValueError, KeyError, TypeError) as exc:
                self._reply(400, {"error": f"bad request body: {exc!r}"})
                return
            t0 = time.monotonic()
            try:
                request = pipeline_server.submit_request(
                    x, slo_class=slo_class
                )
                logits = request.future.result(
                    pipeline_server.result_timeout
                )
            except Overloaded as exc:
                self._reply(429, {"error": str(exc)})
                return
            except ValueError as exc:
                self._reply(400, {"error": str(exc)})
                return
            except BaseException as exc:
                self._reply(500, {"error": repr(exc)})
                return
            self._reply(
                200,
                {
                    "request_id": request.request_id,
                    "logits": np.asarray(logits).tolist(),
                    "latency_ms": (time.monotonic() - t0) * 1e3,
                },
            )

    return ThreadingHTTPServer((host, port), Handler)
