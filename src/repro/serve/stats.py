"""Per-request latency accounting for the serving front-end.

Every completed request contributes three measured intervals:

``queue_wait``
    admission -> dispatch into a micro-batch packet (the batcher's
    coalescing delay plus any backpressure stall);
``pipeline_time``
    dispatch -> logits out of the pipeline;
``latency``
    admission -> response (the end-to-end number an SLO is written
    against; ``latency = queue_wait + pipeline_time`` up to clock
    reads).

:class:`ServingStats` aggregates them into the usual tail percentiles
(p50/p95/p99) plus counters that make dropped work impossible to miss:
``completed + rejected + failed`` must account for every admission
attempt, and the serving smoke test asserts exactly that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


def _percentiles(values: list[float]) -> dict:
    if not values:
        return {"p50": None, "p95": None, "p99": None, "mean": None}
    arr = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
    }


@dataclass
class RequestTiming:
    """Measured intervals of one completed request (seconds)."""

    request_id: int
    queue_wait: float
    pipeline_time: float
    latency: float
    batch_size: int = 1


class ServingStats:
    """Thread-safe accumulator of serving outcomes.

    ``record`` is called by the server's collector thread per completed
    request; ``snapshot`` renders percentiles and counters at any point
    (cheap enough to serve from the ``/stats`` HTTP endpoint).

    Counters (``completed``/``rejected``/``failed``) are cumulative for
    the server's lifetime, but per-request timings are kept in a
    **bounded sliding window** of the most recent ``window`` requests —
    a long-lived server must not grow without bound, and recent-window
    percentiles are what an SLO dashboard wants anyway.  The window size
    is reported in every snapshot so truncation is never silent.
    """

    def __init__(self, window: int = 65536) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        from collections import deque

        self._lock = threading.Lock()
        self._timings: "deque[RequestTiming]" = deque(maxlen=int(window))
        self.window = int(window)
        self._completed = 0
        self.rejected = 0
        self.failed = 0
        self._t_first: float | None = None
        self._t_last: float | None = None

    # -- recording ----------------------------------------------------------

    def record(self, timing: RequestTiming, t_now: float) -> None:
        with self._lock:
            self._timings.append(timing)
            self._completed += 1
            if self._t_first is None:
                self._t_first = t_now - timing.latency
            self._t_last = t_now

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    # -- reading ------------------------------------------------------------

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    def timings(self) -> list[RequestTiming]:
        """The retained sliding window, oldest first (the full history
        only while fewer than ``window`` requests have completed)."""
        with self._lock:
            return list(self._timings)

    def snapshot(self) -> dict:
        """Percentiles + counters as one JSON-ready dict (seconds).
        ``completed`` is cumulative; the percentile fields cover the
        most recent ``min(completed, window)`` requests."""
        with self._lock:
            timings = list(self._timings)
            completed = self._completed
            rejected = self.rejected
            failed = self.failed
            span = (
                (self._t_last - self._t_first)
                if self._t_first is not None and self._t_last is not None
                else 0.0
            )
        latency = _percentiles([t.latency for t in timings])
        queue_wait = _percentiles([t.queue_wait for t in timings])
        pipeline = _percentiles([t.pipeline_time for t in timings])
        batch_sizes = [t.batch_size for t in timings]
        return {
            "completed": completed,
            "window": self.window,
            "window_filled": len(timings),
            "rejected": rejected,
            "failed": failed,
            "latency_s": latency,
            "queue_wait_s": queue_wait,
            "pipeline_s": pipeline,
            "mean_batch_size": (
                float(np.mean(batch_sizes)) if batch_sizes else None
            ),
            "span_s": span,
            "throughput_rps": (
                completed / span if span > 0 else None
            ),
        }
