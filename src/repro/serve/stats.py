"""Per-request latency accounting for the serving front-end.

Every completed request contributes three measured intervals:

``queue_wait``
    admission -> dispatch into a micro-batch packet (the batcher's
    coalescing delay plus any backpressure stall);
``pipeline_time``
    dispatch -> logits out of the pipeline;
``latency``
    admission -> response (the end-to-end number an SLO is written
    against; ``latency = queue_wait + pipeline_time`` up to clock
    reads).

:class:`ServingStats` aggregates them into the usual tail percentiles
(p50/p95/p99) plus counters that make dropped work impossible to miss:
``completed + rejected + failed`` must account for every admission
attempt, and the serving smoke test asserts exactly that.

For the fleet router two more surfaces ride on the snapshot:

* **gauges** — the *current* batcher ``pending`` and in-flight request
  count (wired by the owning server via :meth:`set_gauge_source`), the
  queue-depth signal least-loaded dispatch and the autoscaler read;
* **per-class accounting** — timings and rejections tagged with an SLO
  class aggregate into per-class percentiles and
  ``completed/rejected_by_class`` counters, which is what a per-class
  deadline is asserted against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np


def _percentiles(values: list[float]) -> dict:
    if not values:
        return {"p50": None, "p95": None, "p99": None, "mean": None}
    arr = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
    }


@dataclass
class RequestTiming:
    """Measured intervals of one completed request (seconds)."""

    request_id: int
    queue_wait: float
    pipeline_time: float
    latency: float
    batch_size: int = 1
    #: SLO class tag (``None`` for untagged single-server traffic)
    slo_class: str | None = None
    #: monotonic completion time, stamped by :meth:`ServingStats.record`
    #: (lets pressure signals expire stale readings by wall clock)
    t_done: float = 0.0


class ServingStats:
    """Thread-safe accumulator of serving outcomes.

    ``record`` is called by the server's collector thread per completed
    request; ``snapshot`` renders percentiles and counters at any point
    (cheap enough to serve from the ``/stats`` HTTP endpoint).

    Counters (``completed``/``rejected``/``failed``) are cumulative for
    the server's lifetime, but per-request timings are kept in a
    **bounded sliding window** of the most recent ``window`` requests —
    a long-lived server must not grow without bound, and recent-window
    percentiles are what an SLO dashboard wants anyway.  The window size
    is reported in every snapshot so truncation is never silent.
    """

    def __init__(self, window: int = 65536) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        from collections import deque

        self._lock = threading.Lock()
        self._timings: "deque[RequestTiming]" = deque(maxlen=int(window))
        self.window = int(window)
        self._completed = 0
        self.rejected = 0
        self.failed = 0
        self._completed_by_class: dict[str, int] = {}
        self._rejected_by_class: dict[str, int] = {}
        self._gauge_source: Callable[[], dict] | None = None
        self._t_first: float | None = None
        self._t_last: float | None = None

    # -- recording ----------------------------------------------------------

    def record(self, timing: RequestTiming, t_now: float) -> None:
        with self._lock:
            timing.t_done = t_now
            self._timings.append(timing)
            self._completed += 1
            if timing.slo_class is not None:
                self._completed_by_class[timing.slo_class] = (
                    self._completed_by_class.get(timing.slo_class, 0) + 1
                )
            if self._t_first is None:
                self._t_first = t_now - timing.latency
            self._t_last = t_now

    def record_rejected(self, slo_class: str | None = None) -> None:
        with self._lock:
            self.rejected += 1
            if slo_class is not None:
                self._rejected_by_class[slo_class] = (
                    self._rejected_by_class.get(slo_class, 0) + 1
                )

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def set_gauge_source(self, source: Callable[[], dict] | None) -> None:
        """Register the callable that reports the owner's *current*
        queue gauges (``{"pending": int, "in_flight": int}``).  Called
        by :class:`~repro.serve.server.PipelineServer` at construction;
        a stats object without one snapshots ``None`` gauges."""
        with self._lock:
            self._gauge_source = source

    # -- reading ------------------------------------------------------------

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    def timings(self) -> list[RequestTiming]:
        """The retained sliding window, oldest first (the full history
        only while fewer than ``window`` requests have completed)."""
        with self._lock:
            return list(self._timings)

    def recent_queue_wait_p95(
        self, last: int = 256, horizon_s: float | None = 2.0
    ) -> float | None:
        """p95 queue-wait over the most recent ``last`` completed
        requests — the autoscaler's scale-out signal and the admission
        controller's deadline-pressure estimate.  ``None`` until
        anything has completed.

        Readings older than ``horizon_s`` (by completion wall clock)
        are **expired**: a pressure signal must decay when traffic
        stops completing, otherwise one turbulent burst — e.g. the
        compute hiccup of a rolling weight swap — latches the p95 above
        an admission threshold forever and starves the very class the
        threshold protects (rejected requests produce no completions,
        so the window would never refresh).  Pass ``horizon_s=None``
        for the raw completion-count window."""
        import time as _time

        cutoff = (
            _time.monotonic() - horizon_s if horizon_s is not None else None
        )
        with self._lock:
            waits = [
                t.queue_wait
                for t in list(self._timings)[-last:]
                if cutoff is None or t.t_done >= cutoff
            ]
        if not waits:
            return None
        return float(np.percentile(np.asarray(waits), 95.0))

    def snapshot(self) -> dict:
        """Percentiles + counters as one JSON-ready dict (seconds).
        ``completed`` is cumulative; the percentile fields cover the
        most recent ``min(completed, window)`` requests.  ``pending`` /
        ``in_flight`` are *instantaneous* gauges from the owning
        server's queue (``None`` when no gauge source is wired);
        ``per_class`` breaks the window's percentiles down by SLO
        class for tagged traffic."""
        with self._lock:
            timings = list(self._timings)
            completed = self._completed
            rejected = self.rejected
            failed = self.failed
            completed_by_class = dict(self._completed_by_class)
            rejected_by_class = dict(self._rejected_by_class)
            gauge_source = self._gauge_source
            span = (
                (self._t_last - self._t_first)
                if self._t_first is not None and self._t_last is not None
                else 0.0
            )
        gauges = {"pending": None, "in_flight": None}
        if gauge_source is not None:
            gauges.update(gauge_source())
        latency = _percentiles([t.latency for t in timings])
        queue_wait = _percentiles([t.queue_wait for t in timings])
        pipeline = _percentiles([t.pipeline_time for t in timings])
        batch_sizes = [t.batch_size for t in timings]
        per_class: dict[str, dict] = {}
        for cls in sorted(
            {t.slo_class for t in timings if t.slo_class is not None}
        ):
            cls_t = [t for t in timings if t.slo_class == cls]
            per_class[cls] = {
                "window_filled": len(cls_t),
                "latency_s": _percentiles([t.latency for t in cls_t]),
                "queue_wait_s": _percentiles(
                    [t.queue_wait for t in cls_t]
                ),
            }
        return {
            "completed": completed,
            "window": self.window,
            "window_filled": len(timings),
            "rejected": rejected,
            "failed": failed,
            "pending": gauges["pending"],
            "in_flight": gauges["in_flight"],
            "completed_by_class": completed_by_class,
            "rejected_by_class": rejected_by_class,
            "per_class": per_class,
            "latency_s": latency,
            "queue_wait_s": queue_wait,
            "pipeline_s": pipeline,
            "mean_batch_size": (
                float(np.mean(batch_sizes)) if batch_sizes else None
            ),
            "span_s": span,
            "throughput_rps": (
                completed / span if span > 0 else None
            ),
        }
