"""Closed-loop load generation and the sequential-forward baseline.

The serving benchmark's question is the paper's question at inference
time: does pipelining + micro-batching beat one-request-at-a-time
forward execution under real load?  The harness here answers it with a
**closed-loop** generator: ``concurrency`` client threads, each holding
exactly one request in flight — submit, wait for the logits, submit the
next.  Offered load therefore adapts to the server (the classic
closed-loop property), and sweeping ``concurrency`` sweeps offered load.

Rejections (:class:`~repro.serve.batcher.Overloaded`) are counted and
**retried after a backoff** — a closed-loop client never abandons its
request, so a run completes exactly ``num_requests`` responses or fails
loudly; silent drops are structurally impossible.

The baseline (:class:`SequentialServer`) is the no-pipeline strawman the
benchmark compares against: a lock around a single-request
``model.forward``.  It is measured through the *same* closed-loop
harness, so its p99 honestly includes the queueing delay sequential
execution imposes on concurrent clients.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.batcher import Overloaded
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class LoadGenResult:
    """Outcome of one closed-loop run (seconds unless suffixed)."""

    label: str
    num_requests: int
    concurrency: int
    duration_s: float
    throughput_rps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    rejected_retries: int
    #: request_id -> logits row, for response-correctness checks
    outputs: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "label": self.label,
            "requests": self.num_requests,
            "concurrency": self.concurrency,
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.latency_p50 * 1e3, 3),
            "p95_ms": round(self.latency_p95 * 1e3, 3),
            "p99_ms": round(self.latency_p99 * 1e3, 3),
            "rejected_retries": self.rejected_retries,
        }


def count_bad_outputs(
    outputs: dict,
    reference: np.ndarray,
    pool_size: int,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> int:
    """Responses from a :class:`LoadGenResult` that disagree with the
    offline reference: wrong argmax (prediction-level, zero tolerance)
    or logits outside ``rtol/atol`` of ``reference[rid % pool_size]``.

    Dynamic batch composition varies with timing while BLAS rounding
    varies with GEMM width, so loadgen-level checks use this
    tolerance-based form; the *bit-level* contract (same packets ->
    same bits) is pinned separately in ``tests/test_serve_session.py``.
    """
    bad = 0
    for rid, logits in outputs.items():
        want = reference[rid % pool_size]
        if np.argmax(logits) != np.argmax(want) or not np.allclose(
            logits, want, rtol=rtol, atol=atol
        ):
            bad += 1
    return bad


class SequentialServer:
    """The no-pipeline baseline: one request at a time through
    ``model.forward`` (eval mode, no grad), serialized by a lock —
    submit blocks until the logits are ready."""

    def __init__(self, model):
        from repro.pipeline.inference import modules_eval_mode

        self.model = model
        self._lock = threading.Lock()
        self._eval_guard = modules_eval_mode([model])
        self._eval_guard.__enter__()

    def infer_one(self, x: np.ndarray) -> np.ndarray:
        with self._lock:
            with no_grad():
                return self.model(Tensor(np.asarray(x)[None])).data[0]

    def close(self) -> None:
        if self._eval_guard is not None:
            self._eval_guard.__exit__(None, None, None)
            self._eval_guard = None


def sequential_closed_loop(
    model,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int,
    label: str = "sequential",
) -> "LoadGenResult":
    """Closed-loop run against the :class:`SequentialServer` baseline
    (construction, teardown and eval-mode restore handled here — the
    shared harness of the serving experiment and benchmark)."""
    seq = SequentialServer(model)
    try:
        return run_closed_loop(
            seq.infer_one, x_pool, num_requests, concurrency=concurrency,
            label=label,
        )
    finally:
        seq.close()


def pipelined_closed_loop(
    session,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int,
    max_batch: int,
    max_wait: float,
    max_queue: int | None = None,
    label: str | None = None,
) -> tuple["LoadGenResult", dict]:
    """Closed-loop run against a :class:`~repro.serve.server.
    PipelineServer` over ``session``; returns ``(result, stats
    snapshot)``.  ``max_queue`` defaults to ``max(64, 4 * max_batch)``."""
    from repro.serve.server import PipelineServer

    server = PipelineServer(
        session,
        max_batch=max_batch,
        max_wait=max_wait,
        max_queue=max(64, 4 * max_batch) if max_queue is None else max_queue,
    )
    with server:
        result = run_closed_loop(
            server.infer_one, x_pool, num_requests,
            concurrency=concurrency,
            label=label or f"pipelined[{session.runtime}]",
        )
        snapshot = server.stats.snapshot()
    return result, snapshot


def run_closed_loop(
    submit_fn,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int = 4,
    label: str = "run",
    retry_backoff: float = 1e-4,
    timeout: float = 120.0,
) -> LoadGenResult:
    """Drive ``num_requests`` requests through ``submit_fn`` with
    ``concurrency`` closed-loop clients.

    ``submit_fn(x) -> logits`` must block until the response is ready
    (:meth:`PipelineServer.infer_one` or
    :meth:`SequentialServer.infer_one`); an :class:`Overloaded` raise is
    counted and retried after ``retry_backoff`` seconds.  Inputs are
    drawn round-robin from ``x_pool`` by request id, so a run's request
    -> input mapping is deterministic and the outputs dict can be
    checked against an offline reference.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    concurrency = max(1, min(int(concurrency), num_requests))
    counter = iter(range(num_requests))
    counter_lock = threading.Lock()
    latencies: list[float] = []
    outputs: dict[int, np.ndarray] = {}
    results_lock = threading.Lock()
    rejected = [0]
    errors: list[BaseException] = []
    deadline = time.monotonic() + timeout

    def client() -> None:
        while True:
            with counter_lock:
                rid = next(counter, None)
            if rid is None:
                return
            x = x_pool[rid % x_pool.shape[0]]
            t0 = time.monotonic()
            while True:
                try:
                    logits = submit_fn(x)
                    break
                except Overloaded:
                    with results_lock:
                        rejected[0] += 1
                    if time.monotonic() >= deadline:
                        errors.append(
                            TimeoutError(
                                f"request {rid} starved past {timeout}s of "
                                "Overloaded retries"
                            )
                        )
                        return
                    time.sleep(retry_backoff)
                except BaseException as exc:
                    errors.append(exc)
                    return
            latency = time.monotonic() - t0
            with results_lock:
                latencies.append(latency)
                outputs[rid] = np.asarray(logits)

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    t_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    duration = time.monotonic() - t_start
    if errors:
        raise RuntimeError(
            f"load generator hit {len(errors)} errors; first: {errors[0]!r}"
        ) from errors[0]
    if len(outputs) != num_requests:
        raise RuntimeError(
            f"load generator lost requests: {len(outputs)} responses for "
            f"{num_requests} requests"
        )
    arr = np.asarray(latencies)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return LoadGenResult(
        label=label,
        num_requests=num_requests,
        concurrency=concurrency,
        duration_s=duration,
        throughput_rps=num_requests / duration if duration > 0 else 0.0,
        latency_p50=float(p50),
        latency_p95=float(p95),
        latency_p99=float(p99),
        rejected_retries=rejected[0],
        outputs=outputs,
    )
