"""Closed-loop load generation and the sequential-forward baseline.

The serving benchmark's question is the paper's question at inference
time: does pipelining + micro-batching beat one-request-at-a-time
forward execution under real load?  The harness here answers it with a
**closed-loop** generator: ``concurrency`` client threads, each holding
exactly one request in flight — submit, wait for the logits, submit the
next.  Offered load therefore adapts to the server (the classic
closed-loop property), and sweeping ``concurrency`` sweeps offered load.

Rejections (:class:`~repro.serve.batcher.Overloaded`) are counted and
**retried after a backoff** — a closed-loop client never abandons its
request, so a run completes exactly ``num_requests`` responses or fails
loudly; silent drops are structurally impossible.

The baseline (:class:`SequentialServer`) is the no-pipeline strawman the
benchmark compares against: a lock around a single-request
``model.forward``.  It is measured through the *same* closed-loop
harness, so its p99 honestly includes the queueing delay sequential
execution imposes on concurrent clients.

For the serving fleet, :func:`run_classed_loop` drives the same
closed-loop discipline with a **deterministic SLO-class mix**: each
request id maps to a class (``interactive`` / ``batch`` / whatever the
mix names) by its id modulo 100, so a run's id -> class assignment is
reproducible and per-class latency percentiles are comparable across
sweeps.  Per-class results come back as ordinary
:class:`LoadGenResult` rows inside a :class:`ClassedLoadResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.batcher import Overloaded
from repro.tensor.tensor import Tensor, no_grad


@dataclass
class LoadGenResult:
    """Outcome of one closed-loop run (seconds unless suffixed)."""

    label: str
    num_requests: int
    concurrency: int
    duration_s: float
    throughput_rps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    rejected_retries: int
    #: request_id -> logits row, for response-correctness checks
    outputs: dict = field(default_factory=dict)
    #: request_id -> end-to-end latency (seconds), for per-class splits
    latency_of: dict = field(default_factory=dict)
    #: request_id -> Overloaded retries that request burned
    retries_of: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "label": self.label,
            "requests": self.num_requests,
            "concurrency": self.concurrency,
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.latency_p50 * 1e3, 3),
            "p95_ms": round(self.latency_p95 * 1e3, 3),
            "p99_ms": round(self.latency_p99 * 1e3, 3),
            "rejected_retries": self.rejected_retries,
        }


def count_bad_outputs(
    outputs: dict,
    reference: np.ndarray,
    pool_size: int,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> int:
    """Responses from a :class:`LoadGenResult` that disagree with the
    offline reference: wrong argmax (prediction-level, zero tolerance)
    or logits outside ``rtol/atol`` of ``reference[rid % pool_size]``.

    Dynamic batch composition varies with timing while BLAS rounding
    varies with GEMM width, so loadgen-level checks use this
    tolerance-based form; the *bit-level* contract (same packets ->
    same bits) is pinned separately in ``tests/test_serve_session.py``.
    """
    bad = 0
    for rid, logits in outputs.items():
        want = reference[rid % pool_size]
        if np.argmax(logits) != np.argmax(want) or not np.allclose(
            logits, want, rtol=rtol, atol=atol
        ):
            bad += 1
    return bad


class SequentialServer:
    """The no-pipeline baseline: one request at a time through
    ``model.forward`` (eval mode, no grad), serialized by a lock —
    submit blocks until the logits are ready."""

    def __init__(self, model):
        from repro.pipeline.inference import modules_eval_mode

        self.model = model
        self._lock = threading.Lock()
        self._eval_guard = modules_eval_mode([model])
        self._eval_guard.__enter__()

    def infer_one(self, x: np.ndarray) -> np.ndarray:
        with self._lock:
            with no_grad():
                return self.model(Tensor(np.asarray(x)[None])).data[0]

    def close(self) -> None:
        if self._eval_guard is not None:
            self._eval_guard.__exit__(None, None, None)
            self._eval_guard = None


def sequential_closed_loop(
    model,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int,
    label: str = "sequential",
) -> "LoadGenResult":
    """Closed-loop run against the :class:`SequentialServer` baseline
    (construction, teardown and eval-mode restore handled here — the
    shared harness of the serving experiment and benchmark)."""
    seq = SequentialServer(model)
    try:
        return run_closed_loop(
            seq.infer_one, x_pool, num_requests, concurrency=concurrency,
            label=label,
        )
    finally:
        seq.close()


def pipelined_closed_loop(
    session,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int,
    max_batch: int,
    max_wait: float,
    max_queue: int | None = None,
    label: str | None = None,
) -> tuple["LoadGenResult", dict]:
    """Closed-loop run against a :class:`~repro.serve.server.
    PipelineServer` over ``session``; returns ``(result, stats
    snapshot)``.  ``max_queue`` defaults to ``max(64, 4 * max_batch)``."""
    from repro.serve.server import PipelineServer

    server = PipelineServer(
        session,
        max_batch=max_batch,
        max_wait=max_wait,
        max_queue=max(64, 4 * max_batch) if max_queue is None else max_queue,
    )
    with server:
        result = run_closed_loop(
            server.infer_one, x_pool, num_requests,
            concurrency=concurrency,
            label=label or f"pipelined[{session.runtime}]",
        )
        snapshot = server.stats.snapshot()
    return result, snapshot


@dataclass
class ClassedLoadResult:
    """Outcome of one mixed SLO-class closed-loop run."""

    combined: LoadGenResult
    per_class: "dict[str, LoadGenResult]"
    #: request_id -> class name, the run's deterministic assignment
    class_of: dict = field(default_factory=dict)

    def as_rows(self) -> list[dict]:
        rows = [dict(self.combined.as_row(), slo_class="all")]
        for cls in sorted(self.per_class):
            rows.append(
                dict(self.per_class[cls].as_row(), slo_class=cls)
            )
        return rows


def assign_classes(num_requests: int, mix: "dict[str, float]") -> dict:
    """Deterministic request id -> class map, proportionally
    *interleaved* (largest-deficit rule over ``rid % 100``): e.g.
    ``{"interactive": 0.7, "batch": 0.3}`` scatters 30 batch ids
    through every hundred instead of blocking them, so even short runs
    see the mix — stable across runs and sweep points."""
    if not mix:
        raise ValueError("mix must name at least one class")
    total = float(sum(mix.values()))
    if total <= 0:
        raise ValueError(f"mix weights must sum > 0, got {mix}")
    names = sorted(mix)
    counts = {name: 0 for name in names}
    table = {}
    for rid in range(100):
        # the class whose assigned share lags its target the most
        name = max(
            names,
            key=lambda n: mix[n] / total * (rid + 1) - counts[n],
        )
        table[rid] = name
        counts[name] += 1
    return {rid: table[rid % 100] for rid in range(num_requests)}


def run_classed_loop(
    submit_fn,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int = 4,
    mix: "dict[str, float] | None" = None,
    label: str = "classed",
    retry_backoff: float = 1e-4,
    timeout: float = 120.0,
) -> ClassedLoadResult:
    """Closed-loop run with a deterministic SLO-class mix.

    ``submit_fn(x, slo_class) -> logits`` must block until the response
    is ready (:meth:`FleetRouter.infer_one`); ``mix`` weights classes
    by share of requests (default 70% interactive / 30% batch).
    Per-class latencies split out of the same run, so the combined and
    per-class rows describe identical traffic.
    """
    mix = {"interactive": 0.7, "batch": 0.3} if mix is None else mix
    class_of = assign_classes(num_requests, mix)
    combined = run_closed_loop(
        None,
        x_pool,
        num_requests,
        concurrency=concurrency,
        label=label,
        retry_backoff=retry_backoff,
        timeout=timeout,
        submit_with_rid=lambda x, rid: submit_fn(x, class_of[rid]),
    )
    per_class: dict[str, LoadGenResult] = {}
    for cls in sorted(set(class_of.values())):
        rids = [r for r in combined.outputs if class_of[r] == cls]
        lats = [combined.latency_of[r] for r in rids]
        if not lats:
            continue
        arr = np.asarray(lats)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        per_class[cls] = LoadGenResult(
            label=f"{label}/{cls}",
            num_requests=len(rids),
            concurrency=concurrency,
            duration_s=combined.duration_s,
            throughput_rps=(
                len(rids) / combined.duration_s
                if combined.duration_s > 0
                else 0.0
            ),
            latency_p50=float(p50),
            latency_p95=float(p95),
            latency_p99=float(p99),
            rejected_retries=sum(
                combined.retries_of.get(r, 0) for r in rids
            ),
            outputs={r: combined.outputs[r] for r in rids},
            latency_of={r: combined.latency_of[r] for r in rids},
            retries_of={
                r: combined.retries_of.get(r, 0) for r in rids
            },
        )
    return ClassedLoadResult(
        combined=combined, per_class=per_class, class_of=class_of
    )


def run_closed_loop(
    submit_fn,
    x_pool: np.ndarray,
    num_requests: int,
    concurrency: int = 4,
    label: str = "run",
    retry_backoff: float = 1e-4,
    timeout: float = 120.0,
    submit_with_rid=None,
) -> LoadGenResult:
    """Drive ``num_requests`` requests through ``submit_fn`` with
    ``concurrency`` closed-loop clients.

    ``submit_fn(x) -> logits`` must block until the response is ready
    (:meth:`PipelineServer.infer_one` or
    :meth:`SequentialServer.infer_one`); an :class:`Overloaded` raise is
    counted and retried with exponential backoff starting at
    ``retry_backoff`` seconds (capped at 50 ms).  Inputs are
    drawn round-robin from ``x_pool`` by request id, so a run's request
    -> input mapping is deterministic and the outputs dict can be
    checked against an offline reference.

    ``submit_with_rid(x, rid) -> logits`` (exclusive with
    ``submit_fn``) additionally hands each client its request id — the
    hook :func:`run_classed_loop` uses to route by SLO class.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if (submit_fn is None) == (submit_with_rid is None):
        raise ValueError(
            "pass exactly one of submit_fn / submit_with_rid"
        )
    concurrency = max(1, min(int(concurrency), num_requests))
    counter = iter(range(num_requests))
    counter_lock = threading.Lock()
    latencies: list[float] = []
    latency_of: dict[int, float] = {}
    retries_of: dict[int, int] = {}
    outputs: dict[int, np.ndarray] = {}
    results_lock = threading.Lock()
    rejected = [0]
    errors: list[BaseException] = []
    deadline = time.monotonic() + timeout

    def client() -> None:
        while True:
            with counter_lock:
                rid = next(counter, None)
            if rid is None:
                return
            x = x_pool[rid % x_pool.shape[0]]
            t0 = time.monotonic()
            attempt = 0
            while True:
                try:
                    if submit_with_rid is not None:
                        logits = submit_with_rid(x, rid)
                    else:
                        logits = submit_fn(x)
                    break
                except Overloaded:
                    with results_lock:
                        rejected[0] += 1
                        retries_of[rid] = retries_of.get(rid, 0) + 1
                    if time.monotonic() >= deadline:
                        errors.append(
                            TimeoutError(
                                f"request {rid} starved past {timeout}s of "
                                "Overloaded retries"
                            )
                        )
                        return
                    # exponential backoff (capped): a flat retry delay
                    # lets N rejected clients spin-hammer the server in
                    # lockstep, burning the CPU the pipeline needs to
                    # drain the very queue that rejected them
                    attempt += 1
                    time.sleep(
                        min(retry_backoff * (2 ** (attempt - 1)), 0.05)
                    )
                except BaseException as exc:
                    errors.append(exc)
                    return
            latency = time.monotonic() - t0
            with results_lock:
                latencies.append(latency)
                latency_of[rid] = latency
                outputs[rid] = np.asarray(logits)

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    t_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    duration = time.monotonic() - t_start
    if errors:
        raise RuntimeError(
            f"load generator hit {len(errors)} errors; first: {errors[0]!r}"
        ) from errors[0]
    if len(outputs) != num_requests:
        raise RuntimeError(
            f"load generator lost requests: {len(outputs)} responses for "
            f"{num_requests} requests"
        )
    arr = np.asarray(latencies)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return LoadGenResult(
        label=label,
        num_requests=num_requests,
        concurrency=concurrency,
        duration_s=duration,
        throughput_rps=num_requests / duration if duration > 0 else 0.0,
        latency_p50=float(p50),
        latency_p95=float(p95),
        latency_p99=float(p99),
        rejected_retries=rejected[0],
        outputs=outputs,
        latency_of=latency_of,
        retries_of=retries_of,
    )
