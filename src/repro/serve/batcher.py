"""Dynamic micro-batching with bounded admission and explicit backpressure.

The paper's serving story is the training story transposed: a pipeline
keeps every stage busy on *small* packets, so a server does not need to
hoard requests into large batches to be efficient — but a little
coalescing is still free throughput, because one vectorized ``(B, ...)``
op amortizes per-op overhead across ``B`` requests.  The
:class:`DynamicBatcher` makes exactly that trade, under two SLO knobs:

``max_batch``
    Cap on requests per packet (the pipeline's micro-batch width).  A
    full batch dispatches immediately.
``max_wait``
    Deadline on the *oldest* queued request: when it has waited this
    long, whatever is queued dispatches as a partial packet.  ``0``
    means the batcher never waits on purpose — but requests that have
    *already* queued up (e.g. while the pipeline was busy) still
    coalesce up to ``max_batch``; packet width is therefore always
    load-dependent, which matters to bit-level reproducibility because
    BLAS rounding varies with packet width (see
    :mod:`repro.pipeline.inference`).  For guaranteed single-request
    packets use ``max_batch=1``.

``max_wait`` is also overridable **per request** (``submit(x,
max_wait=...)``), which is how the fleet's SLO classes price their
coalescing slack: a batch-class request tolerates the full deadline, an
interactive one passes ``0`` and forces whatever is queued (including
batch requests — they yield their slack) to dispatch with it
immediately.  The flush point is therefore the *minimum* deadline over
the queued requests, not the oldest request's age.

Admission is **bounded and loud**: at most ``max_queue`` requests may be
pending, and a submit beyond that raises :class:`Overloaded` — the
explicit-backpressure contract (reject, never grow without bound, never
silently drop).  Request ids are monotone, assigned at admission, and
every admitted request is dispatched exactly once (or failed loudly at
close); the serving smoke test pins all three properties.

Shutdown comes in two strengths: :meth:`set_draining` stops admission
(new submits raise :class:`Overloaded`) while the consumer keeps
dispatching what was admitted — the state a replica sits in while the
fleet router hot-swaps its weights — and :meth:`close` is terminal
(stops admission for good *and* releases a blocked consumer so the
queue can drain to empty).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np


class Overloaded(RuntimeError):
    """The server's admission queue is full (or it is shutting down) —
    the caller should back off and retry, exactly like an HTTP 429."""


@dataclass
class PendingRequest:
    """One admitted request travelling batcher -> pipeline -> future."""

    request_id: int
    x: np.ndarray
    future: Future = field(default_factory=Future)
    #: monotonic seconds at admission (queue-wait accounting starts here)
    t_submit: float = 0.0
    #: monotonic seconds when the batcher dispatched it into a packet
    t_dispatch: float = 0.0
    #: monotonic seconds by which this request wants out of the queue
    #: (``t_submit`` + its effective ``max_wait``)
    t_deadline: float = 0.0
    #: SLO class tag (``None`` for untagged single-server traffic)
    slo_class: str | None = None


class DynamicBatcher:
    """Coalesce individual requests into micro-batch packets (module
    docstring).  One producer side (``submit``, any thread) and one
    consumer side (``next_batch``, the server's dispatcher thread)."""

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 0.002,
        max_queue: int = 64,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self._cond = threading.Condition()
        self._queue: list[PendingRequest] = []
        self._ids = itertools.count()
        self._closed = False
        self._draining = False
        self.rejected = 0
        self.admitted = 0

    # -- producer side ------------------------------------------------------

    def submit(
        self,
        x: np.ndarray,
        max_wait: float | None = None,
        slo_class: str | None = None,
    ) -> PendingRequest:
        """Admit one request; raises :class:`Overloaded` when the queue
        is full or the batcher is closed/draining.

        ``max_wait`` overrides the batcher-level coalescing deadline for
        this request only (``0`` = dispatch the next packet immediately,
        pulling any already-queued requests along); ``slo_class`` rides
        on the :class:`PendingRequest` for per-class accounting."""
        if max_wait is not None and max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        with self._cond:
            if self._closed:
                self.rejected += 1
                raise Overloaded("server is shutting down")
            if self._draining:
                self.rejected += 1
                raise Overloaded("server is draining")
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                raise Overloaded(
                    f"admission queue full ({self.max_queue} pending)"
                )
            now = time.monotonic()
            wait = self.max_wait if max_wait is None else float(max_wait)
            req = PendingRequest(
                request_id=next(self._ids),
                x=np.asarray(x),
                t_submit=now,
                t_deadline=now + wait,
                slo_class=slo_class,
            )
            self._queue.append(req)
            self.admitted += 1
            self._cond.notify_all()
            return req

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- consumer side ------------------------------------------------------

    def next_batch(self, timeout: float = 0.1) -> list[PendingRequest]:
        """Block until a packet is ready (full batch, or some queued
        request's coalescing deadline expired), then return it —
        ``[]`` on timeout or when closed with nothing queued.

        Dispatch order is FIFO: packets are consecutive admission-order
        slices, so request ids inside and across packets are monotone —
        a tight per-request deadline never reorders, it only flushes
        everything admitted before it sooner.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                if self._queue:
                    flush_at = min(r.t_deadline for r in self._queue)
                    if (
                        len(self._queue) >= self.max_batch
                        or now >= flush_at
                        or self._closed
                    ):
                        batch = self._queue[: self.max_batch]
                        del self._queue[: len(batch)]
                        for req in batch:
                            req.t_dispatch = now
                        return batch
                    # wake at whichever comes first: the earliest
                    # queued deadline or the caller's timeout
                    wait = min(flush_at - now, deadline - now)
                else:
                    if self._closed or now >= deadline:
                        return []
                    wait = deadline - now
                if wait <= 0:
                    # not ready and the caller's timeout has expired
                    return []
                self._cond.wait(wait)

    def set_draining(self, draining: bool = True) -> None:
        """Toggle the draining state: while draining, ``submit`` raises
        :class:`Overloaded` but ``next_batch`` keeps dispatching what
        was already admitted (nothing is dropped).  Reversible — a
        replica that finished a weight reload re-opens admission."""
        with self._cond:
            self._draining = bool(draining)
            self._cond.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self) -> None:
        """Stop admitting; wake the consumer so it can drain what's
        left (queued requests still dispatch — closing never drops)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
