"""Dynamic micro-batching with bounded admission and explicit backpressure.

The paper's serving story is the training story transposed: a pipeline
keeps every stage busy on *small* packets, so a server does not need to
hoard requests into large batches to be efficient — but a little
coalescing is still free throughput, because one vectorized ``(B, ...)``
op amortizes per-op overhead across ``B`` requests.  The
:class:`DynamicBatcher` makes exactly that trade, under two SLO knobs:

``max_batch``
    Cap on requests per packet (the pipeline's micro-batch width).  A
    full batch dispatches immediately.
``max_wait``
    Deadline on the *oldest* queued request: when it has waited this
    long, whatever is queued dispatches as a partial packet.  ``0``
    means the batcher never waits on purpose — but requests that have
    *already* queued up (e.g. while the pipeline was busy) still
    coalesce up to ``max_batch``; packet width is therefore always
    load-dependent, which matters to bit-level reproducibility because
    BLAS rounding varies with packet width (see
    :mod:`repro.pipeline.inference`).  For guaranteed single-request
    packets use ``max_batch=1``.

Admission is **bounded and loud**: at most ``max_queue`` requests may be
pending, and a submit beyond that raises :class:`Overloaded` — the
explicit-backpressure contract (reject, never grow without bound, never
silently drop).  Request ids are monotone, assigned at admission, and
every admitted request is dispatched exactly once (or failed loudly at
close); the serving smoke test pins all three properties.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np


class Overloaded(RuntimeError):
    """The server's admission queue is full (or it is shutting down) —
    the caller should back off and retry, exactly like an HTTP 429."""


@dataclass
class PendingRequest:
    """One admitted request travelling batcher -> pipeline -> future."""

    request_id: int
    x: np.ndarray
    future: Future = field(default_factory=Future)
    #: monotonic seconds at admission (queue-wait accounting starts here)
    t_submit: float = 0.0
    #: monotonic seconds when the batcher dispatched it into a packet
    t_dispatch: float = 0.0


class DynamicBatcher:
    """Coalesce individual requests into micro-batch packets (module
    docstring).  One producer side (``submit``, any thread) and one
    consumer side (``next_batch``, the server's dispatcher thread)."""

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 0.002,
        max_queue: int = 64,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self._cond = threading.Condition()
        self._queue: list[PendingRequest] = []
        self._ids = itertools.count()
        self._closed = False
        self.rejected = 0
        self.admitted = 0

    # -- producer side ------------------------------------------------------

    def submit(self, x: np.ndarray) -> PendingRequest:
        """Admit one request; raises :class:`Overloaded` when the queue
        is full or the batcher is closed."""
        with self._cond:
            if self._closed:
                self.rejected += 1
                raise Overloaded("server is shutting down")
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                raise Overloaded(
                    f"admission queue full ({self.max_queue} pending)"
                )
            req = PendingRequest(
                request_id=next(self._ids),
                x=np.asarray(x),
                t_submit=time.monotonic(),
            )
            self._queue.append(req)
            self.admitted += 1
            self._cond.notify_all()
            return req

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- consumer side ------------------------------------------------------

    def next_batch(self, timeout: float = 0.1) -> list[PendingRequest]:
        """Block until a packet is ready (full batch, or the oldest
        request's ``max_wait`` deadline expired), then return it —
        ``[]`` on timeout or when closed with nothing queued.

        Dispatch order is FIFO: packets are consecutive admission-order
        slices, so request ids inside and across packets are monotone.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                if self._queue:
                    oldest_age = now - self._queue[0].t_submit
                    if (
                        len(self._queue) >= self.max_batch
                        or oldest_age >= self.max_wait
                        or self._closed
                    ):
                        batch = self._queue[: self.max_batch]
                        del self._queue[: len(batch)]
                        for req in batch:
                            req.t_dispatch = now
                        return batch
                    # wake at whichever comes first: the oldest
                    # request's deadline or the caller's timeout
                    wait = min(
                        self.max_wait - oldest_age, deadline - now
                    )
                else:
                    if self._closed or now >= deadline:
                        return []
                    wait = deadline - now
                if wait <= 0:
                    # not ready and the caller's timeout has expired
                    return []
                self._cond.wait(wait)

    def close(self) -> None:
        """Stop admitting; wake the consumer so it can drain what's
        left (queued requests still dispatch — closing never drops)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
