"""``repro.serve`` — pipelined online inference serving.

The training side of this repo reproduces the paper's claim that a
fine-grained pipeline keeps every stage busy *without* large batches;
this package is the same claim applied to serving (the ROADMAP's
"serve heavy traffic from millions of users" direction):

* :mod:`~repro.serve.session` — :class:`InferenceSession`: trained
  weights (from a live engine or a checkpoint file, optimizer state
  stripped) frozen onto forward-only pipeline stages, runnable on any
  of the three runtime backends (sim / threaded / process with
  shared-memory rings);
* :mod:`~repro.serve.batcher` — :class:`DynamicBatcher`: coalesces
  individual requests into micro-batch packets under a ``max_wait``
  deadline and ``max_batch`` cap, with a bounded admission queue and
  explicit :class:`Overloaded` backpressure;
* :mod:`~repro.serve.server` — :class:`PipelineServer`: submit/result
  futures, dispatcher/collector threads around a persistent inference
  stream, per-request latency tracking, and a stdlib-socket HTTP
  endpoint (``POST /infer`` / ``GET /stats`` / ``GET /healthz``);
* :mod:`~repro.serve.stats` — :class:`ServingStats`: p50/p95/p99
  latency, queue wait vs pipeline time, drop-proof counters;
* :mod:`~repro.serve.loadgen` — closed-loop load generator plus the
  sequential single-request baseline the serving benchmark
  (``benchmarks/bench_serving.py``) compares against.

The engine-level forward-only machinery (schedules, streams, rings)
lives in :mod:`repro.pipeline.inference` and
:mod:`repro.pipeline.transport`.
"""

from repro.serve.batcher import DynamicBatcher, Overloaded, PendingRequest
from repro.serve.loadgen import (
    LoadGenResult,
    SequentialServer,
    count_bad_outputs,
    run_closed_loop,
)
from repro.serve.server import PipelineServer
from repro.serve.session import SERVE_BACKENDS, InferenceSession
from repro.serve.stats import RequestTiming, ServingStats

__all__ = [
    "DynamicBatcher",
    "Overloaded",
    "PendingRequest",
    "LoadGenResult",
    "SequentialServer",
    "count_bad_outputs",
    "run_closed_loop",
    "PipelineServer",
    "SERVE_BACKENDS",
    "InferenceSession",
    "RequestTiming",
    "ServingStats",
]
