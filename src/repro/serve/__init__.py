"""``repro.serve`` — pipelined online inference serving.

The training side of this repo reproduces the paper's claim that a
fine-grained pipeline keeps every stage busy *without* large batches;
this package is the same claim applied to serving (the ROADMAP's
"serve heavy traffic from millions of users" direction):

* :mod:`~repro.serve.session` — :class:`InferenceSession`: trained
  weights (from a live engine or a checkpoint file, optimizer state
  stripped) frozen onto forward-only pipeline stages, runnable on any
  of the three runtime backends (sim / threaded / process with
  shared-memory rings);
* :mod:`~repro.serve.batcher` — :class:`DynamicBatcher`: coalesces
  individual requests into micro-batch packets under a ``max_wait``
  deadline and ``max_batch`` cap, with a bounded admission queue and
  explicit :class:`Overloaded` backpressure;
* :mod:`~repro.serve.server` — :class:`PipelineServer`: submit/result
  futures, dispatcher/collector threads around a persistent inference
  stream, per-request latency tracking, and a stdlib-socket HTTP
  endpoint (``POST /infer`` / ``GET /stats`` / ``GET /healthz``);
* :mod:`~repro.serve.stats` — :class:`ServingStats`: p50/p95/p99
  latency, queue wait vs pipeline time, drop-proof counters;
* :mod:`~repro.serve.loadgen` — closed-loop load generator plus the
  sequential single-request baseline the serving benchmark
  (``benchmarks/bench_serving.py``) compares against;
* :mod:`~repro.serve.fleet` — multi-replica serving:
  :class:`~repro.serve.fleet.router.FleetRouter` (least-loaded
  dispatch + SLO-class admission + fleet-id accounting),
  queue-wait-driven autoscaling, and zero-downtime rolling weight
  hot-swap from PR-4 checkpoints.

The engine-level forward-only machinery (schedules, streams, rings)
lives in :mod:`repro.pipeline.inference` and
:mod:`repro.pipeline.transport`.
"""

from repro.serve.batcher import DynamicBatcher, Overloaded, PendingRequest
from repro.serve.fleet import (
    AutoscalePolicy,
    FleetRouter,
    ReplicaSpec,
    SLOClass,
    default_slo_classes,
    rolling_reload,
)
from repro.serve.loadgen import (
    ClassedLoadResult,
    LoadGenResult,
    SequentialServer,
    assign_classes,
    count_bad_outputs,
    run_classed_loop,
    run_closed_loop,
)
from repro.serve.server import PipelineServer
from repro.serve.session import SERVE_BACKENDS, InferenceSession
from repro.serve.stats import RequestTiming, ServingStats

__all__ = [
    "DynamicBatcher",
    "Overloaded",
    "PendingRequest",
    "AutoscalePolicy",
    "FleetRouter",
    "ReplicaSpec",
    "SLOClass",
    "default_slo_classes",
    "rolling_reload",
    "ClassedLoadResult",
    "assign_classes",
    "run_classed_loop",
    "LoadGenResult",
    "SequentialServer",
    "count_bad_outputs",
    "run_closed_loop",
    "PipelineServer",
    "SERVE_BACKENDS",
    "InferenceSession",
    "RequestTiming",
    "ServingStats",
]
