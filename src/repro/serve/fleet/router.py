"""Multi-replica serving: least-loaded dispatch over N pipeline servers.

A *replica* is one complete serving stack — an
:class:`~repro.serve.session.InferenceSession` (frozen weights on one
of the three runtime backends) fronted by a
:class:`~repro.serve.server.PipelineServer` — plus the swap machinery a
zero-downtime weight reload needs.  ``PipelineServer`` is deliberately
single-use (its drain guarantees depend on a terminally-closed
batcher), so a reload never restarts a server: it builds a *new*
session + server from the checkpoint next to the live one, verifies the
restored weights hash to exactly what the checkpoint payload promises
(:func:`~repro.pipeline.checkpoint.checkpoint_fingerprint`), swaps the
replica's pointer, and only then drains and retires the old generation.
Requests admitted to the old generation complete on the old weights;
requests admitted after the swap run on the new — nothing is dropped or
duplicated at the seam, which the router's fleet-id accounting proves.

:class:`FleetRouter` owns the fleet:

* **dispatch** — per request, pick the ready replica with the smallest
  queue depth (batcher ``pending`` + in-flight, the gauges PR 9 put on
  :meth:`~repro.serve.stats.ServingStats.snapshot`), falling through to
  the next-least-loaded replica if a replica rejects in the race window
  between the gauge read and the admit;
* **admission** — fleet-level SLO-class pricing
  (:class:`~repro.serve.fleet.admission.AdmissionController`) in front
  of the per-replica bounded queues;
* **autoscaling** — :meth:`FleetRouter.tick` feeds queue-wait readings
  to a :class:`~repro.serve.fleet.autoscaler.FleetAutoscaler` and acts
  on its verdicts (add a replica / drain-and-retire one);
* **accounting** — its own cumulative
  :class:`~repro.serve.stats.ServingStats` (replica stats die with each
  server generation; the fleet's must span reloads), monotone fleet
  request ids, and resolved-exactly-once bookkeeping
  (``submitted == resolved + outstanding``, ``duplicates == 0``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

import numpy as np

from repro.pipeline.checkpoint import (
    CheckpointError,
    checkpoint_fingerprint,
    model_fingerprint,
    restore_inference_weights,
)
from repro.pipeline.inference import InferenceStreamError
from repro.serve.batcher import Overloaded, PendingRequest
from repro.serve.fleet.admission import AdmissionController, SLOClass
from repro.serve.fleet.autoscaler import AutoscalePolicy, FleetAutoscaler
from repro.serve.server import PipelineServer
from repro.serve.session import InferenceSession
from repro.serve.stats import RequestTiming, ServingStats


@dataclass(frozen=True)
class ReplicaSpec:
    """Recipe for building one replica (and rebuilding it on reload).

    ``model_factory`` must be deterministic (seeded) — every replica
    starts from the same weights, and a reload reconstructs the
    architecture through it before restoring checkpoint weights onto
    it.  ``sample_shape`` is required because serving streams need it
    up front (process rings preallocate with it).

    ``max_queue`` is **per replica**; the fleet's aggregate admission
    capacity is ``max_queue`` summed over ready replicas, which is what
    makes offered-load capacity scale with replica count.
    """

    model_factory: Callable
    sample_shape: tuple
    runtime: str = "sim"
    micro_batch: int = 8
    max_batch: int | None = None
    max_wait: float = 0.002
    max_queue: int = 8
    result_timeout: float = 30.0
    #: extra InferenceSession kwargs (capacity, precision, start_method…)
    session_kwargs: dict = field(default_factory=dict)


class Replica:
    """One serving stack + generation-swap machinery (module docstring).

    The live ``server`` attribute is replaced atomically on reload;
    callers that lose the race (submit into the old, draining server)
    get :class:`Overloaded` and the router retries them — a request is
    only ever admitted once.
    """

    def __init__(
        self, name: str, spec: ReplicaSpec, checkpoint: str | None = None
    ):
        self.name = name
        self.spec = spec
        self.checkpoint = checkpoint
        self.generation = 0
        self._swap_lock = threading.Lock()
        self.session, self.server = self._build(checkpoint, verify=False)
        self.server.start()

    def _build(
        self, checkpoint: str | None, verify: bool
    ) -> tuple[InferenceSession, PipelineServer]:
        spec = self.spec
        model = spec.model_factory()
        metadata: dict = {}
        if checkpoint is not None:
            metadata = restore_inference_weights(checkpoint, model)
            if verify:
                # hash the restored weights *before* the session's
                # precision cast and compare against what the payload
                # promises — a corrupt restore never reaches traffic
                restored = model_fingerprint(model)
                expected = checkpoint_fingerprint(checkpoint)
                if restored != expected:
                    raise CheckpointError(
                        f"replica {self.name}: restored weights "
                        f"fingerprint {restored[:12]}… does not match "
                        f"checkpoint fingerprint {expected[:12]}…"
                    )
        session = InferenceSession(
            model,
            runtime=spec.runtime,
            micro_batch=spec.micro_batch,
            sample_shape=spec.sample_shape,
            model_factory=spec.model_factory,
            **spec.session_kwargs,
        )
        session.metadata = metadata
        server = PipelineServer(
            session,
            max_batch=spec.max_batch,
            max_wait=spec.max_wait,
            max_queue=spec.max_queue,
            result_timeout=spec.result_timeout,
        )
        return session, server

    # -- dispatch surface ----------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.server.ready

    @property
    def load(self) -> int:
        """Queue depth: requests admitted but not yet answered."""
        server = self.server
        return server.batcher.pending + server.in_flight

    @property
    def max_queue(self) -> int:
        return self.server.batcher.max_queue

    @property
    def fingerprint(self) -> str:
        return self.session.fingerprint

    def submit(
        self,
        x: np.ndarray,
        slo_class: str | None = None,
        max_wait: float | None = None,
    ) -> PendingRequest:
        return self.server.submit_request(
            x, slo_class=slo_class, max_wait=max_wait
        )

    # -- lifecycle -----------------------------------------------------------

    def reload(
        self,
        checkpoint: str,
        verify: bool = True,
        on_draining: Callable[["Replica"], None] | None = None,
    ) -> dict:
        """Zero-downtime weight swap from a PR-4 checkpoint.

        Order of operations (each step keeps the no-drop invariant):

        1. mark the live server draining — it stops admitting (router
           routes around it) but finishes everything already admitted;
        2. build + verify the new generation next to it (on failure the
           old server is marked ready again and keeps serving — a bad
           checkpoint never takes a replica down);
        3. atomically swap the replica's session/server pointers — the
           replica is ready again, now on the new weights;
        4. drain and retire the old generation (``stop`` blocks until
           every admitted request resolved).

        Returns an event dict for the reload report."""
        t0 = time.monotonic()
        old_session, old_server = self.session, self.server
        old_fingerprint = old_session.fingerprint
        old_server.mark_draining("reloading")
        if on_draining is not None:
            on_draining(self)
        try:
            new_session, new_server = self._build(checkpoint, verify=verify)
        except BaseException:
            old_server.mark_ready()
            raise
        new_server.start()
        with self._swap_lock:
            self.session = new_session
            self.server = new_server
            self.checkpoint = checkpoint
            self.generation += 1
        old_server.stop()
        return {
            "replica": self.name,
            "generation": self.generation,
            "old_fingerprint": old_fingerprint,
            "new_fingerprint": new_session.fingerprint,
            "verified": bool(verify),
            "duration_s": time.monotonic() - t0,
        }

    def stop(self) -> None:
        self.server.stop()

    def describe(self) -> dict:
        server = self.server
        return {
            "ready": server.ready,
            "reason": server.ready_reason,
            "generation": self.generation,
            "fingerprint": self.fingerprint,
            "pending": server.batcher.pending,
            "in_flight": server.in_flight,
            "max_queue": server.batcher.max_queue,
            "completed": server.stats.completed,
        }


@dataclass
class FleetRequest:
    """One request admitted by the fleet: a monotone fleet id + the
    Future resolving to its logits row (plus which replica took it)."""

    fleet_id: int
    future: object
    slo_class: str
    replica: str
    #: the replica-side request (its ``request_id`` is replica-scoped
    #: and resets across generations; ``fleet_id`` is the durable one)
    request: PendingRequest


class FleetRouter:
    """Route requests across N replicas (module docstring).

    Parameters
    ----------
    spec:
        Replica recipe; every replica (including autoscaled ones) is
        built from it.
    num_replicas:
        Initial fleet size.
    checkpoint:
        Optional PR-4 checkpoint the initial replicas restore weights
        from (autoscaled replicas restore from the most recently
        reloaded checkpoint so a scale-out never resurrects old
        weights).
    classes / deadline_headroom:
        SLO-class table for the
        :class:`~repro.serve.fleet.admission.AdmissionController`.
    autoscale:
        ``None`` (fixed fleet), an
        :class:`~repro.serve.fleet.autoscaler.AutoscalePolicy`, or a
        prebuilt :class:`~repro.serve.fleet.autoscaler.FleetAutoscaler`.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        num_replicas: int = 2,
        checkpoint: str | None = None,
        classes: dict[str, SLOClass] | None = None,
        deadline_headroom: float = 0.5,
        autoscale: AutoscalePolicy | FleetAutoscaler | None = None,
    ):
        if num_replicas < 1:
            raise ValueError(
                f"num_replicas must be >= 1, got {num_replicas}"
            )
        self.spec = spec
        self.admission = AdmissionController(
            classes, deadline_headroom=deadline_headroom
        )
        if isinstance(autoscale, FleetAutoscaler):
            self.autoscaler = autoscale
        elif autoscale is not None:
            self.autoscaler = FleetAutoscaler(autoscale)
        else:
            self.autoscaler = None
        self.stats = ServingStats()
        self.stats.set_gauge_source(self._gauges)
        self._lock = threading.Lock()
        self._replica_ids = itertools.count()
        self._fleet_ids = itertools.count()
        self.replicas: dict[str, Replica] = {}
        self._checkpoint = checkpoint
        self._outstanding: dict[str, int] = {}
        self._resolved: set[int] = set()
        self.submitted = 0
        self.duplicates = 0
        self._http_server = None
        for _ in range(num_replicas):
            self.add_replica()

    # -- fleet shape ---------------------------------------------------------

    def _gauges(self) -> dict:
        replicas = list(self.replicas.values())
        return {
            "pending": sum(r.server.batcher.pending for r in replicas),
            "in_flight": sum(r.server.in_flight for r in replicas),
        }

    @property
    def num_ready(self) -> int:
        return sum(1 for r in self.replicas.values() if r.ready)

    @property
    def outstanding(self) -> int:
        with self._lock:
            return sum(self._outstanding.values())

    def add_replica(self) -> Replica:
        """Grow the fleet by one replica on the current weights."""
        name = f"r{next(self._replica_ids)}"
        replica = Replica(name, self.spec, checkpoint=self._checkpoint)
        self.replicas[name] = replica
        return replica

    def retire_replica(self, name: str) -> None:
        """Drain one replica and remove it (``stop`` resolves every
        admitted request before teardown — retiring never drops)."""
        replica = self.replicas.pop(name)
        replica.server.mark_draining("retiring")
        replica.stop()

    def reload_replica(
        self,
        name: str,
        checkpoint: str,
        verify: bool = True,
        on_draining: Callable[[Replica], None] | None = None,
    ) -> dict:
        """Hot-swap one replica's weights (see :meth:`Replica.reload`);
        prefer :func:`~repro.serve.fleet.reload.rolling_reload` to swap
        the whole fleet."""
        event = self.replicas[name].reload(
            checkpoint, verify=verify, on_draining=on_draining
        )
        self._checkpoint = checkpoint
        return event

    # -- request path --------------------------------------------------------

    def submit(
        self, x: np.ndarray, slo_class: str | None = None
    ) -> FleetRequest:
        """Admit one request into the fleet; raises
        :class:`Overloaded` on pushback (class over its share, fleet
        queue exhausted, or deadline pressure — see
        :mod:`~repro.serve.fleet.admission`)."""
        slo = self.admission.resolve(slo_class)
        ready = [r for r in self.replicas.values() if r.ready]
        capacity = sum(r.max_queue for r in ready)
        if not ready or capacity <= 0:
            self.stats.record_rejected(slo.name)
            raise Overloaded("no ready replicas")
        queue_wait_p95 = self.stats.recent_queue_wait_p95()
        with self._lock:
            try:
                self.admission.admit(
                    slo, self._outstanding, capacity, queue_wait_p95
                )
            except Overloaded:
                self.stats.record_rejected(slo.name)
                raise
            # reserve the slot before dispatching so concurrent
            # submits can't all squeeze through the same headroom
            self._outstanding[slo.name] = (
                self._outstanding.get(slo.name, 0) + 1
            )
        try:
            replica, request = self._dispatch(x, slo, ready)
        except BaseException:
            with self._lock:
                self._outstanding[slo.name] -= 1
            raise
        with self._lock:
            fid = next(self._fleet_ids)
            self.submitted += 1
        request.future.add_done_callback(
            lambda fut, fid=fid, slo_name=slo.name, req=request: (
                self._resolve(fid, slo_name, req, fut)
            )
        )
        return FleetRequest(
            fleet_id=fid,
            future=request.future,
            slo_class=slo.name,
            replica=replica.name,
            request=request,
        )

    def _dispatch(
        self, x: np.ndarray, slo: SLOClass, ready: list[Replica]
    ) -> tuple[Replica, PendingRequest]:
        """Least-loaded first, falling through on the race where a
        replica filled up (or started draining) between the gauge read
        and the admit."""
        last_exc: BaseException | None = None
        for replica in sorted(ready, key=lambda r: r.load):
            try:
                request = replica.submit(
                    x, slo_class=slo.name, max_wait=slo.max_wait_s
                )
                return replica, request
            except (Overloaded, InferenceStreamError) as exc:
                last_exc = exc
                continue
        self.stats.record_rejected(slo.name)
        raise Overloaded(
            f"all {len(ready)} ready replicas rejected class "
            f"{slo.name!r}: {last_exc}"
        )

    def _resolve(
        self, fid: int, slo_name: str, req: PendingRequest, fut
    ) -> None:
        """Done-callback of every fleet future: per-class accounting +
        resolved-exactly-once proof.  Runs on the owning replica's
        collector thread."""
        t_now = time.monotonic()
        with self._lock:
            self._outstanding[slo_name] -= 1
            if fid in self._resolved:
                self.duplicates += 1
            else:
                self._resolved.add(fid)
        if fut.exception() is not None:
            self.stats.record_failed()
            return
        self.stats.record(
            RequestTiming(
                request_id=fid,
                queue_wait=req.t_dispatch - req.t_submit,
                pipeline_time=t_now - req.t_dispatch,
                latency=t_now - req.t_submit,
                # fleet-level accounting is per request; packet widths
                # live in the replica-level stats
                batch_size=1,
                slo_class=slo_name,
            ),
            t_now,
        )

    def infer_one(self, x: np.ndarray, timeout: float | None = None):
        return self.submit(x).future.result(
            self.spec.result_timeout if timeout is None else timeout
        )

    # -- autoscaling ---------------------------------------------------------

    def tick(self, now: float | None = None) -> str | None:
        """Run one autoscaler evaluation and act on its verdict.  Call
        periodically (the load loop, a timer thread); a router without
        an autoscaler ticks as a no-op."""
        if self.autoscaler is None:
            return None
        now = time.monotonic() if now is None else now
        verdict = self.autoscaler.decide(
            now,
            ready_replicas=self.num_ready,
            queue_wait_p95=self.stats.recent_queue_wait_p95(),
            outstanding=self.outstanding,
        )
        if verdict == "out":
            self.add_replica()
        elif verdict == "in":
            # retire the emptiest ready replica (idle fleet: any will do)
            ready = [r for r in self.replicas.values() if r.ready]
            if len(ready) > 1:
                victim = min(ready, key=lambda r: r.load)
                self.retire_replica(victim.name)
        return verdict

    # -- introspection + teardown --------------------------------------------

    def snapshot(self) -> dict:
        """Fleet-level stats + per-replica state + the id-accounting
        proof (``submitted == resolved + outstanding`` and zero
        duplicates whenever the fleet is healthy)."""
        with self._lock:
            submitted = self.submitted
            resolved = len(self._resolved)
            duplicates = self.duplicates
            outstanding = dict(self._outstanding)
        snap = self.stats.snapshot()
        snap.update(
            {
                "replicas": {
                    name: replica.describe()
                    for name, replica in sorted(self.replicas.items())
                },
                "num_ready": self.num_ready,
                "submitted": submitted,
                "resolved": resolved,
                "duplicates": duplicates,
                "outstanding": outstanding,
                "autoscale_events": (
                    list(self.autoscaler.events)
                    if self.autoscaler is not None
                    else []
                ),
            }
        )
        return snap

    def stop(self) -> None:
        self.http_stop()
        for replica in list(self.replicas.values()):
            replica.stop()
        self.replicas.clear()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- HTTP front door -----------------------------------------------------

    def serve_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Fleet front door, same wire shapes as the single-server
        endpoint: ``POST /infer`` (optional ``"class"`` tag; 429 on
        pushback), ``GET /stats`` (fleet :meth:`snapshot`), ``GET
        /healthz`` (fleet liveness: any live replica), ``GET /readyz``
        (200 while at least one replica admits traffic)."""
        server = _make_fleet_http_server(self, host, port)
        self._http_server = server
        thread = threading.Thread(
            target=server.serve_forever, name="fleet-http", daemon=True
        )
        thread.start()
        return server.server_address[0], server.server_address[1]

    def http_stop(self) -> None:
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            self._http_server = None


def _make_fleet_http_server(
    router: FleetRouter, host: str, port: int
) -> ThreadingHTTPServer:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve-fleet/1.0"

        def log_message(self, *args) -> None:  # quiet by default
            pass

        def _reply(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                live = [
                    name
                    for name, r in router.replicas.items()
                    if r.server._error is None
                ]
                self._reply(
                    200 if live else 503,
                    {
                        "ok": bool(live),
                        "replicas": len(router.replicas),
                        "live": sorted(live),
                    },
                )
            elif self.path == "/readyz":
                ready = router.num_ready
                self._reply(
                    200 if ready > 0 else 503,
                    {
                        "ready": ready > 0,
                        "num_ready": ready,
                        "replicas": {
                            name: r.describe()
                            for name, r in sorted(router.replicas.items())
                        },
                    },
                )
            elif self.path == "/stats":
                self._reply(200, router.snapshot())
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:
            if self.path != "/infer":
                self._reply(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
                x = np.asarray(payload["x"])
                slo_class = payload.get("class")
                if slo_class is not None and not isinstance(slo_class, str):
                    raise TypeError("'class' must be a string")
            except (ValueError, KeyError, TypeError) as exc:
                self._reply(400, {"error": f"bad request body: {exc!r}"})
                return
            t0 = time.monotonic()
            try:
                fleet_request = router.submit(x, slo_class=slo_class)
                logits = fleet_request.future.result(
                    router.spec.result_timeout
                )
            except Overloaded as exc:
                self._reply(429, {"error": str(exc)})
                return
            except ValueError as exc:
                self._reply(400, {"error": str(exc)})
                return
            except BaseException as exc:
                self._reply(500, {"error": repr(exc)})
                return
            self._reply(
                200,
                {
                    "request_id": fleet_request.fleet_id,
                    "replica": fleet_request.replica,
                    "class": fleet_request.slo_class,
                    "logits": np.asarray(logits).tolist(),
                    "latency_ms": (time.monotonic() - t0) * 1e3,
                },
            )

    return ThreadingHTTPServer((host, port), Handler)
