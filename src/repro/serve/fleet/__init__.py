"""``repro.serve.fleet`` — multi-replica serving on top of
:mod:`repro.serve`.

One :class:`~repro.serve.server.PipelineServer` is one replica; this
package runs N of them behind a single front door:

* :mod:`~repro.serve.fleet.router` — :class:`FleetRouter`:
  queue-depth-aware least-loaded dispatch, fleet-id accounting that
  proves no request is dropped or duplicated (including across weight
  swaps), and an HTTP front door mirroring the single-server wire
  shapes;
* :mod:`~repro.serve.fleet.admission` — SLO classes (``interactive``
  vs ``batch``) priced against the
  :class:`~repro.serve.batcher.DynamicBatcher` knobs: batch traffic
  yields its coalescing slack to interactive, interactive gets
  :class:`~repro.serve.batcher.Overloaded` pushback first;
* :mod:`~repro.serve.fleet.autoscaler` — queue-wait-p95-driven scale
  out, idle-grace drain-and-retire scale in, bounded by
  ``min/max_replicas``;
* :mod:`~repro.serve.fleet.reload` — :func:`rolling_reload`:
  zero-downtime weight hot-swap from a PR-4 checkpoint, one replica at
  a time, fingerprint-verified.
"""

from repro.serve.fleet.admission import (
    AdmissionController,
    SLOClass,
    default_slo_classes,
)
from repro.serve.fleet.autoscaler import AutoscalePolicy, FleetAutoscaler
from repro.serve.fleet.reload import ReloadReport, rolling_reload
from repro.serve.fleet.router import (
    FleetRequest,
    FleetRouter,
    Replica,
    ReplicaSpec,
)

__all__ = [
    "AdmissionController",
    "SLOClass",
    "default_slo_classes",
    "AutoscalePolicy",
    "FleetAutoscaler",
    "ReloadReport",
    "rolling_reload",
    "FleetRequest",
    "FleetRouter",
    "Replica",
    "ReplicaSpec",
]
