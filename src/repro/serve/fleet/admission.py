"""SLO classes and fleet-level admission control.

The fleet serves two kinds of traffic with one queueing fabric:

``interactive``
    Tight end-to-end deadline.  Queueing an interactive request deeply
    is useless — by the time it dispatches its deadline is blown — so
    the right overload response is **fast pushback**: reject with
    :class:`~repro.serve.batcher.Overloaded` the moment the measured
    queue wait approaches the deadline, and let the client retry or
    shed.  Interactive requests also carry ``max_wait = 0`` into the
    :class:`~repro.serve.batcher.DynamicBatcher`: they never sit in the
    coalescing window, they flush the next packet immediately.

``batch``
    Loose deadline, throughput-oriented.  Batch requests tolerate the
    batcher's full coalescing slack (wide packets amortize per-op
    overhead) and deep queues; they are only pushed back when the
    aggregate queue capacity is genuinely exhausted.

That ordering — *interactive gets Overloaded pushback before batch
does* — is the admission pricing: each class is admitted only while the
fleet's recent queue wait fits inside its own deadline, so the class
with the tightest deadline hits its ceiling first, and the class with
slack yields its coalescing window whenever an interactive request is
queued behind it.

Both knobs are priced against the existing
:class:`~repro.serve.batcher.DynamicBatcher` configuration: a class's
structural queue allowance is a share of the *aggregate* ``max_queue``
over ready replicas, and its coalescing slack is an override of the
batcher's ``max_wait``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.batcher import Overloaded


@dataclass(frozen=True)
class SLOClass:
    """One admission class (see module docstring).

    Parameters
    ----------
    name:
        Wire tag; requests carry it end to end (loadgen -> router ->
        batcher -> stats).
    deadline_s:
        The end-to-end latency objective this class is served under.
        Admission rejects the class when the fleet's recent p95 queue
        wait exceeds ``deadline_s * deadline_headroom`` — pushing back
        *before* the deadline is blown rather than after.
    max_wait_s:
        Coalescing slack this class's requests grant the batcher
        (per-request ``max_wait`` override).  ``0`` = flush
        immediately.
    queue_share:
        Fraction of the fleet's aggregate admission queue
        (``sum(max_queue)`` over ready replicas) this class may occupy
        on its own.  ``1.0`` = may fill the whole queue.
    """

    name: str
    deadline_s: float
    max_wait_s: float
    queue_share: float = 1.0

    def __post_init__(self):
        if self.deadline_s <= 0:
            raise ValueError(
                f"{self.name}: deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.max_wait_s < 0:
            raise ValueError(
                f"{self.name}: max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if not 0.0 < self.queue_share <= 1.0:
            raise ValueError(
                f"{self.name}: queue_share must be in (0, 1], "
                f"got {self.queue_share}"
            )


def default_slo_classes(
    interactive_deadline_s: float = 0.25,
    batch_deadline_s: float = 5.0,
    batch_max_wait_s: float = 0.004,
) -> dict[str, SLOClass]:
    """The stock two-class fleet: tight-deadline zero-slack
    ``interactive`` capped at half the queue, loose ``batch`` with the
    full coalescing window and the full queue."""
    return {
        "interactive": SLOClass(
            "interactive",
            deadline_s=interactive_deadline_s,
            max_wait_s=0.0,
            queue_share=0.5,
        ),
        "batch": SLOClass(
            "batch",
            deadline_s=batch_deadline_s,
            max_wait_s=batch_max_wait_s,
            queue_share=1.0,
        ),
    }


class AdmissionController:
    """Decide, per request, whether the fleet admits it (module
    docstring).  Pure bookkeeping-free logic: the router owns the
    outstanding counters and gauges and passes them in, so the
    controller unit-tests without any fleet running.

    ``deadline_headroom`` scales every class's deadline into its
    pushback threshold (0.5 = reject once measured p95 queue wait
    passes half the deadline — the other half is budget for the
    pipeline itself and for measurement lag).
    """

    def __init__(
        self,
        classes: dict[str, SLOClass] | None = None,
        deadline_headroom: float = 0.5,
    ):
        if not 0.0 < deadline_headroom <= 1.0:
            raise ValueError(
                "deadline_headroom must be in (0, 1], "
                f"got {deadline_headroom}"
            )
        self.classes = dict(
            default_slo_classes() if classes is None else classes
        )
        if not self.classes:
            raise ValueError("at least one SLO class is required")
        for name, slo in self.classes.items():
            if name != slo.name:
                raise ValueError(
                    f"class key {name!r} does not match its "
                    f"SLOClass.name {slo.name!r}"
                )
        self.deadline_headroom = float(deadline_headroom)

    def resolve(self, name: str | None) -> SLOClass:
        """Look up a class by wire tag (``None`` -> ``interactive`` if
        defined, else the first class)."""
        if name is None:
            if "interactive" in self.classes:
                return self.classes["interactive"]
            return next(iter(self.classes.values()))
        try:
            return self.classes[name]
        except KeyError:
            raise ValueError(
                f"unknown SLO class {name!r}; fleet serves "
                f"{sorted(self.classes)}"
            ) from None

    def admit(
        self,
        slo: SLOClass,
        outstanding: dict[str, int],
        capacity: int,
        queue_wait_p95: float | None,
    ) -> None:
        """Raise :class:`Overloaded` if the fleet should push this
        request back; return silently to admit.

        ``outstanding`` maps class name -> requests admitted by the
        router and not yet resolved; ``capacity`` is the aggregate
        ``max_queue`` over *ready* replicas; ``queue_wait_p95`` the
        fleet's recent measured p95 queue wait (``None`` = no signal
        yet, admit on structure alone).
        """
        total = sum(outstanding.values())
        if total >= capacity:
            raise Overloaded(
                f"fleet queue exhausted ({total}/{capacity} outstanding)"
            )
        own_limit = max(1, int(slo.queue_share * capacity))
        if outstanding.get(slo.name, 0) >= own_limit:
            raise Overloaded(
                f"class {slo.name!r} at its queue share "
                f"({own_limit}/{capacity})"
            )
        # Deadline pressure is a *trailing* signal (p95 over recently
        # completed requests), so it is only trusted while the fleet is
        # also *currently* at least half occupied: a wait spike left by
        # a transient hiccup — e.g. the compute stall of a rolling
        # weight swap — over already-drained queues is turbulence, not
        # sustained overload, and rejecting on it would starve the
        # tight-deadline class for the length of the measurement
        # window even though its requests would now dispatch instantly.
        if queue_wait_p95 is not None and total >= max(1, capacity // 2):
            threshold = slo.deadline_s * self.deadline_headroom
            if queue_wait_p95 > threshold:
                raise Overloaded(
                    f"class {slo.name!r} deadline pressure: p95 queue "
                    f"wait {queue_wait_p95 * 1e3:.1f} ms > "
                    f"{threshold * 1e3:.1f} ms budget"
                )
