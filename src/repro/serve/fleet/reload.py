"""Rolling zero-downtime weight hot-swap across a fleet.

:func:`rolling_reload` swaps every replica onto a new PR-4 checkpoint
**one replica at a time**: drain one, rebuild it on the new weights
(fingerprint-verified), swap it back in, then move to the next.  At
every instant at least ``fleet size - 1`` replicas admit traffic, so a
fleet of two or more never refuses service during the swap — the
serving-availability analogue of the paper's "no pipeline flush"
training claim: weights change underneath continuous work without
stopping the work.

The :class:`ReloadReport` carries the per-replica swap events and the
minimum ready-replica count actually *observed while each replica was
draining* (``min_ready_observed``), which is what the fleet smoke test
asserts stayed positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.checkpoint import checkpoint_fingerprint
from repro.serve.fleet.router import FleetRouter


@dataclass
class ReloadReport:
    """Outcome of one :func:`rolling_reload` sweep."""

    checkpoint: str
    #: fingerprint every replica must serve after the sweep
    fingerprint: str
    #: per-replica swap events, in sweep order (see ``Replica.reload``)
    events: list[dict] = field(default_factory=list)
    #: fewest ready replicas observed while any replica was draining
    min_ready_observed: int = 0

    @property
    def replicas_swapped(self) -> int:
        return len(self.events)

    def as_dict(self) -> dict:
        return {
            "checkpoint": self.checkpoint,
            "fingerprint": self.fingerprint,
            "replicas_swapped": self.replicas_swapped,
            "min_ready_observed": self.min_ready_observed,
            "events": list(self.events),
        }


def rolling_reload(
    router: FleetRouter, checkpoint: str, verify: bool = True
) -> ReloadReport:
    """Hot-swap the whole fleet onto ``checkpoint``, one replica at a
    time (module docstring).  Synchronous: returns once every replica
    serves the new weights.  If one replica's swap fails (bad
    checkpoint, fingerprint mismatch) that replica keeps serving its
    old weights, the sweep aborts, and the exception propagates — the
    report's ``events`` tell how far it got.
    """
    report = ReloadReport(
        checkpoint=checkpoint,
        fingerprint=checkpoint_fingerprint(checkpoint),
        min_ready_observed=router.num_ready,
    )

    def observe_drain(_replica) -> None:
        report.min_ready_observed = min(
            report.min_ready_observed, router.num_ready
        )

    for name in sorted(router.replicas):
        event = router.reload_replica(
            name, checkpoint, verify=verify, on_draining=observe_drain
        )
        report.events.append(event)
        report.min_ready_observed = min(
            report.min_ready_observed, router.num_ready
        )
    return report
