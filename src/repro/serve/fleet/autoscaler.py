"""Queue-wait-driven replica autoscaling.

The scaling signal is the fleet's recent **p95 queue wait**
(:meth:`~repro.serve.stats.ServingStats.recent_queue_wait_p95`), not
raw throughput: queue wait is the component of latency that adding a
replica can actually remove, and it rises *before* deadlines are blown,
which gives the scaler lead time the tail percentiles themselves don't.

Policy (all knobs on :class:`AutoscalePolicy`):

* **scale out** when p95 queue wait exceeds ``scale_out_wait_s`` and
  the fleet is below ``max_replicas``;
* **scale in** (drain-and-retire one replica) when the fleet has been
  *idle* — zero outstanding requests — for at least ``idle_grace_s``
  and is above ``min_replicas``;
* both directions respect a shared ``cooldown_s`` so one burst cannot
  flap the fleet.

The decision function is pure (time and gauges are passed in), so the
whole policy unit-tests with a fake clock; the
:class:`~repro.serve.fleet.router.FleetRouter` feeds it real readings
from its ``tick()``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for :class:`FleetAutoscaler` (see module docstring)."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: scale out when fleet p95 queue wait exceeds this (seconds)
    scale_out_wait_s: float = 0.05
    #: retire one replica after this long with zero outstanding work
    idle_grace_s: float = 2.0
    #: minimum spacing between any two scaling actions
    cooldown_s: float = 1.0

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) < min_replicas "
                f"({self.min_replicas})"
            )
        if self.scale_out_wait_s <= 0:
            raise ValueError(
                f"scale_out_wait_s must be > 0, got {self.scale_out_wait_s}"
            )
        if self.idle_grace_s < 0 or self.cooldown_s < 0:
            raise ValueError("idle_grace_s / cooldown_s must be >= 0")


class FleetAutoscaler:
    """Stateful wrapper around one :class:`AutoscalePolicy`.

    Holds only the minimal memory the policy needs — when the fleet
    last went idle and when the last action fired — and exposes a pure
    :meth:`decide` driven entirely by caller-supplied readings.
    """

    def __init__(self, policy: AutoscalePolicy | None = None):
        self.policy = policy if policy is not None else AutoscalePolicy()
        self._idle_since: float | None = None
        self._last_action_t: float | None = None
        #: decision log, newest last: (t, action, reason)
        self.events: list[tuple[float, str, str]] = []

    def decide(
        self,
        now: float,
        ready_replicas: int,
        queue_wait_p95: float | None,
        outstanding: int,
    ) -> str | None:
        """Return ``"out"`` (add a replica), ``"in"`` (drain-and-retire
        one), or ``None`` (hold), given the fleet's current readings.

        The caller is responsible for acting on the verdict; this
        method only tracks idle/cooldown state and logs its decisions.
        """
        pol = self.policy

        if outstanding > 0:
            self._idle_since = None
        elif self._idle_since is None:
            self._idle_since = now

        if self._last_action_t is not None:
            if now - self._last_action_t < pol.cooldown_s:
                return None

        if (
            queue_wait_p95 is not None
            and queue_wait_p95 > pol.scale_out_wait_s
            and ready_replicas < pol.max_replicas
        ):
            self._last_action_t = now
            self._idle_since = None
            reason = (
                f"p95 queue wait {queue_wait_p95 * 1e3:.1f} ms > "
                f"{pol.scale_out_wait_s * 1e3:.1f} ms"
            )
            self.events.append((now, "out", reason))
            return "out"

        if (
            self._idle_since is not None
            and now - self._idle_since >= pol.idle_grace_s
            and ready_replicas > pol.min_replicas
        ):
            idle_for = now - self._idle_since
            self._last_action_t = now
            self._idle_since = now  # restart the grace clock per retire
            reason = (
                f"idle for {idle_for:.2f}s "
                f"(grace {pol.idle_grace_s:.2f}s)"
            )
            self.events.append((now, "in", reason))
            return "in"

        return None
