"""Inference sessions: frozen weights + a pipeline backend to run them on.

An :class:`InferenceSession` is the serving subsystem's handle on a
model: it takes trained weights — from a live training engine
(:meth:`InferenceSession.from_engine`) or a PR-4 checkpoint file with
the optimizer state stripped (:meth:`InferenceSession.from_checkpoint`)
— freezes them onto a fresh set of pipeline stages (modules in eval
mode, ``lr=0``, no optimizer, no mitigation), and drives forward-only
work through any of the three runtime backends:

* ``runtime="sim"`` — synchronous in-process forward (one vectorized
  op per stage per packet);
* ``runtime="threaded"`` — one worker thread per compute stage;
* ``runtime="process"`` — one worker process per compute stage with
  packets crossing stage boundaries through forward-only shared-memory
  rings (no backward slots).

Two entry points:

* :meth:`infer` — batch mode: split ``X`` into micro-batch packets per
  the :class:`~repro.pipeline.schedule.InferenceSchedule` and return
  the logits (the offline path, used by parity tests and the
  sequential baseline of the serving benchmark);
* :meth:`open_stream` — serving mode: a persistent stream the
  front-end (:class:`repro.serve.server.PipelineServer`) keeps open
  across requests, pushing dynamically-coalesced packets in and
  pulling logits out.

Correctness contract (pinned in ``tests/test_serve_session.py``): for
the same packet decomposition, every backend's outputs are **bit-exact**
with :meth:`forward_reference` — the offline batched forward over those
same packets.  The decomposition is part of the contract because BLAS
kernels round differently for different GEMM widths; see
:mod:`repro.pipeline.inference`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.models.arch import StageGraphModel
from repro.pipeline.checkpoint import (
    model_fingerprint,
    restore_inference_weights,
)
from repro.pipeline.inference import (
    DEFAULT_INFER_TIMEOUT,
    DEFAULT_STREAM_CAPACITY,
    InferenceRunStats,
    infer_batch,
    modules_eval_mode,
    open_inference_stream,
)
from repro.pipeline.schedule import InferenceSchedule
from repro.pipeline.stage import PipelineStage
from repro.precision import resolve_precision
from repro.tensor.tensor import Tensor, no_grad

SERVE_BACKENDS = ("sim", "threaded", "process")


class InferenceSession:
    """Frozen weights on a pipeline backend (see module docstring).

    Parameters
    ----------
    model:
        A :class:`StageGraphModel` carrying the weights to serve.  The
        session shares the model's parameter objects (no copy) and
        holds its modules in eval mode while streams are open.
    runtime:
        ``"sim"`` / ``"threaded"`` / ``"process"``.
    micro_batch:
        Maximum packet width: the serving batcher coalesces at most
        this many requests into one vectorized ``(B, ...)`` op, and
        the process backend sizes its ring slots with it.
    capacity:
        Maximum packets in flight inside a stream (backpressure
        threshold; also the ring slot count for ``process``).
    sample_shape / dtype:
        Per-sample input layout, needed up front by the process
        backend to preallocate rings.  ``sample_shape`` may be omitted
        for batch-only use (the first ``infer`` call infers it from
        its input), but :meth:`open_stream` — and therefore serving —
        requires it to be known and raises otherwise.  ``dtype``
        defaults to float64 and may only be passed in the reference
        precision mode: a reduced mode owns the session dtype (its
        compute dtype) and an explicit conflicting ``dtype=`` raises.
    model_factory:
        Spawn-safe rebuild recipe, required for ``process`` on
        non-Linux hosts (mirrors the training runtime's contract).
    precision:
        Serving precision mode (``"float64"`` / ``"float32"`` /
        ``"bf16"`` / ``"int8"`` or a
        :class:`~repro.precision.PrecisionPolicy`).  A reduced mode
        casts the model's weights **once** here — quantizing for int8 —
        and flips the session's input dtype to the mode's compute dtype,
        so ring slots, request parsing and the forward all run on the
        reduced grid.  ``GET /stats`` of a server wrapping the session
        reports the active mode.
    """

    def __init__(
        self,
        model: StageGraphModel,
        runtime: str = "sim",
        micro_batch: int = 8,
        capacity: int = DEFAULT_STREAM_CAPACITY,
        sample_shape: Sequence[int] | None = None,
        dtype=None,
        stall_timeout: float = DEFAULT_INFER_TIMEOUT,
        model_factory: Callable[[], StageGraphModel] | None = None,
        start_method: str | None = None,
        precision=None,
    ):
        if runtime not in SERVE_BACKENDS:
            raise ValueError(
                f"runtime must be one of {SERVE_BACKENDS}, got {runtime!r}"
            )
        if micro_batch < 1:
            raise ValueError(f"micro_batch must be >= 1, got {micro_batch}")
        specs = model.stage_defs
        if not specs or specs[-1].kind != "loss":
            raise ValueError("model must end with a loss stage")
        self.model = model
        self.runtime = runtime
        self.micro_batch = int(micro_batch)
        self.capacity = int(capacity)
        self.sample_shape = (
            None if sample_shape is None else tuple(sample_shape)
        )
        self.precision = resolve_precision(precision)
        if not self.precision.is_reference:
            # a reduced mode owns the session dtype; refuse an explicit
            # dtype= rather than silently overriding it
            if dtype is not None and (
                np.dtype(dtype) != self.precision.compute_dtype
            ):
                raise ValueError(
                    f"dtype={np.dtype(dtype).name!r} conflicts with "
                    f"precision mode {self.precision.mode!r} (compute "
                    f"dtype {self.precision.compute_dtype.name}) — drop "
                    "the dtype argument; the precision mode sets the "
                    "session dtype"
                )
            # cast once at session creation (int8 quantizes here); the
            # fingerprint below hashes the weights actually served
            self.precision.cast_model(model)
            self.dtype = np.dtype(self.precision.compute_dtype)
        else:
            self.dtype = np.dtype("float64" if dtype is None else dtype)
        self.stall_timeout = float(stall_timeout)
        self.model_factory = model_factory
        self.start_method = start_method
        # serving stages: no optimizer state matters (lr=0, no
        # mitigation); parameters are shared with the model, so the
        # weights a training engine just produced are served in place
        self.stages = [
            PipelineStage(
                i, spec, len(specs), lr=0.0, precision=self.precision
            )
            for i, spec in enumerate(specs)
        ]
        #: SHA-256 over the frozen parameters at session creation — the
        #: provenance handle serving stats and responses can surface
        self.fingerprint = model_fingerprint(model)
        self.metadata: dict = {}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_engine(cls, engine, **kwargs) -> "InferenceSession":
        """Serve the weights of a live training engine (any of the three
        pipeline engines).  The session shares the engine's model, so a
        *newly opened* stream (or ``infer`` call) sees the engine's
        latest drained weights.  Weights are frozen per stream at
        stream-open time: the process backend ships them to its workers
        then, and the sim/threaded backends hold the shared modules in
        eval mode while a stream is open — so training the engine while
        a stream is open is unsupported (alternate, or snapshot to a
        checkpoint and serve via :meth:`from_checkpoint`)."""
        kwargs.setdefault(
            "model_factory", getattr(engine, "model_factory", None)
        )
        return cls(engine.model, **kwargs)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        model_factory: Callable[[], StageGraphModel],
        **kwargs,
    ) -> "InferenceSession":
        """Serve a PR-4 checkpoint file: build a fresh model from
        ``model_factory``, load **only** the parameter arrays from the
        checkpoint (optimizer state stripped, schedule tag ignored —
        see :func:`repro.pipeline.checkpoint.restore_inference_weights`)
        and freeze them."""
        model = model_factory()
        metadata = restore_inference_weights(path, model)
        kwargs.setdefault("model_factory", model_factory)
        session = cls(model, **kwargs)
        session.metadata = metadata
        return session

    # -- shape plumbing -----------------------------------------------------

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def _resolve_shape(self, X: np.ndarray | None) -> tuple:
        if self.sample_shape is not None:
            return self.sample_shape
        if X is not None:
            self.sample_shape = tuple(np.asarray(X).shape[1:])
            return self.sample_shape
        raise ValueError(
            "session needs sample_shape (pass it to the constructor or "
            "run a batch infer first) before opening a serving stream"
        )

    # -- batch inference ----------------------------------------------------

    def infer(
        self, X: np.ndarray, micro_batch: int | None = None
    ) -> InferenceRunStats:
        """Run one batch through the pipeline, micro-batched at
        ``micro_batch`` (defaulting to the session width)."""
        X = self.precision.cast_array(X)
        self._resolve_shape(X)
        width = self.micro_batch if micro_batch is None else int(micro_batch)
        return infer_batch(
            self.stages,
            X,
            schedule=InferenceSchedule(width),
            backend=self.runtime,
            stall_timeout=self.stall_timeout,
            capacity=self.capacity,
            model_factory=self.model_factory,
            start_method=self.start_method,
        )

    def forward_reference(
        self, X: np.ndarray, micro_batch: int | None = None
    ) -> np.ndarray:
        """Offline batched forward over the **same packet decomposition**
        the pipeline would use — the bit-exactness reference of the
        serving parity contract."""
        X = self.precision.cast_array(X)
        width = self.micro_batch if micro_batch is None else int(micro_batch)
        chunks = []
        with modules_eval_mode([self.model]), no_grad():
            for i in range(0, X.shape[0], width):
                chunks.append(self.model(Tensor(X[i : i + width])).data)
        if not chunks:
            return np.zeros(0)
        return np.concatenate(chunks, axis=0)

    # -- serving stream -----------------------------------------------------

    def open_stream(self):
        """Open a persistent forward-only stream on the session backend
        (used by :class:`repro.serve.server.PipelineServer`; close it
        when done, or use it as a context manager)."""
        shape = self._resolve_shape(None)
        return open_inference_stream(
            self.stages,
            backend=self.runtime,
            max_width=self.micro_batch,
            sample_shape=shape,
            dtype=self.dtype,
            capacity=self.capacity,
            stall_timeout=self.stall_timeout,
            model_factory=self.model_factory,
            start_method=self.start_method,
        )

    def describe(self) -> str:
        return (
            f"InferenceSession({self.model.name}, runtime={self.runtime}, "
            f"stages={self.num_stages}, micro_batch={self.micro_batch}, "
            f"precision={self.precision.mode}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )
