"""Seeded random-number-generator helpers.

All stochastic components in the package (data synthesis, augmentation,
weight init, dropout, ASGD delay sampling) take a ``numpy.random.Generator``
rather than relying on global state, so every experiment is reproducible
from a single integer seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed (``None`` = entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Deterministically derive ``n`` independent generators from one seed.

    Used when an experiment needs separate streams (e.g. one per training
    run in a five-seed mean) that must not interact.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def derive_seed(seed: int, *tags: int | str) -> int:
    """Derive a stable sub-seed from ``seed`` and a list of tags.

    Tags are hashed into the seed sequence so e.g. ``derive_seed(0, "init")``
    and ``derive_seed(0, "data")`` give unrelated streams.
    """
    material = [seed] + [
        int.from_bytes(str(t).encode(), "little") % (2**32) for t in tags
    ]
    seq = np.random.SeedSequence(material)
    return int(seq.generate_state(1)[0])


def shuffled_indices(
    rng: np.random.Generator, n: int
) -> np.ndarray:
    """A random permutation of ``range(n)`` as an int64 array."""
    return rng.permutation(n)


def choice_no_replace(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Choose ``k`` distinct indices out of ``n``."""
    if k > n:
        raise ValueError(f"cannot choose {k} from {n} without replacement")
    return rng.choice(n, size=k, replace=False)


def rngs_for_runs(base_seed: int, runs: Sequence[int]) -> dict[int, np.random.Generator]:
    """Map run-index -> generator, stable under reordering of ``runs``."""
    return {r: new_rng(derive_seed(base_seed, "run", r)) for r in runs}
