"""Shared utilities: seeded RNG handling, ASCII rendering, result storage."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.render import ascii_heatmap, format_table
from repro.utils.results import ResultStore

__all__ = [
    "new_rng",
    "spawn_rngs",
    "ascii_heatmap",
    "format_table",
    "ResultStore",
]
