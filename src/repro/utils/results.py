"""Persistence of experiment results as JSON files.

Each benchmark writes its regenerated table/figure data under
``results/<experiment_id>.json`` so EXPERIMENTS.md can reference concrete
artifacts and re-runs can be diffed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

import numpy as np


def _jsonable(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json`` can encode them."""
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, float) and not np.isfinite(obj):
        return None if obj != obj else ("inf" if obj > 0 else "-inf")
    return obj


class ResultStore:
    """Write/read experiment result payloads under a results directory."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get("REPRO_RESULTS_DIR", "results")
        self.root = Path(root)

    def path(self, experiment_id: str) -> Path:
        return self.root / f"{experiment_id}.json"

    def save(self, experiment_id: str, payload: dict[str, Any]) -> Path:
        """Persist ``payload`` (plus a timestamp) for ``experiment_id``."""
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "experiment": experiment_id,
            "written_at": time.strftime("%Y-%m-%d %H:%M:%S"),
            "payload": _jsonable(payload),
        }
        out = self.path(experiment_id)
        with out.open("w") as fh:
            json.dump(record, fh, indent=2)
        return out

    def load(self, experiment_id: str) -> dict[str, Any]:
        with self.path(experiment_id).open() as fh:
            return json.load(fh)["payload"]

    def exists(self, experiment_id: str) -> bool:
        return self.path(experiment_id).exists()
