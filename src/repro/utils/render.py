"""ASCII rendering of tables and heatmaps for terminal output.

The benchmark harness regenerates the paper's tables and figures as text:
tables become aligned-column text, heatmaps (Figure 4) become character
ramps, and line plots (Figures 5-7) become printed series.  These renderers
are intentionally dependency-free (no matplotlib in this environment).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

#: Character ramp from low to high used for ASCII heatmaps.
HEATMAP_RAMP = " .:-=+*#%@"


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    floatfmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render a list of row-dicts as an aligned plain-text table.

    Parameters
    ----------
    rows:
        One mapping per row.  Missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.
    floatfmt:
        Format applied to float values.
    title:
        Optional title line printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(v: Any) -> str:
        if v is None:
            return "-"
        if isinstance(v, float) or isinstance(v, np.floating):
            return floatfmt.format(float(v))
        return str(v)

    cells = [[fmt(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    sep = "  "
    header = sep.join(c.ljust(w) for c, w in zip(columns, widths))
    rule = sep.join("-" * w for w in widths)
    body = "\n".join(
        sep.join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in cells
    )
    out = "\n".join([header, rule, body])
    if title:
        out = f"{title}\n{out}"
    return out


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    vmin: float | None = None,
    vmax: float | None = None,
    title: str | None = None,
    invalid_char: str = "X",
) -> str:
    """Render a 2-D array as an ASCII heatmap.

    Values are mapped onto :data:`HEATMAP_RAMP`; NaN/inf cells render as
    ``invalid_char`` (used for the unstable region of Figure 4).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    finite = np.isfinite(matrix)
    if vmin is None:
        vmin = float(matrix[finite].min()) if finite.any() else 0.0
    if vmax is None:
        vmax = float(matrix[finite].max()) if finite.any() else 1.0
    span = (vmax - vmin) or 1.0
    n_levels = len(HEATMAP_RAMP)

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = max((len(s) for s in row_labels), default=0) if row_labels else 0
    for i, row in enumerate(matrix):
        chars = []
        for v in row:
            if not np.isfinite(v):
                chars.append(invalid_char)
            else:
                level = int((v - vmin) / span * (n_levels - 1) + 0.5)
                chars.append(HEATMAP_RAMP[min(max(level, 0), n_levels - 1)])
        prefix = (row_labels[i].rjust(label_w) + " |") if row_labels else ""
        lines.append(prefix + "".join(chars))
    if col_labels:
        # print first / last column labels as a footer
        footer = " " * (label_w + 2) if row_labels else ""
        footer += col_labels[0] + " " + "." * max(
            0, matrix.shape[1] - len(col_labels[0]) - len(col_labels[-1]) - 2
        ) + " " + col_labels[-1]
        lines.append(footer)
    return "\n".join(lines)


def format_series(
    x: Iterable[float],
    ys: Mapping[str, Iterable[float]],
    x_name: str = "x",
    floatfmt: str = "{:.4g}",
) -> str:
    """Render named y-series against an x axis as a table (figure data)."""
    x = list(x)
    rows = []
    series = {k: list(v) for k, v in ys.items()}
    for i, xv in enumerate(x):
        row: dict[str, Any] = {x_name: xv}
        for name, vals in series.items():
            row[name] = vals[i] if i < len(vals) else None
        rows.append(row)
    return format_table(rows, floatfmt=floatfmt)
