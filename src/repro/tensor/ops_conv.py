"""Differentiable 2-D convolution and pooling built on im2col/col2im.

The convolution forward lowers each padded input window into a column matrix
(`im2col`, a strided view reshaped once) so the convolution is a single
batched matmul — the vectorized-NumPy idiom recommended by the project's
performance guide.  The backward pass reads the weight tensor lazily (see
:mod:`repro.tensor`) and reuses the captured column buffer for the weight
gradient.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.tensor.tensor import Tensor, _accumulate, _ensure_tensor, _result


class _ScratchCache(threading.local):
    """Thread-local pool of reusable backward work buffers, keyed by
    ``(role, shape, dtype)``.

    The convolution backward's two big temporaries — the column-gradient
    matrix and the padded input-gradient canvas — are consumed *within*
    one ``_bw`` call and never escape it, so each worker thread (one per
    pipeline stage in the threaded runtime; one per process in the
    process runtime) can reuse a single buffer per shape instead of
    paying an allocation + page-fault sweep per packet.  Thread-locality
    keeps concurrent stage workers from sharing (and corrupting) a
    buffer; anything *returned* from a backward is still freshly
    allocated, because gradients are retained by the autodiff graph and
    shipped across stages.
    """

    #: cache ceiling per thread; heterogeneous workloads (many layer
    #: shapes / batch widths in one long-lived process) reset the cache
    #: rather than growing resident memory without bound
    MAX_BYTES = 64 * 1024 * 1024

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self._bytes = 0

    def get(self, role: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (role, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            if self._bytes + buf.nbytes > self.MAX_BYTES:
                self._buffers.clear()
                self._bytes = 0
            self._buffers[key] = buf
            self._bytes += buf.nbytes
        return buf


_scratch = _ScratchCache()


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Lower sliding windows of an NCHW array to ``(N, C*kh*kw, OH*OW)``.

    ``x`` must already be padded.  The strided view copies exactly once (at
    the reshape).
    """
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    return windows.reshape(n, c * kh * kw, oh * ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter-add column gradients back to the (padded) input layout.

    Inverse of :func:`im2col` in the adjoint sense.  Loops only over the
    ``kh*kw`` kernel positions; each iteration is a vectorized slice-add.
    ``out``, when given, is zeroed and scattered into instead of
    allocating a fresh canvas (the conv backward reuses a cached scratch
    buffer here) — the add order is unchanged, so results stay
    bit-identical.
    """
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    if out is None:
        x = np.zeros(x_shape, dtype=cols.dtype)
    else:
        if out.shape != x_shape or out.dtype != cols.dtype:
            raise ValueError(
                f"col2im out buffer {out.shape}/{out.dtype} does not match "
                f"{x_shape}/{cols.dtype}"
            )
        x = out
        x.fill(0.0)
    for i in range(kh):
        i_end = i + oh * stride
        for j in range(kw):
            j_end = j + ow * stride
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    return x


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation (NCHW) with square stride/padding.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input tensor.
    weight:
        ``(OC, C, KH, KW)`` filter tensor.
    bias:
        Optional ``(OC,)`` tensor added per output channel.
    """
    x = _ensure_tensor(x)
    weight = _ensure_tensor(weight)
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError("conv2d expects NCHW input and OIHW weight")
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {ic}")
    if h + 2 * padding < kh or w + 2 * padding < kw:
        raise ValueError("kernel larger than padded input")

    if padding:
        xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        xp = x.data
    padded_shape = xp.shape
    oh = (padded_shape[2] - kh) // stride + 1
    ow = (padded_shape[3] - kw) // stride + 1

    cols = im2col(xp, kh, kw, stride)  # forward capture (activations)
    w2 = weight.data.reshape(oc, -1)
    out = np.matmul(w2, cols)  # (N, OC, OH*OW) via broadcasting over N
    out = out.reshape(n, oc, oh, ow)

    parents: list[Tensor] = [x, weight]
    if bias is not None:
        bias = _ensure_tensor(bias)
        if bias.shape != (oc,):
            raise ValueError(f"bias must have shape ({oc},), got {bias.shape}")
        out = out + bias.data.reshape(1, oc, 1, 1)
        parents.append(bias)

    def _bw(g: np.ndarray) -> None:
        go = g.reshape(n, oc, oh * ow)
        # weight gradient: forward-captured activations x backward grads.
        # The per-sample outer products land in a cached scratch (consumed
        # by the .sum reduction below); only the reduced gw is retained.
        gw_batch = _scratch.get("gw", (n, oc, cols.shape[1]), g.dtype)
        np.matmul(go, cols.transpose(0, 2, 1), out=gw_batch)
        _accumulate(weight, gw_batch.sum(axis=0).reshape(weight.shape))
        # input gradient: lazy read of the *current* weight value
        w2_now = weight.data.reshape(oc, -1)
        gcols = _scratch.get("gcols", (n, cols.shape[1], oh * ow), g.dtype)
        np.matmul(w2_now.T, go, out=gcols)  # (N, C*KH*KW, OH*OW)
        if padding:
            # scatter into the cached padded canvas, then hand the graph a
            # fresh exact-size interior copy: the old slice-view kept the
            # whole canvas alive, this frees it for the next packet
            canvas = _scratch.get("canvas", padded_shape, g.dtype)
            col2im(gcols, padded_shape, kh, kw, stride, out=canvas)
            gx = canvas[:, :, padding:-padding, padding:-padding].copy()
        else:
            # unpadded: the canvas *is* the retained gradient, so it must
            # be freshly allocated
            gx = col2im(gcols, padded_shape, kh, kw, stride)
        _accumulate(x, gx)
        if bias is not None:
            _accumulate(bias, g.sum(axis=(0, 2, 3)))

    return _result(out, tuple(parents), _bw)


def _pool_windows(data: np.ndarray, k: int) -> np.ndarray:
    """Reshape NCHW into ``(N, C, H/k, W/k, k*k)`` non-overlapping windows."""
    n, c, h, w = data.shape
    if h % k or w % k:
        raise ValueError(
            f"pooling requires spatial dims divisible by kernel {k}, got {h}x{w}"
        )
    oh, ow = h // k, w // k
    return (
        data.reshape(n, c, oh, k, ow, k)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(n, c, oh, ow, k * k)
    )


def _unpool_windows(gwin: np.ndarray, k: int) -> np.ndarray:
    """Inverse layout transform of :func:`_pool_windows`."""
    n, c, oh, ow, _ = gwin.shape
    return (
        gwin.reshape(n, c, oh, ow, k, k)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(n, c, oh * k, ow * k)
    )


def max_pool2d(x, kernel: int) -> Tensor:
    """Non-overlapping max pooling (kernel == stride).

    Backward routes each window's gradient to the forward-time argmax (ties
    broken toward the first element, as in cuDNN deterministic mode).
    """
    x = _ensure_tensor(x)
    windows = _pool_windows(x.data, kernel)
    idx = windows.argmax(axis=-1)  # forward capture
    out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
    in_shape = x.shape

    def _bw(g: np.ndarray) -> None:
        gwin = np.zeros(windows.shape, dtype=g.dtype)
        np.put_along_axis(gwin, idx[..., None], g[..., None], axis=-1)
        _accumulate(x, _unpool_windows(gwin, kernel).reshape(in_shape))

    return _result(out, (x,), _bw)


def avg_pool2d(x, kernel: int) -> Tensor:
    """Non-overlapping average pooling (kernel == stride)."""
    x = _ensure_tensor(x)
    windows = _pool_windows(x.data, kernel)
    out = windows.mean(axis=-1)
    in_shape = x.shape
    k2 = kernel * kernel

    def _bw(g: np.ndarray) -> None:
        gwin = np.repeat(g[..., None] / k2, k2, axis=-1)
        _accumulate(x, _unpool_windows(gwin, kernel).reshape(in_shape))

    return _result(out, (x,), _bw)
