"""Central-difference gradient checking for the autodiff engine.

Every op and every layer in :mod:`repro.nn` is validated against these
numerics in the test suite (including hypothesis property tests over random
shapes).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t one input.

    ``fn`` must return a single-element tensor.  The input being perturbed
    must be float64 for the difference quotient to be meaningful.
    """
    target = inputs[wrt]
    base = target.data.astype(np.float64, copy=True)
    grad = np.zeros_like(base)
    flat_base = base.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_base.size):
        orig = flat_base[i]
        flat_base[i] = orig + eps
        target.data = base.reshape(target.data.shape)
        hi = float(fn(*inputs).data)
        flat_base[i] = orig - eps
        target.data = base.reshape(target.data.shape)
        lo = float(fn(*inputs).data)
        flat_base[i] = orig
        flat_grad[i] = (hi - lo) / (2.0 * eps)
    target.data = base.reshape(target.data.shape)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of scalar ``fn(*inputs)`` match numerics.

    Checks every input that ``requires_grad``.  Raises ``AssertionError``
    with the worst mismatch on failure.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued fn")
    out.backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_grad(fn, inputs, wrt=i, eps=eps)
        err = np.abs(analytic - numeric)
        tol = atol + rtol * np.abs(numeric)
        if not np.all(err <= tol):
            worst = float((err - tol).max())
            raise AssertionError(
                f"gradient mismatch on input {i}: worst excess error {worst:.3e} "
                f"(max abs analytic {np.abs(analytic).max():.3e}, "
                f"numeric {np.abs(numeric).max():.3e})"
            )
