"""Reverse-mode autodiff on NumPy arrays.

Public surface:

* :class:`~repro.tensor.tensor.Tensor` — array with gradient tracking.
* :func:`~repro.tensor.tensor.no_grad` — context manager disabling graph
  construction.
* op functions (also exposed as :class:`Tensor` methods where natural):
  arithmetic, ``matmul``, reductions, shape ops, ``relu``, ``log_softmax``,
  ``cross_entropy``.
* :mod:`~repro.tensor.ops_conv` — ``conv2d``, ``max_pool2d``,
  ``avg_pool2d``.
* :mod:`~repro.tensor.grad_check` — central-difference gradient checking
  used throughout the test suite.

Design note (load-bearing for this reproduction): backward closures read the
*current* value of parent tensors wherever the math needs the parent's value
(e.g. the weight matrix in ``matmul``/``conv2d`` input-gradients), and
capture forward-time intermediates by value where the math needs
forward-time activations (e.g. ReLU masks, im2col buffers, normalization
statistics).  Mutating a parameter's ``.data`` between a forward and its
backward therefore reproduces exactly the weight-inconsistency semantics of
pipelined backpropagation without weight stashing (paper §2, Appendix G.2).
"""

from repro.tensor.tensor import (
    Tensor,
    no_grad,
    grad_enabled,
    add,
    sub,
    mul,
    div,
    matmul,
    relu,
    exp,
    log,
    sqrt,
    tanh,
    sigmoid,
    reshape,
    transpose,
    pad2d,
    log_softmax,
    cross_entropy,
    softmax,
)
from repro.tensor.ops_conv import (
    conv2d,
    max_pool2d,
    avg_pool2d,
    im2col,
    col2im,
)
from repro.tensor.grad_check import numerical_grad, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "grad_enabled",
    "add",
    "sub",
    "mul",
    "div",
    "matmul",
    "relu",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "reshape",
    "transpose",
    "pad2d",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "im2col",
    "col2im",
    "numerical_grad",
    "check_gradients",
]
