"""The :class:`Tensor` class and core differentiable operations.

A :class:`Tensor` wraps a ``numpy.ndarray`` and optionally participates in a
dynamically-built reverse-mode graph.  ``Tensor.backward`` walks the graph in
reverse topological order, calling each node's backward closure.

Two value-capture conventions are used in backward closures (see the package
docstring of :mod:`repro.tensor` for why this matters to pipelined
backpropagation):

* **lazy parent reads** — where the derivative needs the *value of a parent
  tensor* (``b.data`` in ``a*b``, the weight in ``matmul``), the closure
  reads ``parent.data`` when backward runs;
* **forward captures** — where the derivative needs a *forward-time
  intermediate* (ReLU mask, softmax output), the closure captures the array
  computed during forward.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

from repro import config

_GRAD_ENABLED: bool = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the ``with`` block (inference)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def grad_enabled() -> bool:
    """Whether ops currently record the autodiff graph."""
    return _GRAD_ENABLED


def _coerce_array(data, dtype=None) -> np.ndarray:
    arr = np.asarray(data)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if arr.dtype in (np.float32, np.float64):
        return arr
    return arr.astype(config.DEFAULT_DTYPE)


class Tensor:
    """A NumPy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like.  Integer/bool inputs are promoted to
        ``repro.config.DEFAULT_DTYPE``; float32/float64 are kept.
    requires_grad:
        Whether gradients should accumulate in ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = _coerce_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None

    # -- introspection ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a 1-element tensor")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    # -- backward engine ---------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones and may only be omitted for single-element
        tensors (scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo = _topological_order(self)
        _accumulate(self, grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other):
        return add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        return sub(self, other)

    def __rsub__(self, other):
        return sub(other, self)

    def __mul__(self, other):
        return mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return div(self, other)

    def __rtruediv__(self, other):
        return div(other, self)

    def __neg__(self):
        return mul(self, -1.0)

    def __pow__(self, exponent):
        return power(self, exponent)

    def __matmul__(self, other):
        return matmul(self, other)

    def __getitem__(self, idx):
        return getitem(self, idx)

    # -- method forms of common ops -----------------------------------------

    def sum(self, axis=None, keepdims: bool = False):
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def flatten(self, start_dim: int = 1):
        lead = self.shape[:start_dim]
        return reshape(self, lead + (-1,))

    def transpose(self, axes: Sequence[int]):
        return transpose(self, axes)

    def relu(self):
        return relu(self)

    def exp(self):
        return exp(self)

    def log(self):
        return log(self)

    def sqrt(self):
        return sqrt(self)


# -- graph plumbing -----------------------------------------------------------


def backward_multi(pairs: Sequence[tuple["Tensor", np.ndarray]]) -> None:
    """Backpropagate from several roots in one topological walk.

    Needed when two outputs share a sub-graph (e.g. a pipeline stage that
    emits both ``conv(preact(x))`` and ``preact(x)``): calling
    ``backward`` on each root separately would re-propagate the shared
    nodes' accumulated gradients and double-count.  Seeds every root's
    gradient first, then walks the union graph once.
    """
    pairs = [(t, g) for t, g in pairs if t.requires_grad]
    if not pairs:
        return
    topo: list[Tensor] = []
    visited: set[int] = set()
    for root, _ in pairs:
        if id(root) not in visited:
            _collect_topo(root, topo, visited)
    for root, g in pairs:
        g = np.asarray(g, dtype=root.data.dtype)
        if g.shape != root.data.shape:
            g = np.broadcast_to(g, root.data.shape).astype(root.data.dtype)
        _accumulate(root, g)
    for node in reversed(topo):
        if node._backward_fn is not None and node.grad is not None:
            node._backward_fn(node.grad)


def _collect_topo(root: Tensor, topo: list[Tensor], visited: set[int]) -> None:
    """Append post-order nodes of ``root``'s graph to ``topo`` (shared
    ``visited``)."""
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))


def _topological_order(root: Tensor) -> list[Tensor]:
    """Iterative post-order over the graph (inputs before outputs)."""
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    return topo


def _accumulate(t: Tensor, g: np.ndarray) -> None:
    if not t.requires_grad:
        return
    if g.shape != t.data.shape:
        raise ValueError(
            f"gradient shape {g.shape} does not match tensor shape {t.data.shape}"
        )
    if t.grad is None:
        t.grad = g.astype(t.data.dtype, copy=True)
    else:
        t.grad = t.grad + g


def _result(
    data: np.ndarray,
    parents: tuple[Tensor, ...],
    backward_fn: Callable[[np.ndarray], None],
) -> Tensor:
    """Build an op result, attaching the graph only when grad is enabled."""
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = parents
        out._backward_fn = backward_fn
    return out


def _ensure_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def _ensure_operands(a, b) -> tuple[Tensor, Tensor]:
    """Coerce a binary op's operands, promoting bare python scalars
    *weakly*: an int/float adopts the other operand's dtype (NumPy's own
    scalar rule) instead of minting a float64 0-d array that would drag
    a float32 tensor up to float64.  Exact for float64 tensors — python
    floats are float64 — so the reference path is unchanged; this is
    what keeps reduced-precision activations on their grid through
    scalar ops like ``var + eps`` or ``x * 0.5``."""
    if type(b) in (bool, int, float) and isinstance(a, Tensor):
        return a, Tensor(np.asarray(b, dtype=a.data.dtype))
    if type(a) in (bool, int, float) and isinstance(b, Tensor):
        return Tensor(np.asarray(a, dtype=b.data.dtype)), b
    return _ensure_tensor(a), _ensure_tensor(b)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` over broadcasted axes back to ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# -- elementwise arithmetic ----------------------------------------------------


def add(a, b) -> Tensor:
    """Elementwise/broadcasting addition."""
    a, b = _ensure_operands(a, b)
    out_data = a.data + b.data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, _unbroadcast(g, a.data.shape))
        _accumulate(b, _unbroadcast(g, b.data.shape))

    return _result(out_data, (a, b), _bw)


def sub(a, b) -> Tensor:
    """Elementwise/broadcasting subtraction."""
    a, b = _ensure_operands(a, b)
    out_data = a.data - b.data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, _unbroadcast(g, a.data.shape))
        _accumulate(b, _unbroadcast(-g, b.data.shape))

    return _result(out_data, (a, b), _bw)


def mul(a, b) -> Tensor:
    """Elementwise/broadcasting multiplication."""
    a, b = _ensure_operands(a, b)
    out_data = a.data * b.data

    def _bw(g: np.ndarray) -> None:
        # lazy parent reads: uses the parents' values at backward time
        _accumulate(a, _unbroadcast(g * b.data, a.data.shape))
        _accumulate(b, _unbroadcast(g * a.data, b.data.shape))

    return _result(out_data, (a, b), _bw)


def div(a, b) -> Tensor:
    """Elementwise/broadcasting division."""
    a, b = _ensure_operands(a, b)
    out_data = a.data / b.data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, _unbroadcast(g / b.data, a.data.shape))
        _accumulate(b, _unbroadcast(-g * a.data / (b.data * b.data), b.data.shape))

    return _result(out_data, (a, b), _bw)


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a *scalar* exponent."""
    a = _ensure_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power only supports scalar exponents")
    exponent = float(exponent)
    out_data = a.data**exponent

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * exponent * a.data ** (exponent - 1.0))

    return _result(out_data, (a,), _bw)


# -- matmul --------------------------------------------------------------------


def matmul(a, b) -> Tensor:
    """Matrix product supporting 2-D and batched (>=2-D) operands."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires operands with ndim >= 2")
    out_data = np.matmul(a.data, b.data)

    def _bw(g: np.ndarray) -> None:
        # lazy parent reads (weight inconsistency semantics, see module doc)
        ga = np.matmul(g, np.swapaxes(b.data, -1, -2))
        gb = np.matmul(np.swapaxes(a.data, -1, -2), g)
        _accumulate(a, _unbroadcast(ga, a.data.shape))
        _accumulate(b, _unbroadcast(gb, b.data.shape))

    return _result(out_data, (a, b), _bw)


# -- reductions ----------------------------------------------------------------


def _expand_reduced(g: np.ndarray, shape: tuple[int, ...], axis, keepdims: bool):
    if axis is None:
        return np.broadcast_to(g, shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(shape) for a in axes)
        g = np.expand_dims(g, axes)
    return np.broadcast_to(g, shape)


def tensor_sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    shape = a.data.shape

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, _expand_reduced(g, shape, axis, keepdims).astype(g.dtype))

    return _result(out_data, (a,), _bw)


def tensor_mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    shape = a.data.shape
    count = a.data.size / max(out_data.size, 1)

    def _bw(g: np.ndarray) -> None:
        _accumulate(
            a, (_expand_reduced(g, shape, axis, keepdims) / count).astype(g.dtype)
        )

    return _result(out_data, (a,), _bw)


# -- shape ops -----------------------------------------------------------------


def reshape(a, shape) -> Tensor:
    """View/copy with a new shape (backward reshapes the gradient)."""
    a = _ensure_tensor(a)
    original = a.data.shape
    out_data = a.data.reshape(shape)

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g.reshape(original))

    return _result(out_data, (a,), _bw)


def transpose(a, axes: Sequence[int]) -> Tensor:
    """Permute axes (backward applies the inverse permutation)."""
    a = _ensure_tensor(a)
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))
    out_data = a.data.transpose(axes)

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g.transpose(inverse))

    return _result(out_data, (a,), _bw)


def pad2d(a, pad: int) -> Tensor:
    """Zero-pad the last two (spatial) dims of an NCHW tensor by ``pad``."""
    a = _ensure_tensor(a)
    if pad == 0:
        return a
    if a.ndim != 4:
        raise ValueError("pad2d expects an NCHW tensor")
    width = ((0, 0), (0, 0), (pad, pad), (pad, pad))
    out_data = np.pad(a.data, width)

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g[:, :, pad:-pad, pad:-pad])

    return _result(out_data, (a,), _bw)


def getitem(a, idx) -> Tensor:
    a = _ensure_tensor(a)
    out_data = a.data[idx]
    shape = a.data.shape

    def _bw(g: np.ndarray) -> None:
        full = np.zeros(shape, dtype=g.dtype)
        np.add.at(full, idx, g)
        _accumulate(a, full)

    return _result(out_data, (a,), _bw)


# -- nonlinearities ------------------------------------------------------------


def relu(a) -> Tensor:
    """Rectified linear unit (mask captured at forward time)."""
    a = _ensure_tensor(a)
    mask = a.data > 0  # forward capture: the activation mask
    out_data = np.where(mask, a.data, 0.0)

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * mask)

    return _result(out_data, (a,), _bw)


def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = _ensure_tensor(a)
    out_data = np.exp(a.data)
    captured = out_data  # forward capture

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * captured)

    return _result(out_data, (a,), _bw)


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = _ensure_tensor(a)
    captured = a.data.copy()  # forward capture of the activation
    out_data = np.log(captured)

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g / captured)

    return _result(out_data, (a,), _bw)


def sqrt(a) -> Tensor:
    """Elementwise square root."""
    a = _ensure_tensor(a)
    out_data = np.sqrt(a.data)
    captured = out_data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * 0.5 / captured)

    return _result(out_data, (a,), _bw)


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = _ensure_tensor(a)
    out_data = np.tanh(a.data)
    captured = out_data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * (1.0 - captured * captured))

    return _result(out_data, (a,), _bw)


def sigmoid(a) -> Tensor:
    """Elementwise logistic sigmoid."""
    a = _ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    captured = out_data

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g * captured * (1.0 - captured))

    return _result(out_data, (a,), _bw)


# -- classification heads ------------------------------------------------------


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = _ensure_tensor(a)
    z = a.data
    zmax = z.max(axis=axis, keepdims=True)
    shifted = z - zmax
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    probs = np.exp(out_data)  # forward capture

    def _bw(g: np.ndarray) -> None:
        _accumulate(a, g - probs * g.sum(axis=axis, keepdims=True))

    return _result(out_data, (a,), _bw)


def softmax(a, axis: int = -1) -> Tensor:
    """Softmax built on :func:`log_softmax` (numerically stable)."""
    return exp(log_softmax(a, axis=axis))


def cross_entropy(logits, labels, reduction: str = "mean") -> Tensor:
    """Fused softmax cross-entropy against integer class labels.

    Parameters
    ----------
    logits:
        ``(N, K)`` tensor of unnormalized scores.
    labels:
        ``(N,)`` integer array (NumPy, list, or integer Tensor data).
    reduction:
        ``"mean"`` (default) or ``"sum"``.
    """
    logits = _ensure_tensor(logits)
    if isinstance(labels, Tensor):
        labels = labels.data
    labels = np.asarray(labels).astype(np.int64).reshape(-1)
    z = logits.data
    if z.ndim != 2 or labels.shape[0] != z.shape[0]:
        raise ValueError(
            f"cross_entropy expects (N,K) logits and (N,) labels; "
            f"got {z.shape} and {labels.shape}"
        )
    if reduction not in ("mean", "sum"):
        raise ValueError(f"unknown reduction {reduction!r}")
    n = z.shape[0]
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    nll = -log_probs[np.arange(n), labels]
    out_val = nll.mean() if reduction == "mean" else nll.sum()
    probs = np.exp(log_probs)  # forward capture

    def _bw(g: np.ndarray) -> None:
        scale = float(g) / n if reduction == "mean" else float(g)
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        _accumulate(logits, grad * scale)

    return _result(np.asarray(out_val, dtype=z.dtype), (logits,), _bw)
