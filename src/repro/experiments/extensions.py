"""Extension experiments beyond the paper's tables/figures.

The paper's discussion (§5) makes three testable side-claims that its
evaluation does not tabulate; these ablations check them:

* ``ablation_bn_vs_gn`` — "BN seems to significantly decrease the effects
  of delayed gradients compared to GN" (exploratory remark in §5).
* ``ablation_warmup`` — "a learning rate warmup may help stabilize PB
  training".
* ``ablation_gradient_shrinking`` — how the Zhuang et al. baseline
  compares against SC/LWP under identical staleness.
"""

from __future__ import annotations

import numpy as np

from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step
from repro.core.mitigation import MitigationConfig
from repro.data.loader import iterate_batches
from repro.data.synthetic import SyntheticCifar
from repro.experiments.scale import Scale, get_scale
from repro.models.arch import StageDef, StageGraphModel
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Sequential,
    group_norm_for,
)
from repro.optim.lr_schedule import ConstantSchedule, WarmupSchedule
from repro.train.metrics import evaluate
from repro.utils.rng import derive_seed, new_rng


def _norm_cnn(norm: str, num_classes: int, seed: int) -> StageGraphModel:
    """A small conv chain with a configurable normalizer."""
    widths = (8, 16)
    stages: list[StageDef] = []
    ch = 3
    for i, w in enumerate(widths):
        layer = [Conv2d(ch, w, 3, padding=1, bias=False,
                        rng=new_rng(derive_seed(seed, "normcnn", i)))]
        if norm == "bn":
            layer.append(BatchNorm2d(w))
        elif norm == "gn":
            layer.append(group_norm_for(w))
        layer.append(ReLU())
        stages.append(StageDef(f"conv{i}", module=Sequential(*layer)))
        ch = w
    stages.append(StageDef("pool", module=GlobalAvgPool()))
    stages.append(
        StageDef("fc", module=Linear(ch, num_classes,
                                     rng=new_rng(derive_seed(seed, "fc"))))
    )
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name=f"normcnn_{norm}")


def _train_delayed(
    model,
    ds,
    delay: int,
    scale: Scale,
    mitigation: MitigationConfig | None = None,
    warmup_frac: float = 0.0,
    seed: int = 0,
) -> float:
    hp = scale.reference.scaled_to(scale.sim_batch)
    opt = DelayedSGDM(
        model, lr=hp.lr, momentum=hp.momentum,
        weight_decay=hp.weight_decay, delay=delay,
        mitigation=mitigation or MitigationConfig.none(), consistent=True,
    )
    sched = (
        WarmupSchedule(
            ConstantSchedule(hp.lr),
            max(1, int(scale.sim_steps * warmup_frac)),
            warmup_frac=0.1,
        )
        if warmup_frac
        else ConstantSchedule(hp.lr)
    )
    rng = new_rng(derive_seed(seed, "ext", model.name, delay, warmup_frac))
    done = 0
    while done < scale.sim_steps:
        for xb, yb in iterate_batches(
            ds.x_train, ds.y_train, scale.sim_batch, rng=rng
        ):
            opt.lr = sched(done)
            delayed_train_step(opt, model, xb, yb)
            done += 1
            if done >= scale.sim_steps:
                break
    return evaluate(model, ds.x_val, ds.y_val)[1]


def ablation_bn_vs_gn(scale: Scale | None = None) -> dict:
    """Delay tolerance of BatchNorm vs GroupNorm (§5 exploratory claim)."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    delays = [0, 2, 4] if scale.name == "bench" else [0, 1, 2, 4, 8]
    series: dict[str, list[float]] = {}
    for norm in ("bn", "gn"):
        accs = []
        for d in delays:
            model = _norm_cnn(norm, ds.num_classes, seed=3)
            accs.append(_train_delayed(model, ds, d, scale))
        series[norm] = accs
    return {
        "delays": delays,
        "series": series,
        "meta": {
            "paper": "§5: 'BN seems to significantly decrease the effects "
            "of delayed gradients compared to GN' — BN's accuracy should "
            "fall off more slowly with delay."
        },
    }


def ablation_warmup(scale: Scale | None = None) -> dict:
    """LR warmup as a delay stabilizer (§5)."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    from repro.models.simple import small_cnn

    delay = 4
    rows = []
    for warmup_frac in (0.0, 0.3):
        for d in (0, delay):
            model = small_cnn(num_classes=ds.num_classes, widths=(8, 16),
                              seed=3)
            acc = _train_delayed(model, ds, d, scale,
                                 warmup_frac=warmup_frac)
            rows.append(
                {"warmup_frac": warmup_frac, "delay": d, "val_acc": acc}
            )
    return {
        "rows": rows,
        "meta": {
            "paper": "§5: parameters change fastest early in training, so "
            "warmup should help the delayed runs more than the baseline."
        },
    }


def ablation_gradient_shrinking(scale: Scale | None = None) -> dict:
    """Zhuang et al. gradient shrinking vs the paper's methods."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    from repro.models.simple import small_cnn

    delay = 2
    methods = {
        "delayed": MitigationConfig.none(),
        "grad_shrink": MitigationConfig.gradient_shrinking(),
        "SC_D": MitigationConfig.sc(),
        "LWP_D": MitigationConfig.lwp(),
        "LWPv_D+SC_D": MitigationConfig.lwp_plus_sc(),
    }
    rows = []
    for name, mit in methods.items():
        model = small_cnn(num_classes=ds.num_classes, widths=(8, 16), seed=3)
        acc = _train_delayed(model, ds, delay, scale, mitigation=mit)
        rows.append({"method": name, "delay": delay, "val_acc": acc})
    return {
        "rows": rows,
        "meta": {
            "paper": "Gradient shrinking scales stale gradients down "
            "(reducing both signal and harm); SC/LWP re-time them instead "
            "and should dominate it."
        },
    }
