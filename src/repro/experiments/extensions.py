"""Extension experiments beyond the paper's tables/figures.

The paper's discussion (§5) makes three testable side-claims that its
evaluation does not tabulate; these ablations check them:

* ``ablation_bn_vs_gn`` — "BN seems to significantly decrease the effects
  of delayed gradients compared to GN" (exploratory remark in §5).
* ``ablation_warmup`` — "a learning rate warmup may help stabilize PB
  training".
* ``ablation_gradient_shrinking`` — how the Zhuang et al. baseline
  compares against SC/LWP under identical staleness.

``schedule_comparison`` goes beyond the paper's own evaluation: it runs
the same model/stream through all four pipeline schedules (``pb``,
``fill_drain``, ``gpipe``, ``1f1b``) and tabulates the trade the paper
argues about — pipeline steps-to-loss and utilization per schedule.

``runtime_comparison`` validates the concurrent runtimes against the
discrete-time simulator: per schedule it reports wall-clock for the
simulator, the lockstep threaded and process runs (each with a
bit-exactness check) and the free-running threaded and process runs,
plus the free-running runtimes' measured per-stage busy fractions —
modeled utilization vs *measured* worker business, the ROADMAP's "runs
as fast as the hardware allows" checkpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step
from repro.core.mitigation import MitigationConfig
from repro.data.loader import iterate_batches
from repro.data.synthetic import SyntheticCifar
from repro.experiments.scale import Scale, get_scale
from repro.models.arch import StageDef, StageGraphModel
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    ReLU,
    Sequential,
    group_norm_for,
)
from repro.optim.lr_schedule import ConstantSchedule, WarmupSchedule
from repro.train.metrics import evaluate
from repro.utils.rng import derive_seed, new_rng


def _norm_cnn(norm: str, num_classes: int, seed: int) -> StageGraphModel:
    """A small conv chain with a configurable normalizer."""
    widths = (8, 16)
    stages: list[StageDef] = []
    ch = 3
    for i, w in enumerate(widths):
        layer = [Conv2d(ch, w, 3, padding=1, bias=False,
                        rng=new_rng(derive_seed(seed, "normcnn", i)))]
        if norm == "bn":
            layer.append(BatchNorm2d(w))
        elif norm == "gn":
            layer.append(group_norm_for(w))
        layer.append(ReLU())
        stages.append(StageDef(f"conv{i}", module=Sequential(*layer)))
        ch = w
    stages.append(StageDef("pool", module=GlobalAvgPool()))
    stages.append(
        StageDef("fc", module=Linear(ch, num_classes,
                                     rng=new_rng(derive_seed(seed, "fc"))))
    )
    stages.append(StageDef("loss", kind="loss"))
    return StageGraphModel(stages, name=f"normcnn_{norm}")


def _train_delayed(
    model,
    ds,
    delay: int,
    scale: Scale,
    mitigation: MitigationConfig | None = None,
    warmup_frac: float = 0.0,
    seed: int = 0,
) -> float:
    hp = scale.reference.scaled_to(scale.sim_batch)
    opt = DelayedSGDM(
        model, lr=hp.lr, momentum=hp.momentum,
        weight_decay=hp.weight_decay, delay=delay,
        mitigation=mitigation or MitigationConfig.none(), consistent=True,
    )
    sched = (
        WarmupSchedule(
            ConstantSchedule(hp.lr),
            max(1, int(scale.sim_steps * warmup_frac)),
            warmup_frac=0.1,
        )
        if warmup_frac
        else ConstantSchedule(hp.lr)
    )
    rng = new_rng(derive_seed(seed, "ext", model.name, delay, warmup_frac))
    done = 0
    while done < scale.sim_steps:
        for xb, yb in iterate_batches(
            ds.x_train, ds.y_train, scale.sim_batch, rng=rng
        ):
            opt.lr = sched(done)
            delayed_train_step(opt, model, xb, yb)
            done += 1
            if done >= scale.sim_steps:
                break
    return evaluate(model, ds.x_val, ds.y_val)[1]


def ablation_bn_vs_gn(scale: Scale | None = None) -> dict:
    """Delay tolerance of BatchNorm vs GroupNorm (§5 exploratory claim)."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    delays = [0, 2, 4] if scale.name == "bench" else [0, 1, 2, 4, 8]
    series: dict[str, list[float]] = {}
    for norm in ("bn", "gn"):
        accs = []
        for d in delays:
            model = _norm_cnn(norm, ds.num_classes, seed=3)
            accs.append(_train_delayed(model, ds, d, scale))
        series[norm] = accs
    return {
        "delays": delays,
        "series": series,
        "meta": {
            "paper": "§5: 'BN seems to significantly decrease the effects "
            "of delayed gradients compared to GN' — BN's accuracy should "
            "fall off more slowly with delay."
        },
    }


def ablation_warmup(scale: Scale | None = None) -> dict:
    """LR warmup as a delay stabilizer (§5)."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    from repro.models.simple import small_cnn

    delay = 4
    rows = []
    for warmup_frac in (0.0, 0.3):
        for d in (0, delay):
            model = small_cnn(num_classes=ds.num_classes, widths=(8, 16),
                              seed=3)
            acc = _train_delayed(model, ds, d, scale,
                                 warmup_frac=warmup_frac)
            rows.append(
                {"warmup_frac": warmup_frac, "delay": d, "val_acc": acc}
            )
    return {
        "rows": rows,
        "meta": {
            "paper": "§5: parameters change fastest early in training, so "
            "warmup should help the delayed runs more than the baseline."
        },
    }


def ablation_gradient_shrinking(scale: Scale | None = None) -> dict:
    """Zhuang et al. gradient shrinking vs the paper's methods."""
    scale = scale or get_scale()
    ds = SyntheticCifar(seed=0, image_size=8, train_size=scale.train_size,
                        val_size=scale.val_size)
    from repro.models.simple import small_cnn

    delay = 2
    methods = {
        "delayed": MitigationConfig.none(),
        "grad_shrink": MitigationConfig.gradient_shrinking(),
        "SC_D": MitigationConfig.sc(),
        "LWP_D": MitigationConfig.lwp(),
        "LWPv_D+SC_D": MitigationConfig.lwp_plus_sc(),
    }
    rows = []
    for name, mit in methods.items():
        model = small_cnn(num_classes=ds.num_classes, widths=(8, 16), seed=3)
        acc = _train_delayed(model, ds, delay, scale, mitigation=mit)
        rows.append({"method": name, "delay": delay, "val_acc": acc})
    return {
        "rows": rows,
        "meta": {
            "paper": "Gradient shrinking scales stale gradients down "
            "(reducing both signal and harm); SC/LWP re-time them instead "
            "and should dominate it."
        },
    }


def schedule_comparison(
    scale: Scale | None = None,
    schedule: str | None = None,
    runtime: str = "sim",
) -> dict:
    """All four pipeline schedules on one model/stream, side by side.

    Reports per schedule: total pipeline steps, utilization (sample
    transformations over worker-step capacity), pipeline steps until the
    smoothed training loss first undercuts a shared target, and final
    validation accuracy.  ``schedule`` restricts the comparison to a
    single schedule (the CLI ``--schedule`` flag); ``runtime`` picks the
    engine (``sim``, ``threaded`` or ``process``, the CLI ``--runtime``
    flag — the concurrent engines run free-running here, so pb/1f1b
    numbers vary with worker timing; use ``runtime_comparison`` for the
    parity story).
    """
    from repro.data.loader import sample_stream
    from repro.models.simple import small_cnn
    from repro.pipeline.runtime import make_pipeline_engine
    from repro.pipeline.schedule import SCHEDULE_NAMES, make_schedule

    scale = scale or get_scale()
    if schedule is not None and schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
        )
    names = [schedule] if schedule else list(SCHEDULE_NAMES)
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 256),
        val_size=scale.val_size,
    )
    n = min(scale.pb_samples, 512)
    update_size = min(scale.sim_batch, 8)
    micro = max(1, update_size // 2)
    window = max(8, n // 16)

    rows = []
    smoothed_first = None
    for name in names:
        sched = make_schedule(
            name, update_size=update_size, micro_batch_size=micro
        )
        hp = scale.reference.scaled_to(sched.update_size)
        from functools import partial

        model_factory = partial(
            small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
        )
        model = model_factory()
        engine_kwargs = (
            {"model_factory": model_factory} if runtime == "process" else {}
        )
        ex = make_pipeline_engine(
            runtime, model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, schedule=sched, **engine_kwargs,
        )
        # same seed for every schedule: the stream really is shared
        rng = new_rng(derive_seed(17, "schedcmp"))
        epochs = max(1, -(-n // ds.x_train.shape[0]))
        xs, ys = sample_stream(ds.x_train, ds.y_train, epochs, rng)
        stats = ex.train(xs[:n], ys[:n])

        kernel = np.ones(window) / window
        smoothed = np.convolve(stats.losses, kernel, mode="valid")
        if smoothed_first is None:
            # shared target: 85% of the initial smoothed loss of the
            # first schedule run, so every schedule chases the same bar
            smoothed_first = 0.85 * float(smoothed[0])
        below = np.nonzero(smoothed < smoothed_first)[0]
        k = int(below[0]) + window if below.size else None
        _, val_acc = evaluate(model, ds.x_val, ds.y_val)
        rows.append(
            {
                "schedule": name,
                "update_size": sched.update_size,
                "micro_batch": sched.micro_batch,
                "time_steps": stats.time_steps,
                "utilization": stats.utilization,
                "steps_to_loss": (
                    sched.drain_span(k, ex.num_stages)
                    if k is not None
                    else None
                ),
                "final_loss": float(stats.losses[-window:].mean()),
                "val_acc": val_acc,
            }
        )
    return {
        "rows": rows,
        "target_loss": smoothed_first,
        "samples": n,
        "runtime": runtime,
        "meta": {
            "paper": "§2 + Figure 2, extended: PB and 1F1B sustain near-"
            "full utilization (fewer pipeline steps to a target loss), "
            "fill/drain pays N/(N+2S-2) per batch, and GPipe recovers "
            "M/(M+2S-2) via micro-batching."
        },
    }


def runtime_comparison(
    scale: Scale | None = None, schedule: str | None = None
) -> dict:
    """Simulator vs threaded vs process runtime per schedule.

    For each schedule the same model/stream is trained five ways:

    * ``sim`` — the discrete-time :class:`PipelineExecutor` (modeled
      time, no concurrency);
    * ``threaded lockstep`` — one worker thread per stage with a
      per-step barrier; ``parity`` records whether its per-sample losses
      are **bit-identical** to the simulator's (they must be);
    * ``threaded free`` — no barrier; stages run as packets arrive, and
      the measured mean per-stage busy fraction plus the free/lockstep
      wall-clock speedup are reported;
    * ``process lockstep`` — one worker *process* per stage, packets
      through shared-memory rings; ``proc_parity`` is the same bit-exact
      contract across process boundaries;
    * ``process free`` — the performance backend: no barrier, no GIL;
      ``proc_free_vs_thread_free`` is the headline process-vs-thread
      wall-clock ratio (>1 needs real cores; the stored payload records
      the host's ``cpu_count`` next to it in ``BENCH_runtime.json``).

    ``schedule`` restricts the table to one schedule (CLI
    ``--schedule``).
    """
    from repro.data.loader import sample_stream
    from repro.models.simple import small_cnn
    from repro.pipeline.executor import PipelineExecutor
    from repro.pipeline.runtime import (
        ConcurrentPipelineRunner,
        ProcessPipelineRunner,
    )
    from repro.pipeline.schedule import SCHEDULE_NAMES, make_schedule

    import time as _time

    scale = scale or get_scale()
    if schedule is not None and schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
        )
    names = [schedule] if schedule else list(SCHEDULE_NAMES)
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 256),
        val_size=scale.val_size,
    )
    n = min(scale.pb_samples, 256)
    update_size = min(scale.sim_batch, 8)
    micro = max(1, update_size // 2)

    rng = new_rng(derive_seed(17, "runtimecmp"))
    epochs = max(1, -(-n // ds.x_train.shape[0]))
    xs, ys = sample_stream(ds.x_train, ds.y_train, epochs, rng)
    xs, ys = xs[:n], ys[:n]

    from functools import partial

    model_factory = partial(
        small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
    )

    rows = []
    for name in names:
        def build():
            sched = make_schedule(
                name, update_size=update_size, micro_batch_size=micro
            )
            hp = scale.reference.scaled_to(sched.update_size)
            return model_factory(), sched, hp

        def timed(engine_cls, lockstep):
            model, sched, hp = build()
            kwargs = {}
            if engine_cls is ProcessPipelineRunner:
                # spawn-safe on non-Linux hosts, where fork is unsafe
                kwargs["model_factory"] = model_factory
            runner = engine_cls(
                model, lr=hp.lr, momentum=hp.momentum,
                weight_decay=hp.weight_decay, schedule=sched,
                lockstep=lockstep, **kwargs,
            )
            t0 = _time.perf_counter()
            stats = runner.train(xs, ys)
            return _time.perf_counter() - t0, stats, runner

        model, sched, hp = build()
        t0 = _time.perf_counter()
        sim_stats = PipelineExecutor(
            model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, schedule=sched,
        ).train(xs, ys)
        sim_s = _time.perf_counter() - t0

        lock_s, lock_stats, _ = timed(ConcurrentPipelineRunner, True)
        free_s, _, free_runner = timed(ConcurrentPipelineRunner, False)
        free_rt = free_runner.last_runtime_stats
        plock_s, plock_stats, _ = timed(ProcessPipelineRunner, True)
        pfree_s, _, pfree_runner = timed(ProcessPipelineRunner, False)
        pfree_rt = pfree_runner.last_runtime_stats

        rows.append(
            {
                "schedule": name,
                "parity": bool(
                    np.array_equal(sim_stats.losses, lock_stats.losses)
                ),
                "proc_parity": bool(
                    np.array_equal(sim_stats.losses, plock_stats.losses)
                ),
                "sim_s": round(sim_s, 4),
                "lockstep_s": round(lock_s, 4),
                "free_s": round(free_s, 4),
                "proc_lockstep_s": round(plock_s, 4),
                "proc_free_s": round(pfree_s, 4),
                "free_vs_lockstep": round(lock_s / max(free_s, 1e-12), 2),
                "proc_free_vs_thread_free": round(
                    free_s / max(pfree_s, 1e-12), 2
                ),
                "mean_busy_frac": round(free_rt.mean_busy_fraction, 4),
                "proc_mean_busy_frac": round(
                    pfree_rt.mean_busy_fraction, 4
                ),
                "modeled_utilization": round(sim_stats.utilization, 4),
            }
        )
    return {
        "rows": rows,
        "samples": n,
        "meta": {
            "paper": "§2: fine-grained pipelining keeps all stages busy "
            "in wall-clock time.  Lockstep parity must be True for both "
            "concurrent backends (bit-exact contract); free-running "
            "trades reproducibility for measured concurrency, and the "
            "process backend additionally escapes the GIL."
        },
    }


def durable_training(
    scale: Scale | None = None,
    schedule: str | None = None,
    runtime: str = "process",
    checkpoint: str | None = None,
    checkpoint_every: int | None = None,
    resume: str | None = None,
) -> dict:
    """Checkpoint/resume parity demonstration for the pipeline engines.

    For each schedule, the same tiny model/stream is trained twice:

    * **golden** — straight through, with the checkpoint cadence's drain
      barriers but no files;
    * **interrupted** — a second identical run is stopped after its
      first snapshot lands on disk ("the job died"), then a *freshly
      built* engine + stream resume from that file and finish.

    ``resume_parity`` is True when the resumed run lands on the same
    SHA-256 weight fingerprint as the golden — the bit-exact durability
    contract of :mod:`repro.pipeline.checkpoint` (the CI resume-parity
    smoke job asserts it).  ``runtime`` picks the engine (default
    ``process``, lockstep for reproducibility); ``checkpoint`` redirects
    the snapshot files (default: a temp directory); ``--resume <path>``
    instead *continues* a previous run from an existing checkpoint file
    and reports its final fingerprint.
    """
    import os
    import tempfile
    from functools import partial

    from repro.data.loader import ResumableSampleStream
    from repro.models.simple import small_cnn
    from repro.pipeline.checkpoint import DurableRun, model_fingerprint
    from repro.pipeline.runtime import make_pipeline_engine
    from repro.pipeline.schedule import SCHEDULE_NAMES, make_schedule

    scale = scale or get_scale()
    if schedule is not None and schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
        )
    names = [schedule] if schedule else list(SCHEDULE_NAMES)
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 128),
        val_size=min(scale.val_size, 64),
    )
    n_total = min(scale.pb_samples, 96)
    update_size = min(scale.sim_batch, 8)
    micro = max(1, update_size // 2)
    if checkpoint_every is not None and int(checkpoint_every) < 1:
        raise ValueError(
            "durable_training needs checkpoint_every >= 1 (0 would "
            "disable periodic snapshots, leaving nothing to resume from)"
        )
    every = (
        int(checkpoint_every)
        if checkpoint_every is not None
        else max(update_size, n_total // 3)
    )
    model_factory = partial(
        small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
    )

    def build(name):
        sched = make_schedule(
            name, update_size=update_size, micro_batch_size=micro
        )
        hp = scale.reference.scaled_to(sched.update_size)
        model = model_factory()
        engine_kwargs = (
            {"model_factory": model_factory, "max_restarts": 2}
            if runtime == "process"
            else {}
        )
        engine = make_pipeline_engine(
            runtime, model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, schedule=sched, lockstep=True,
            **engine_kwargs,
        )
        rng = new_rng(derive_seed(17, "durable"))
        epochs = max(1, -(-n_total // ds.x_train.shape[0]))
        stream = ResumableSampleStream(ds.x_train, ds.y_train, epochs, rng)
        return model, engine, stream

    if resume is not None:
        # continue a previous run from an existing checkpoint file
        name = names[0]
        model, engine, stream = build(name)
        run = DurableRun.resume(resume, engine, stream)
        result = run.run(max_samples=n_total - engine.samples_completed)
        return {
            "rows": [
                {
                    "schedule": name,
                    "resumed_from": resume,
                    "samples_after_resume": result.samples,
                    "samples_completed": engine.samples_completed,
                    "final_weight_hash": model_fingerprint(model)[:16],
                }
            ],
            "meta": {"paper": "resumed run continued from " + resume},
        }

    rows = []
    tmpdir = None
    try:
        if checkpoint is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            ckpt_dir = tmpdir.name
        else:
            ckpt_dir = checkpoint
            os.makedirs(ckpt_dir, exist_ok=True)
        for name in names:
            # golden: uninterrupted, cadence-matched drain barriers
            g_model, g_engine, g_stream = build(name)
            DurableRun(
                g_engine, g_stream, checkpoint_every=every
            ).run(max_samples=n_total)
            golden_hash = model_fingerprint(g_model)

            # interrupted: die right after the first snapshot.  The
            # first segment is the *rounded* cadence (DurableRun aligns
            # it to a drain barrier), capped at the golden's run length
            # — a raw --checkpoint-every here would flush a partial
            # batch or overshoot and break parity by construction.
            path = os.path.join(ckpt_dir, f"{name}.ckpt")
            i_model, i_engine, i_stream = build(name)
            i_run = DurableRun(
                i_engine, i_stream, checkpoint_path=path,
                checkpoint_every=every,
            )
            i_run.run(
                max_samples=min(i_run.checkpoint_every, n_total)
            )

            # ...and resume a fresh engine + stream from the file
            r_model, r_engine, r_stream = build(name)
            run = DurableRun.resume(path, r_engine, r_stream)
            run.run(max_samples=n_total - r_engine.samples_completed)
            resumed_hash = model_fingerprint(r_model)
            rows.append(
                {
                    "schedule": name,
                    "samples": n_total,
                    # the effective cadence (aligned to a drain barrier)
                    "checkpoint_every": i_run.checkpoint_every,
                    "resume_parity": resumed_hash == golden_hash,
                    "golden_hash": golden_hash[:16],
                    "resumed_hash": resumed_hash[:16],
                }
            )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    return {
        "rows": rows,
        "runtime": runtime,
        "meta": {
            "paper": "Durability extension: a killed-and-resumed run "
            "must be indistinguishable from an uninterrupted one — "
            "hex-identical weights via drain-barrier snapshots of every "
            "stage's weights/velocity/counters plus the data-stream "
            "cursor (epoch, index, rng state)."
        },
    }


def serving(
    scale: Scale | None = None,
    serve_backend: str = "sim",
    serve_requests: int | None = None,
    serve_max_batch: int = 8,
    serve_deadline_ms: float = 2.0,
    serve_concurrency: int = 8,
) -> dict:
    """Online serving extension: pipelined inference vs sequential forward.

    Trains a tiny multi-stage model a little (so the weights are not
    noise), freezes it into an
    :class:`~repro.serve.session.InferenceSession` on ``serve_backend``
    (``sim`` / ``threaded`` / ``process``), then drives the same
    closed-loop request stream through

    * the **sequential baseline** — one request at a time through
      ``model.forward`` behind a lock (what serving without a pipeline
      looks like), and
    * the **pipelined server** — dynamic micro-batching
      (``serve_max_batch`` cap, ``serve_deadline_ms`` coalescing
      deadline) feeding a persistent forward-only pipeline stream,

    and reports throughput, latency percentiles (p50/p95/p99), mean
    batch width, and the response-correctness check: every pipelined
    response must be bit-exact with the offline batched forward over
    the same packet decomposition's widths — and argmax-identical to
    the full-batch forward regardless of batching.

    CLI: ``python -m repro.experiments serving --serve-backend process
    --serve-requests 400 --serve-max-batch 8 --serve-deadline-ms 2``.
    """
    from functools import partial

    from repro.models.simple import small_cnn
    from repro.pipeline.runtime import make_pipeline_engine
    from repro.serve import (
        InferenceSession,
    )
    from repro.serve.loadgen import (
        count_bad_outputs,
        pipelined_closed_loop,
        sequential_closed_loop,
    )
    from repro.serve.session import SERVE_BACKENDS

    scale = scale or get_scale()
    if serve_backend not in SERVE_BACKENDS:
        raise ValueError(
            f"unknown serving backend {serve_backend!r}; choose from "
            f"{SERVE_BACKENDS}"
        )
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 128),
        val_size=min(scale.val_size, 64),
    )
    num_requests = (
        int(serve_requests)
        if serve_requests is not None
        else min(max(scale.pb_samples, 100), 400)
    )
    model_factory = partial(
        small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
    )
    model = model_factory()
    # a short PB training run: serving should exercise trained weights
    hp = scale.reference.scaled_to(1)
    engine = make_pipeline_engine(
        "sim", model, lr=hp.lr, momentum=hp.momentum,
        weight_decay=hp.weight_decay, mode="pb",
    )
    n_warm = min(ds.x_train.shape[0], 96)
    engine.train(ds.x_train[:n_warm], ds.y_train[:n_warm])

    x_pool = ds.x_val
    session = InferenceSession.from_engine(
        engine,
        runtime=serve_backend,
        micro_batch=int(serve_max_batch),
        sample_shape=x_pool.shape[1:],
        model_factory=model_factory,
    )

    seq_res = sequential_closed_loop(
        model, x_pool, num_requests, concurrency=int(serve_concurrency)
    )
    pipe_res, snapshot = pipelined_closed_loop(
        session, x_pool, num_requests,
        concurrency=int(serve_concurrency),
        max_batch=int(serve_max_batch),
        max_wait=float(serve_deadline_ms) / 1e3,
    )

    # response correctness against the full-batch forward (see
    # count_bad_outputs for why loadgen-level checks are tolerance-
    # based while the bit-level contract lives in the tests)
    ref_full = session.forward_reference(x_pool, micro_batch=x_pool.shape[0])
    mismatches = count_bad_outputs(
        pipe_res.outputs, ref_full, x_pool.shape[0]
    )
    rows = [seq_res.as_row(), pipe_res.as_row()]
    speedup = (
        pipe_res.throughput_rps / seq_res.throughput_rps
        if seq_res.throughput_rps > 0
        else float("nan")
    )
    return {
        "rows": rows,
        "speedup": speedup,
        "p99_ratio": (
            pipe_res.latency_p99 / seq_res.latency_p99
            if seq_res.latency_p99 > 0
            else float("nan")
        ),
        "prediction_mismatches": mismatches,
        "mean_batch_size": snapshot["mean_batch_size"],
        "queue_wait_p95_ms": (
            snapshot["queue_wait_s"]["p95"] * 1e3
            if snapshot["queue_wait_s"]["p95"] is not None
            else None
        ),
        "backend": serve_backend,
        "requests": num_requests,
        "meta": {
            "paper": "Serving extension: the paper's fill/drain "
            "argument at inference time — a forward-only pipeline with "
            "dynamic micro-batching sustains higher throughput at "
            "bounded tail latency than sequential single-request "
            "execution, without large batches."
        },
    }


def serving_fleet(
    scale: Scale | None = None,
    fleet_replicas: int = 3,
    fleet_backend: str = "sim",
    fleet_requests: int | None = None,
    fleet_interactive_pct: float = 70.0,
) -> dict:
    """Fleet serving extension: N replicas, SLO classes, live reload.

    Trains the stock serving model twice (two PR-4 checkpoints with
    different weights), boots a :class:`~repro.serve.fleet.FleetRouter`
    of ``fleet_replicas`` replicas on the first checkpoint, then drives
    a mixed interactive/batch closed loop (``fleet_interactive_pct`` %
    interactive) **through a rolling hot-swap onto the second
    checkpoint** — the serving-availability analogue of the paper's
    no-flush training claim: weights change under continuous load
    without refusing service.

    Reports per-class latency rows, the reload report (replicas
    swapped, minimum ready count observed while draining), and the
    fleet's id-accounting proof (submitted == resolved, zero
    duplicates).

    CLI: ``python -m repro.experiments serving_fleet --fleet-replicas 3
    --fleet-backend process --fleet-requests 300
    --fleet-interactive-pct 70``.
    """
    import os
    import tempfile
    import threading
    import time
    from functools import partial

    from repro.models.simple import small_cnn
    from repro.pipeline.checkpoint import (
        capture_checkpoint,
        checkpoint_fingerprint,
        save_checkpoint,
    )
    from repro.pipeline.runtime import make_pipeline_engine
    from repro.serve.fleet import FleetRouter, ReplicaSpec, rolling_reload
    from repro.serve.loadgen import run_classed_loop
    from repro.serve.session import SERVE_BACKENDS

    scale = scale or get_scale()
    if fleet_backend not in SERVE_BACKENDS:
        raise ValueError(
            f"unknown serving backend {fleet_backend!r}; choose from "
            f"{SERVE_BACKENDS}"
        )
    if fleet_replicas < 1:
        raise ValueError(
            f"fleet_replicas must be >= 1, got {fleet_replicas}"
        )
    if not 0.0 <= fleet_interactive_pct <= 100.0:
        raise ValueError(
            "fleet_interactive_pct must be in [0, 100], got "
            f"{fleet_interactive_pct}"
        )
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 128),
        val_size=min(scale.val_size, 64),
    )
    num_requests = (
        int(fleet_requests)
        if fleet_requests is not None
        else min(max(scale.pb_samples, 120), 360)
    )
    model_factory = partial(
        small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
    )
    hp = scale.reference.scaled_to(1)

    def _checkpoint(path: str, n_samples: int) -> str:
        model = model_factory()
        engine = make_pipeline_engine(
            "sim", model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, mode="pb",
        )
        n = min(ds.x_train.shape[0], n_samples)
        engine.train(ds.x_train[:n], ds.y_train[:n])
        save_checkpoint(path, capture_checkpoint(engine))
        return path

    x_pool = ds.x_val
    mix = {
        "interactive": fleet_interactive_pct / 100.0,
        "batch": 1.0 - fleet_interactive_pct / 100.0,
    }
    mix = {k: v for k, v in mix.items() if v > 0}
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        ck_a = _checkpoint(os.path.join(tmp, "a.ckpt"), 48)
        ck_b = _checkpoint(os.path.join(tmp, "b.ckpt"), 96)
        spec = ReplicaSpec(
            model_factory=model_factory,
            sample_shape=tuple(x_pool.shape[1:]),
            runtime=fleet_backend,
            micro_batch=8,
            max_queue=8,
        )
        with FleetRouter(
            spec, fleet_replicas, checkpoint=ck_a
        ) as router:
            report_box: list = []

            def mid_run_reload() -> None:
                time.sleep(0.25)
                report_box.append(rolling_reload(router, ck_b))

            swapper = threading.Thread(target=mid_run_reload)
            swapper.start()
            result = run_classed_loop(
                lambda x, slo: router.submit(x, slo).future.result(60.0),
                x_pool,
                num_requests,
                concurrency=min(8, 2 * fleet_replicas),
                mix=mix,
                label=f"fleet[{fleet_backend} x{fleet_replicas}]",
            )
            swapper.join()
            snap = router.snapshot()
        report = report_box[0]
        fp_new = checkpoint_fingerprint(ck_b)

    return {
        "rows": result.as_rows(),
        "replicas": fleet_replicas,
        "backend": fleet_backend,
        "requests": num_requests,
        "mix": mix,
        "reload": report.as_dict(),
        "accounting": {
            "submitted": snap["submitted"],
            "resolved": snap["resolved"],
            "duplicates": snap["duplicates"],
            "failed": snap["failed"],
            "completed_by_class": snap["completed_by_class"],
            "rejected_by_class": snap["rejected_by_class"],
        },
        "zero_downtime": report.min_ready_observed >= 1,
        "all_on_new_weights": report.fingerprint == fp_new,
        "meta": {
            "paper": "Fleet serving extension: the paper's no-flush "
            "argument applied to serving availability — a replicated "
            "forward-only pipeline fleet keeps admitting mixed-SLO "
            "traffic while weights hot-swap replica by replica, with "
            "zero dropped or duplicated requests."
        },
    }


def hybrid_parallelism(
    scale: Scale | None = None,
    schedule: str | None = None,
    replicas: int = 2,
) -> dict:
    """Data-parallel pipeline replicas vs one pipeline at ``R*U``.

    For each synchronous schedule (``fill_drain``, ``gpipe``) the same
    model/stream is trained two ways:

    * ``sim`` — one discrete-time :class:`PipelineExecutor` at the
      *global* update size ``R * U``;
    * ``replicated`` — a :class:`ReplicatedPipelineRunner` with ``R``
      process-runtime pipeline copies at per-replica update size ``U``,
      gradients chain-reduced across replicas at every barrier.

    ``parity`` records whether the replicated run's per-sample losses
    *and* final weights are **bit-identical** to the simulator's — the
    hybrid-parallelism contract (data-parallel replication of a
    synchronous pipeline is mathematically invisible).

    The asynchronous schedules (``pb``, ``1f1b``) have no global batch
    to compare against; replicas train independently on disjoint shards
    and average weight deltas at the end.  For those, ``staleness_ok``
    records whether every replica's observed forward-version trace
    respects the paper's eq.-5 delay ceiling ``D_s = 2(S-1-s)``.

    ``schedule`` restricts the table to one schedule and ``replicas``
    sets ``R`` (CLI ``--schedule`` / ``--replicas``).
    """
    import time as _time
    from functools import partial

    from repro.models.simple import small_cnn
    from repro.pipeline.executor import PipelineExecutor
    from repro.pipeline.runtime import ReplicatedPipelineRunner
    from repro.pipeline.schedule import SCHEDULE_NAMES, make_schedule

    scale = scale or get_scale()
    replicas = int(replicas)
    if replicas < 2:
        raise ValueError(
            f"hybrid_parallelism needs replicas >= 2, got {replicas}"
        )
    if schedule is not None and schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
        )
    names = [schedule] if schedule else list(SCHEDULE_NAMES)
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 128),
        val_size=min(scale.val_size, 64),
    )
    n = min(scale.pb_samples, 64)
    update_size = min(scale.sim_batch, 4)
    micro = max(1, update_size // 2)

    rng = new_rng(derive_seed(23, "hybrid"))
    from repro.data.loader import sample_stream

    epochs = max(1, -(-n // ds.x_train.shape[0]))
    xs, ys = sample_stream(ds.x_train, ds.y_train, epochs, rng)
    xs, ys = xs[:n], ys[:n]

    model_factory = partial(
        small_cnn, num_classes=ds.num_classes, widths=(8, 16), seed=11
    )

    rows = []
    for name in names:
        rep_sched = make_schedule(
            name, update_size=update_size, micro_batch_size=micro
        )
        synchronous = not rep_sched.update_after_backward(0)
        per_replica = rep_sched.update_size
        global_update = per_replica * replicas if synchronous else per_replica
        hp = scale.reference.scaled_to(global_update)

        rep_model = model_factory()
        runner = ReplicatedPipelineRunner(
            rep_model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, mode=name,
            update_size=update_size, micro_batch_size=micro,
            replicas=replicas, model_factory=model_factory,
            record_versions=not synchronous,
        )
        t0 = _time.perf_counter()
        rep_stats = runner.train(xs, ys)
        rep_s = _time.perf_counter() - t0

        row = {
            "schedule": name,
            "replicas": replicas,
            "update_size": per_replica,
            "global_update": global_update,
            "replicated_s": round(rep_s, 4),
            "mean_busy_frac": round(
                rep_stats.runtime.mean_busy_fraction, 4
            ),
        }
        if synchronous:
            sim_model = model_factory()
            sim_sched = make_schedule(
                name, update_size=global_update,
                micro_batch_size=micro if name == "gpipe" else 1,
            )
            t0 = _time.perf_counter()
            sim_stats = PipelineExecutor(
                sim_model, lr=hp.lr, momentum=hp.momentum,
                weight_decay=hp.weight_decay, schedule=sim_sched,
            ).train(xs, ys)
            sim_s = _time.perf_counter() - t0
            weights_equal = all(
                np.array_equal(a.data, b.data)
                for a, b in zip(sim_model.parameters(),
                                rep_model.parameters())
            )
            row["parity"] = bool(
                np.array_equal(sim_stats.losses, rep_stats.losses)
                and weights_equal
            )
            row["sim_s"] = round(sim_s, 4)
            row["staleness_ok"] = None
        else:
            num_stages = runner.num_stages
            ok = True
            for rep in runner.replica_runners:
                for s, st in enumerate(rep.stages):
                    for (i, v_fwd, _v_bwd) in st.version_trace:
                        floor = max(0, i - 2 * (num_stages - 1 - s))
                        ok = ok and v_fwd >= floor
            row["parity"] = None
            row["sim_s"] = None
            row["staleness_ok"] = bool(ok)
        rows.append(row)
    return {
        "rows": rows,
        "samples": n,
        "meta": {
            "paper": "Hybrid parallelism extension: §1-2 contrast "
            "pipeline with data parallelism; here both compose — R "
            "data-parallel copies of the fine-grained pipeline with "
            "gradients reduced at update barriers.  For synchronous "
            "schedules parity must be True (R replicas at update size "
            "U are bit-identical to one pipeline at R*U, the eq.-9 "
            "scaling anchor); for pb/1f1b each replica must still obey "
            "the eq.-5 staleness ceiling."
        },
    }
