"""Figure reproductions (see DESIGN.md §4 for the experiment index)."""

from __future__ import annotations

import numpy as np

from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step
from repro.core.mitigation import MitigationConfig
from repro.data.loader import iterate_batches
from repro.data.synthetic import SyntheticCifar
from repro.experiments.common import (
    NETS,
    dataset_for,
    run_pb_executor,
    run_sgdm_baseline,
)
from repro.experiments.scale import Scale, get_scale
from repro.models.simple import small_cnn
from repro.optim.scaling import lr_for_momentum
from repro.optim.sgd import SGDM
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.occupancy import (
    fill_drain_occupancy,
    pb_occupancy,
    render_occupancy,
    schedule_utilization,
)
from repro.pipeline.utilization import (
    fill_drain_utilization,
    pb_utilization,
    utilization_upper_bound,
)
from repro.quadratic.halflife import (
    condition_number_sweep,
    delay_sweep,
    horizon_sweep,
    momentum_curve,
)
from repro.quadratic.polynomials import (
    GDM,
    GDM_NO_DELAY,
    NESTEROV_NO_DELAY,
    combined_method,
    lwp_method,
    sc_method,
)
from repro.quadratic.roots import (
    default_eta_lambda_grid,
    default_momentum_grid,
    rate_grid,
    stability_mask,
)
from repro.tensor.tensor import Tensor, cross_entropy
from repro.train.metrics import evaluate
from repro.utils.rng import derive_seed, new_rng


# -- Figure 2 / eq. 1: pipeline utilization -----------------------------------


def fig02_utilization(scale: Scale | None = None) -> dict:
    """Utilization of fill-drain SGD (small/large batch) vs PB."""
    scale = scale or get_scale()
    rows = []
    for net, stages in [("vgg11", 29), ("rn20", 34), ("rn50", 78), ("rn110", 169)]:
        for batch in (1, 32, 128):
            rows.append(
                {
                    "net": net,
                    "stages": stages,
                    "batch": batch,
                    "fill_drain_util": fill_drain_utilization(stages, batch),
                    "eq1_upper_bound": utilization_upper_bound(stages, batch),
                    "pb_util_50k": pb_utilization(stages, 50_000),
                }
            )
    # cross-check the closed forms against the occupancy-grid model
    S = 8
    grid_fd = schedule_utilization(fill_drain_occupancy(S, 4, num_batches=3))
    grid_pb = schedule_utilization(pb_occupancy(S, 200))
    ascii_demo = render_occupancy(fill_drain_occupancy(4, 3, num_batches=2))
    return {
        "rows": rows,
        "grid_check": {
            "fill_drain_grid": grid_fd,
            "fill_drain_formula": fill_drain_utilization(S, 4),
            "pb_grid": grid_pb,
            "pb_formula": pb_utilization(S, 200),
        },
        "ascii_fill_drain": ascii_demo,
        "meta": {
            "paper": "Figure 2 + eq. 1: fill/drain wastes N/(N+2S); PB "
            "approaches full utilization after the initial fill."
        },
    }


# -- Figure 4: dominant-root heatmaps ------------------------------------------


def fig04_root_heatmaps(scale: Scale | None = None) -> dict:
    """|r_max|(eta*lambda, momentum) for the six panels of Figure 4."""
    scale = scale or get_scale()
    ppd = scale.points_per_decade
    els = default_eta_lambda_grid(ppd)
    ms = default_momentum_grid(ppd)
    panels = {
        "GDM D=0": (GDM_NO_DELAY, 1),
        "GDM D=1": (GDM, 1),
        "SC_D D=1": (sc_method(), 1),
        "Nesterov D=0": (NESTEROV_NO_DELAY, 1),
        "LWP_D D=1": (lwp_method(), 1),
        "LWPw_D+SC_D D=1": (combined_method(), 1),
    }
    out_panels = {}
    stable_areas = {}
    for name, (method, delay) in panels.items():
        grid = rate_grid(method, delay, els, ms)
        out_panels[name] = grid
        stable_areas[name] = int(stability_mask(grid).sum())
    return {
        "eta_lambda": els,
        "momentum": ms,
        "panels": {k: v for k, v in out_panels.items()},
        "stable_areas": stable_areas,
        "meta": {
            "paper": "Figure 4: delay shrinks the stable region, especially "
            "at high momentum; SC_D strictly enlarges it again; the "
            "combination resembles no-delay Nesterov."
        },
    }


# -- Figures 5-7, 12: half-life sweeps ----------------------------------------


def fig05_condition_sweep(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    n_pts = 7 if scale.name == "bench" else 13
    kappas = np.logspace(0, 6, n_pts)
    methods = {
        "GDM D=1": GDM,
        "SC_D D=1": sc_method(),
        "LWP_D D=1": lwp_method(),
        "LWPw_D+SC_D D=1": combined_method(),
        "GDM D=0": GDM_NO_DELAY,
    }
    series = condition_number_sweep(
        methods, kappas, delay=1, points_per_decade=scale.points_per_decade
    )
    return {
        "kappa": kappas,
        "series": series,
        "meta": {
            "paper": "Figure 5: all methods improve convergence vs delayed "
            "GDM; LWPw_D+SC_D performs best."
        },
    }


def fig06_delay_sweep(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    delays = (
        np.array([0, 2, 4, 8, 12, 16])
        if scale.name == "bench"
        else np.arange(0, 17)
    )
    methods = {
        "GDM": GDM,
        "LWP_D": lwp_method(),
        "LWPw_D+SC_D": combined_method(),
    }
    series = delay_sweep(
        methods,
        delays,
        kappa=1e3,
        points_per_decade=scale.points_per_decade,
    )
    return {
        "delay": delays,
        "series": series,
        "meta": {
            "paper": "Figure 6: half-life grows with delay for GDM; the "
            "combined mitigation stays lowest at every delay (kappa=1e3)."
        },
    }


def fig07_horizon_momentum(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    n_m = 10 if scale.name == "bench" else 24
    u = np.linspace(0.2, 5.0, n_m)
    momenta = np.concatenate([[0.0], 1.0 - 10.0 ** (-u)])
    curves = {}
    for T in (0.0, 3.0, 5.0, 10.0, 20.0):
        curves[f"LWP T={T:g}"] = momentum_curve(
            lwp_method(horizon=T), delay=5, kappa=1e3, momenta=momenta,
            points_per_decade=scale.points_per_decade,
        )
    curves["LWPw_D+SC_D"] = momentum_curve(
        combined_method(), delay=5, kappa=1e3, momenta=momenta,
        points_per_decade=scale.points_per_decade,
    )
    return {
        "momentum": momenta,
        "series": curves,
        "meta": {
            "paper": "Figure 7: without mitigation (T=0) the optimal "
            "momentum is ~0; T around 2D is best among pure LWP but does "
            "not beat the combination (kappa=1e3, D=5)."
        },
    }


def fig12_prediction_scale_quadratic(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    scales = (
        np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0])
        if scale.name == "bench"
        else np.linspace(0.0, 10.0, 41)
    )
    series = {}
    for kappa, delay in [(1e3, 4), (1e3, 10), (1e5, 4)]:
        vals = horizon_sweep(
            lambda alpha: lwp_method(scale=alpha),
            scales,
            delay=delay,
            kappa=kappa,
            points_per_decade=scale.points_per_decade,
        )
        series[f"kappa={kappa:g}, D={delay}"] = np.log10(vals)
    return {
        "prediction_scale": scales,
        "series_log10_halflife": series,
        "meta": {
            "paper": "Figure 12: horizons around T=2D minimize the "
            "half-life for all (kappa, D) combinations shown."
        },
    }


# -- Figures 8-9: PB training curves -------------------------------------------


def _pb_method_suite() -> dict[str, MitigationConfig]:
    return {
        "PB": MitigationConfig.none(),
        "PB+LWP_D": MitigationConfig.lwp(),
        "PB+SC_D": MitigationConfig.sc(),
        "PB+LWPv_D+SC_D": MitigationConfig.lwp_plus_sc(),
    }


def _pb_training_figure(
    net_key: str,
    scale: Scale,
    seed: int = 0,
    engine: str = "executor",
    budget: float = 1.0,
) -> dict:
    """Train one network with SGDM + the four PB methods.

    ``engine`` selects true pipelined execution (``"executor"``) or the
    paper's own flat Appendix-G.2 emulation (``"sim"``), used at bench
    scale for the heaviest networks.  ``budget`` multiplies the sample/step
    allowance (deep nets need more steps to leave the chance plateau).
    """
    from repro.experiments.common import run_pb_simulated

    spec = NETS[net_key]
    ds = dataset_for(spec, scale, seed=seed)
    samples = int(scale.pb_samples * budget)
    steps = int(scale.sim_steps * budget)
    rows = []
    curves = {}
    # SGDM reference (mini-batch, eq.-9-comparable hyperparameters)
    model = spec.model(scale, ds.num_classes, seed)
    res = run_sgdm_baseline(model, ds, scale, seed=seed, samples=samples)
    rows.append({"method": "SGDM", "val_acc": res["val_acc"]})
    for name, mitigation in _pb_method_suite().items():
        model = spec.model(scale, ds.num_classes, seed)
        if engine == "executor":
            res = run_pb_executor(
                model, ds, mitigation, scale, seed=seed, record_curve=True,
                samples=samples,
            )
            curves[name] = res["curve"]
        else:
            res = run_pb_simulated(
                model, ds, mitigation, scale, seed=seed, steps=steps
            )
        rows.append({"method": name, "val_acc": res["val_acc"]})
    return {"rows": rows, "curves": curves, "net": net_key, "engine": engine}


def fig08_cifar_resnet20(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    out = _pb_training_figure("rn20", scale)
    out["meta"] = {
        "paper": "Figure 8 (CIFAR10 RN20): SGDM 90.6, PB 90.4, PB+LWP_D "
        "90.7, PB+SC_D 90.8, PB+LWPv_D+SC_D 90.9 — mitigation recovers and "
        "slightly exceeds the baseline.",
        "paper_values": {
            "SGDM": 90.6, "PB": 90.4, "PB+LWP_D": 90.7,
            "PB+SC_D": 90.8, "PB+LWPv_D+SC_D": 90.9,
        },
    }
    return out


def fig09_imagenet_resnet50(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    engine = "sim" if scale.name == "bench" else "executor"
    out = _pb_training_figure(
        "rn50", scale, engine=engine,
        budget=4.0 if scale.name == "bench" else 1.0,
    )
    out["meta"] = {
        "paper": "Figure 9 (ImageNet RN50): SGDM 75.7, PB 75.1 (-0.6), "
        "PB+LWP_D 75.2, PB+SC_D 75.6, PB+LWPv_D+SC_D 75.8.",
        "paper_values": {
            "SGDM": 75.7, "PB": 75.1, "PB+LWP_D": 75.2,
            "PB+SC_D": 75.6, "PB+LWPv_D+SC_D": 75.8,
        },
    }
    return out


# -- Figure 10: inconsistency vs staleness -------------------------------------


def fig10_inconsistency(scale: Scale | None = None) -> dict:
    """Final accuracy vs constant delay, consistent vs forward-only."""
    scale = scale or get_scale()
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=scale.train_size,
        val_size=scale.val_size,
    )
    delays = [0, 1, 2, 4, 8] if scale.name == "bench" else [0, 1, 2, 3, 4, 5, 6, 8]
    hp = scale.reference.scaled_to(scale.sim_batch)
    series = {"consistent": [], "forward_only": []}
    for mode, consistent in (("consistent", True), ("forward_only", False)):
        for d in delays:
            model = small_cnn(
                num_classes=ds.num_classes, widths=(8, 16), seed=3
            )
            opt = DelayedSGDM(
                model, lr=hp.lr, momentum=hp.momentum,
                weight_decay=hp.weight_decay, delay=d, consistent=consistent,
            )
            rng = new_rng(derive_seed(0, "fig10", mode, d))
            steps = 0
            while steps < scale.sim_steps:
                for xb, yb in iterate_batches(
                    ds.x_train, ds.y_train, scale.sim_batch, rng=rng
                ):
                    delayed_train_step(opt, model, xb, yb)
                    steps += 1
                    if steps >= scale.sim_steps:
                        break
            _, acc = evaluate(model, ds.x_val, ds.y_val)
            series[mode].append(acc)
    return {
        "delays": delays,
        "series": series,
        "meta": {
            "paper": "Figure 10: delayed gradients lose accuracy even with "
            "consistent weights; inconsistency only adds damage at large "
            "delays (reconciling PipeDream vs SpecTrain claims)."
        },
    }


# -- Figure 13: prediction scale on a network -----------------------------------


def fig13_prediction_scale_nn(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=scale.train_size,
        val_size=scale.val_size,
    )
    delay = 4
    alphas = (
        [0.0, 1.0, 2.0, 3.0, 4.0]
        if scale.name == "bench"
        else [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 8.0, 10.0]
    )
    hp = scale.reference.scaled_to(scale.sim_batch)
    accs, losses = [], []
    for alpha in alphas:
        model = small_cnn(num_classes=ds.num_classes, widths=(8, 16), seed=3)
        mit = (
            MitigationConfig.none()
            if alpha == 0.0
            else MitigationConfig.lwp(scale=alpha)
        )
        opt = DelayedSGDM(
            model, lr=hp.lr, momentum=hp.momentum,
            weight_decay=hp.weight_decay, delay=delay, mitigation=mit,
            consistent=True,
        )
        rng = new_rng(derive_seed(0, "fig13", alpha))
        steps = 0
        train_losses = []
        while steps < scale.sim_steps:
            for xb, yb in iterate_batches(
                ds.x_train, ds.y_train, scale.sim_batch, rng=rng
            ):
                train_losses.append(delayed_train_step(opt, model, xb, yb))
                steps += 1
                if steps >= scale.sim_steps:
                    break
        _, acc = evaluate(model, ds.x_val, ds.y_val)
        accs.append(acc)
        losses.append(float(np.mean(train_losses[-20:])))
    return {
        "prediction_scale": alphas,
        "val_acc": accs,
        "final_train_loss": losses,
        "meta": {
            "paper": "Figure 13: on CIFAR10 RN20 with D=4 (consistent), the "
            "best loss/accuracy is around alpha ~ 2 (T = 2D)."
        },
    }


# -- Figure 14: momentum effects -----------------------------------------------


def fig14_momentum_effects(scale: Scale | None = None) -> dict:
    scale = scale or get_scale()
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=scale.train_size,
        val_size=scale.val_size,
    )
    momenta = (
        [0.0, 0.9, 0.99, 0.999]
        if scale.name == "bench"
        else [0.0, 0.5, 0.9, 0.99, 0.999, 0.9999]
    )
    delay = 6 if scale.name == "bench" else 12
    ref = scale.reference
    methods = {
        "no_delay": (0, MitigationConfig.none()),
        "delayed": (delay, MitigationConfig.none()),
        "SC_D": (delay, MitigationConfig.sc()),
        "LWP_D": (delay, MitigationConfig.lwp()),
        "LWPv_D+SC_D": (delay, MitigationConfig.lwp_plus_sc()),
    }
    out: dict[str, dict[str, list[float]]] = {}
    for consistency in ("consistent", "inconsistent"):
        series = {name: [] for name in methods}
        for m in momenta:
            lr = lr_for_momentum(
                ref.lr, ref.momentum, ref.batch_size, m, scale.sim_batch
            )
            for name, (d, mit) in methods.items():
                model = small_cnn(
                    num_classes=ds.num_classes, widths=(8, 16), seed=3
                )
                opt = DelayedSGDM(
                    model, lr=lr, momentum=m,
                    weight_decay=ref.weight_decay, delay=d, mitigation=mit,
                    consistent=(consistency == "consistent"),
                )
                rng = new_rng(derive_seed(0, "fig14", consistency, name, m))
                steps = 0
                while steps < scale.sim_steps:
                    for xb, yb in iterate_batches(
                        ds.x_train, ds.y_train, scale.sim_batch, rng=rng
                    ):
                        delayed_train_step(opt, model, xb, yb)
                        steps += 1
                        if steps >= scale.sim_steps:
                            break
                _, acc = evaluate(model, ds.x_val, ds.y_val)
                series[name].append(acc)
        out[consistency] = series
    return {
        "momentum": momenta,
        "panels": out,
        "meta": {
            "paper": "Figure 14: with delay, plain SGDM prefers small "
            "momentum; the compensation methods work best at large "
            "momentum and the combination exceeds the no-delay baseline."
        },
    }


# -- Figure 16: executor validation ---------------------------------------------


def fig16_executor_validation(scale: Scale | None = None) -> dict:
    """Fill&drain pipeline SGD == sequential batch SGD (exact)."""
    scale = scale or get_scale()
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 256),
        val_size=scale.val_size,
    )
    N = 8
    m1 = small_cnn(num_classes=ds.num_classes, seed=4)
    m2 = small_cnn(num_classes=ds.num_classes, seed=4)
    hp = scale.reference.scaled_to(N)

    ex = PipelineExecutor(
        m1, lr=hp.lr, momentum=hp.momentum, weight_decay=hp.weight_decay,
        mode="fill_drain", update_size=N,
    )
    rng = new_rng(7)
    idx = rng.permutation(ds.x_train.shape[0])
    X, Y = ds.x_train[idx], ds.y_train[idx]
    ex.train(X, Y)

    opt = SGDM(
        m2.parameters(), lr=hp.lr, momentum=hp.momentum,
        weight_decay=hp.weight_decay,
    )
    losses_ref = []
    for b in range(len(Y) // N):
        xb, yb = X[b * N : (b + 1) * N], Y[b * N : (b + 1) * N]
        loss = cross_entropy(m2(Tensor(xb)), yb)
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses_ref.append(float(loss.data))
    max_diff = max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )
    _, acc1 = evaluate(m1, ds.x_val, ds.y_val)
    _, acc2 = evaluate(m2, ds.x_val, ds.y_val)
    return {
        "max_param_diff": max_diff,
        "val_acc_pipeline": acc1,
        "val_acc_reference": acc2,
        "meta": {
            "paper": "Figure 16: GProp's fill&drain SGD matches the "
            "reference framework's SGD; our executor matches the reference "
            "to floating-point round-off."
        },
    }


# -- Figure 17: hyperparameter scaling -------------------------------------------


def fig17_hparam_scaling(scale: Scale | None = None) -> dict:
    """Batch-1 training with eq.-9-scaled hyperparameters tracks the
    reference-batch run; naive (unscaled) batch-1 training does not."""
    scale = scale or get_scale()
    ds = SyntheticCifar(
        seed=0, image_size=8, train_size=min(scale.train_size, 384),
        val_size=scale.val_size,
    )
    ref_batch = 32
    ref = scale.reference.scaled_to(ref_batch)
    total = ds.x_train.shape[0] * (2 if scale.name == "bench" else 8)

    def run(batch: int, lr: float, momentum: float, tag: str):
        model = small_cnn(num_classes=ds.num_classes, widths=(8, 16), seed=5)
        opt = SGDM(model.parameters(), lr=lr, momentum=momentum,
                   weight_decay=ref.weight_decay)
        rng = new_rng(derive_seed(0, "fig17", tag))
        curve = []
        seen = 0
        while seen < total:
            for xb, yb in iterate_batches(ds.x_train, ds.y_train, batch, rng=rng):
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
                seen += len(yb)
                if seen >= total:
                    break
            _, acc = evaluate(model, ds.x_val, ds.y_val)
            curve.append((seen, acc))
        return curve

    scaled = scale.reference.scaled_to(1)
    curves = {
        f"batch{ref_batch}_reference": run(ref_batch, ref.lr, ref.momentum, "ref"),
        "batch1_eq9_scaled": run(1, scaled.lr, scaled.momentum, "scaled"),
        "batch1_naive_unscaled": run(1, ref.lr, ref.momentum, "naive"),
    }
    final = {k: v[-1][1] for k, v in curves.items()}
    return {
        "curves": curves,
        "final_acc": final,
        "meta": {
            "paper": "Figure 17: with eq.-9 scaling, batch-1 training "
            "curves match the batch-128 reference; without scaling they "
            "diverge or train poorly."
        },
    }
