"""Experiment sizing for ``bench`` and ``paper`` scales."""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.optim.scaling import HyperParams


@dataclass(frozen=True)
class Scale:
    """Knobs shared by the experiment implementations.

    ``reference`` is the mini-batch SGDM configuration all runs scale from
    (eq. 9).  The bench scale uses a hotter reference than He et al. so
    delay effects are visible within seconds-long runs; the paper scale
    uses the He et al. values.
    """

    name: str
    points_per_decade: int  # quadratic analysis grid density
    train_size: int
    val_size: int
    rn_image: int  # image size for ResNet-family runs
    vgg_image: int
    pb_samples: int  # samples streamed through the PB executor per run
    sim_steps: int  # optimizer steps for flat-simulator runs
    sim_batch: int
    seeds: int
    width_divisor: int  # VGG width reduction
    rn_widths: tuple[int, int, int]
    reference: HyperParams


BENCH = Scale(
    name="bench",
    points_per_decade=6,
    train_size=512,
    val_size=256,
    rn_image=8,
    vgg_image=32,
    pb_samples=1280,
    sim_steps=120,
    sim_batch=16,
    seeds=1,
    width_divisor=16,
    rn_widths=(4, 8, 16),
    reference=HyperParams(lr=0.5, momentum=0.9, batch_size=32,
                          weight_decay=1e-4),
)

PAPER = Scale(
    name="paper",
    points_per_decade=16,
    train_size=4096,
    val_size=1024,
    rn_image=32,
    vgg_image=32,
    pb_samples=40_000,
    sim_steps=4000,
    sim_batch=32,
    seeds=5,
    width_divisor=1,
    rn_widths=(16, 32, 64),
    reference=HyperParams(lr=0.1, momentum=0.9, batch_size=128,
                          weight_decay=1e-4),
)


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name or from ``REPRO_SCALE``."""
    name = name or config.bench_scale()
    if name == "bench":
        return BENCH
    if name == "paper":
        return PAPER
    raise ValueError(f"unknown scale {name!r}")
