"""Shared machinery for the training experiments.

Two execution paths mirror the paper's own methodology:

* **executor runs** — true fine-grained PB through the cycle-accurate
  pipeline (update size one, per-stage delays arise structurally);
* **simulator runs** — the flat Appendix-G.2 emulation: batch training
  where each parameter's gradient is delayed by its stage's pipeline delay
  (``2(S-1-s)``, converted to steps at the simulation batch size).  Much
  faster; used for the wide ablation tables, exactly as the paper used its
  PyTorch simulation.

Bench-scale networks keep the *paper's exact stage counts* (Table 1) with
reduced widths, so the delay structure — the controlling variable — is
faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step
from repro.core.mitigation import MitigationConfig
from repro.data.loader import ResumableSampleStream, iterate_batches
from repro.data.synthetic import Dataset, SyntheticCifar, SyntheticImageNet
from repro.experiments.scale import Scale
from repro.models.arch import StageGraphModel
from repro.models.registry import PAPER_STAGE_COUNTS
from repro.models.resnet import preact_resnet50, preact_resnet_cifar
from repro.models.vgg import build_vgg
from repro.optim.sgd import SGDM
from repro.pipeline.delays import pipeline_delay_profile
from repro.tensor.tensor import Tensor, cross_entropy
from repro.train.metrics import evaluate
from repro.utils.rng import derive_seed, new_rng


@dataclass(frozen=True)
class NetSpec:
    """A paper network plus how to build it at a given scale."""

    key: str
    family: str  # "rn" | "vgg" | "rn50"
    build: Callable[[Scale, int, int], StageGraphModel]

    def model(self, scale: Scale, num_classes: int, seed: int) -> StageGraphModel:
        model = self.build(scale, num_classes, seed)
        expected = PAPER_STAGE_COUNTS.get(self.key)
        if expected is not None and model.num_stages != expected:
            raise AssertionError(
                f"{self.key}: built {model.num_stages} stages, paper says "
                f"{expected}"
            )
        return model


def _rn(blocks_per_group: int, key: str) -> NetSpec:
    def build(scale: Scale, num_classes: int, seed: int) -> StageGraphModel:
        return preact_resnet_cifar(
            blocks_per_group,
            widths=scale.rn_widths,
            num_classes=num_classes,
            seed=seed,
            name=key,
        )

    return NetSpec(key=key, family="rn", build=build)


def _vgg(cfg: str) -> NetSpec:
    def build(scale: Scale, num_classes: int, seed: int) -> StageGraphModel:
        return build_vgg(
            cfg,
            num_classes=num_classes,
            image_size=scale.vgg_image,
            width_divisor=scale.width_divisor,
            hidden=max(32, 512 // scale.width_divisor),
            dropout_p=0.1 if scale.name == "bench" else 0.5,
            seed=seed,
            name=cfg,
        )

    return NetSpec(key=cfg, family="vgg", build=build)


def _rn50() -> NetSpec:
    def build(scale: Scale, num_classes: int, seed: int) -> StageGraphModel:
        bench = scale.width_divisor > 1
        return preact_resnet50(
            widths=(8, 16, 24, 32) if bench else (64, 128, 256, 512),
            expansion=2 if bench else 4,
            stem_stride=1 if bench else 2,  # keeps 16x16 inputs viable
            stem_kernel=3 if bench else 7,  # keeps the stem gradient sane
            # at 1x1 spatial the narrow net needs wider norm groups to
            # preserve signal (see DESIGN.md substitutions)
            group_size=16 if bench else 2,
            num_classes=num_classes,
            seed=seed,
            name="rn50",
        )

    return NetSpec(key="rn50", family="rn50", build=build)


NETS: dict[str, NetSpec] = {
    "vgg11": _vgg("vgg11"),
    "vgg13": _vgg("vgg13"),
    "vgg16": _vgg("vgg16"),
    "rn20": _rn(3, "rn20"),
    "rn32": _rn(5, "rn32"),
    "rn44": _rn(7, "rn44"),
    "rn56": _rn(9, "rn56"),
    "rn110": _rn(18, "rn110"),
    "rn50": _rn50(),
}


def dataset_for(spec: NetSpec, scale: Scale, seed: int = 0) -> Dataset:
    """The dataset a network family trains on at this scale."""
    if spec.family == "vgg":
        return SyntheticCifar(
            seed=seed,
            image_size=scale.vgg_image,
            train_size=scale.train_size,
            val_size=scale.val_size,
        )
    if spec.family == "rn50":
        return SyntheticImageNet(
            seed=seed,
            image_size=16 if scale.width_divisor > 1 else 32,
            train_size=scale.train_size,
            val_size=scale.val_size,
        )
    return SyntheticCifar(
        seed=seed,
        image_size=scale.rn_image,
        train_size=scale.train_size,
        val_size=scale.val_size,
    )


# -- executor path -------------------------------------------------------


#: Per-network (lr multiplier, warmup fraction) stability tweaks for the
#: deepest pipelines at bench scale.  He et al. themselves trained
#: ResNet-110 with a reduced warm-up learning rate; the paper notes a
#: warmup "may help stabilize PB training" (§5).  Applied by model name.
NET_TRAIN_TWEAKS: dict[str, tuple[float, float]] = {
    "rn50": (0.5, 0.5),
    "rn110": (0.5, 0.5),
    # plain (non-residual) VGG stacks need a much cooler rate at bench
    # scale; this also mirrors the paper's small SGDM-vs-PB gaps on VGG
    "vgg11": (0.1, 0.3),
    "vgg13": (0.1, 0.3),
    "vgg16": (0.1, 0.3),
}


def _tweaks_for(model: StageGraphModel, scale: Scale) -> tuple[float, float]:
    if scale.name != "bench":
        return 1.0, 0.2
    return NET_TRAIN_TWEAKS.get(model.name, (1.0, 0.2))


def _warmup(
    lr: float, total_steps: int, frac: float = 0.2
) -> Callable[[int], float]:
    """Linear LR warmup over the first ``frac`` of training.

    De-flakes the deep bench runs, whose hot scaled learning rate can
    otherwise collapse them into the uniform-prediction basin on unlucky
    batch orders.
    """
    from repro.optim.lr_schedule import ConstantSchedule, WarmupSchedule

    steps = max(1, int(total_steps * frac))
    return WarmupSchedule(ConstantSchedule(lr), steps, warmup_frac=0.1)


def run_pb_executor(
    model: StageGraphModel,
    ds: Dataset,
    mitigation: MitigationConfig,
    scale: Scale,
    seed: int = 0,
    mode: str = "pb",
    update_size: int = 1,
    micro_batch_size: int = 1,
    record_curve: bool = False,
    samples: int | None = None,
    runtime: str = "sim",
    lockstep: bool = False,
    **engine_kwargs,
) -> dict:
    """Stream samples through the pipeline engine; return final metrics.

    ``mode`` names any registered schedule (``pb``/``fill_drain``/
    ``gpipe``/``1f1b``); hyperparameters are eq.-9-scaled to the
    schedule's effective update size.  ``runtime`` picks the engine:
    ``"sim"`` is the discrete-time executor, ``"threaded"`` the
    concurrent thread-per-stage runtime and ``"process"`` the
    process-per-stage runtime with shared-memory transport (both
    free-running unless ``lockstep``).  Extra ``engine_kwargs`` reach the
    engine constructor — pass ``model_factory=`` for the process backend
    on spawn-default (non-Linux) platforms.
    """
    from repro.pipeline.runtime import make_pipeline_engine
    from repro.pipeline.schedule import make_schedule

    sched = make_schedule(
        mode, update_size=update_size, micro_batch_size=micro_batch_size
    )
    hp = scale.reference.scaled_to(sched.update_size)
    total = samples if samples is not None else scale.pb_samples
    lr_mult, warm_frac = _tweaks_for(model, scale)
    ex = make_pipeline_engine(
        runtime,
        model,
        lr=hp.lr * lr_mult,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
        mitigation=mitigation,
        schedule=sched,
        lr_schedule=_warmup(hp.lr * lr_mult, total, warm_frac),
        lockstep=lockstep,
        **engine_kwargs,
    )
    rng = new_rng(derive_seed(seed, "pb", model.name, mitigation.name))
    curve: list[tuple[int, float]] = []
    done = 0
    chunk = max(1, total // 4) if record_curve else total
    # lazy stream: one epoch in memory regardless of run length, and the
    # curve chunks continue mid-epoch instead of re-shuffling per chunk
    epochs = max(1, -(-total // ds.x_train.shape[0]))
    stream = ResumableSampleStream(ds.x_train, ds.y_train, epochs, rng)
    while done < total:
        take = min(chunk, total - done)
        xs, ys = stream.next_chunk(take)
        ex.train(xs, ys)
        done += xs.shape[0]
        if record_curve:
            _, acc = evaluate(model, ds.x_val, ds.y_val)
            curve.append((done, acc))
    val_loss, val_acc = evaluate(model, ds.x_val, ds.y_val)
    return {
        "val_acc": val_acc,
        "val_loss": val_loss,
        "curve": curve,
        "samples": done,
    }


# -- flat-simulator path -----------------------------------------------------


def run_pb_simulated(
    model: StageGraphModel,
    ds: Dataset,
    mitigation: MitigationConfig,
    scale: Scale,
    consistent: bool = False,
    seed: int = 0,
    steps: int | None = None,
) -> dict:
    """Appendix-G.2 emulation of PB: per-stage delays via a flat profile."""
    hp = scale.reference.scaled_to(scale.sim_batch)
    profile = pipeline_delay_profile(model, sim_batch_size=scale.sim_batch)
    lr_mult, warm_frac = _tweaks_for(model, scale)
    opt = DelayedSGDM(
        model,
        lr=hp.lr * lr_mult,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
        delay=profile,
        mitigation=mitigation,
        consistent=consistent or mitigation.weight_stashing,
    )
    rng = new_rng(derive_seed(seed, "sim", model.name, mitigation.name))
    total = steps if steps is not None else scale.sim_steps
    sched = _warmup(hp.lr * lr_mult, total, warm_frac)
    done = 0
    while done < total:
        for xb, yb in iterate_batches(
            ds.x_train, ds.y_train, scale.sim_batch, rng=rng
        ):
            opt.lr = sched(done)
            delayed_train_step(opt, model, xb, yb)
            done += 1
            if done >= total:
                break
    val_loss, val_acc = evaluate(model, ds.x_val, ds.y_val)
    return {"val_acc": val_acc, "val_loss": val_loss, "steps": done}


def run_sgdm_baseline(
    model: StageGraphModel,
    ds: Dataset,
    scale: Scale,
    seed: int = 0,
    samples: int | None = None,
) -> dict:
    """Reference mini-batch SGDM seeing the same number of samples."""
    hp = scale.reference.scaled_to(scale.sim_batch)
    lr_mult, warm_frac = _tweaks_for(model, scale)
    opt = SGDM(
        model.parameters(),
        lr=hp.lr * lr_mult,
        momentum=hp.momentum,
        weight_decay=hp.weight_decay,
    )
    rng = new_rng(derive_seed(seed, "sgdm", model.name))
    total = samples if samples is not None else scale.pb_samples
    sched = _warmup(
        hp.lr * lr_mult, max(1, total // scale.sim_batch), warm_frac
    )
    steps = 0
    seen = 0
    while seen < total:
        for xb, yb in iterate_batches(
            ds.x_train, ds.y_train, scale.sim_batch, rng=rng
        ):
            opt.lr = sched(steps)
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            steps += 1
            seen += len(yb)
            if seen >= total:
                break
    val_loss, val_acc = evaluate(model, ds.x_val, ds.y_val)
    return {"val_acc": val_acc, "val_loss": val_loss, "samples": seen}


def mean_std(values: list[float]) -> tuple[float, float]:
    arr = np.asarray(values, dtype=float)
    return float(arr.mean()), float(arr.std())
