"""CLI: run a paper experiment and print its result.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments fig05           # run one (bench scale)
    python -m repro.experiments table1 --scale paper
    python -m repro.experiments fig08 --save    # also write results/<id>.json
    python -m repro.experiments schedule_comparison --schedule gpipe
    python -m repro.experiments schedule_comparison --runtime process
    python -m repro.experiments runtime_comparison
    python -m repro.experiments durable_training --checkpoint ckpts
    python -m repro.experiments durable_training --schedule pb \
        --resume ckpts/pb.ckpt
    python -m repro.experiments serving --serve-backend process \
        --serve-max-batch 8 --serve-deadline-ms 2
    python -m repro.experiments serving_fleet --fleet-replicas 3 \
        --fleet-backend process --fleet-interactive-pct 70
"""

from __future__ import annotations

import argparse
import sys
import warnings

import numpy as np

from repro.experiments import EXPERIMENTS, get_scale, run_experiment
from repro.pipeline.schedule import SCHEDULE_NAMES
from repro.utils import ResultStore, format_table
from repro.utils.render import format_series


def _print_payload(exp_id: str, payload: dict) -> None:
    if "rows" in payload:
        print(format_table(payload["rows"], title=f"[{exp_id}]"))
    if "series" in payload and isinstance(payload["series"], dict):
        xkey = next(
            (k for k in ("kappa", "delay", "delays", "momentum") if k in payload),
            None,
        )
        if xkey is not None:
            print(
                format_series(
                    payload[xkey], payload["series"], x_name=xkey,
                    floatfmt="{:.4g}",
                )
            )
    meta = payload.get("meta", {})
    if "paper" in meta:
        print(f"\npaper: {meta['paper']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one of the paper's table/figure experiments.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id")
    parser.add_argument(
        "--scale", choices=["bench", "paper"], default=None,
        help="override REPRO_SCALE",
    )
    parser.add_argument(
        "--schedule", choices=list(SCHEDULE_NAMES), default=None,
        help="restrict a schedule-aware experiment (e.g. "
        "schedule_comparison) to one pipeline schedule",
    )
    parser.add_argument(
        "--runtime", choices=["sim", "threaded", "process"], default=None,
        help="pipeline engine for runtime-aware experiments (e.g. "
        "schedule_comparison): the discrete-time simulator (sim), the "
        "concurrent multi-worker thread runtime (threaded, free-running) "
        "or the process-per-stage runtime with shared-memory transport "
        "(process, free-running)",
    )
    parser.add_argument(
        "--replicas", metavar="R", type=int, default=None,
        help="data-parallel pipeline replicas for replica-aware "
        "experiments (e.g. hybrid_parallelism): R copies of the "
        "process-runtime pipeline over disjoint shards, gradients "
        "reduced at update barriers",
    )
    parser.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint directory for durability-aware experiments "
        "(e.g. durable_training): snapshots land here instead of a "
        "temp dir",
    )
    parser.add_argument(
        "--checkpoint-every", metavar="N", type=int, default=None,
        help="samples between snapshots (rounded up to a drain "
        "barrier, i.e. a multiple of the schedule's update size)",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume a durability-aware experiment from a checkpoint "
        "file written by an earlier --checkpoint run",
    )
    parser.add_argument(
        "--serve-backend", choices=["sim", "threaded", "process"],
        default=None,
        help="serving experiment: pipeline backend for the inference "
        "session (the serving counterpart of --runtime)",
    )
    parser.add_argument(
        "--serve-requests", metavar="N", type=int, default=None,
        help="serving experiment: closed-loop requests to drive",
    )
    parser.add_argument(
        "--serve-max-batch", metavar="B", type=int, default=None,
        help="serving experiment: dynamic batcher width cap (micro-"
        "batch packet width)",
    )
    parser.add_argument(
        "--serve-deadline-ms", metavar="MS", type=float, default=None,
        help="serving experiment: batcher coalescing deadline on the "
        "oldest queued request, in milliseconds",
    )
    parser.add_argument(
        "--serve-concurrency", metavar="C", type=int, default=None,
        help="serving experiment: closed-loop client threads (offered "
        "load)",
    )
    parser.add_argument(
        "--fleet-replicas", metavar="R", type=int, default=None,
        help="serving_fleet experiment: number of serving replicas "
        "behind the router",
    )
    parser.add_argument(
        "--fleet-backend", choices=["sim", "threaded", "process"],
        default=None,
        help="serving_fleet experiment: pipeline backend each replica "
        "runs on",
    )
    parser.add_argument(
        "--fleet-requests", metavar="N", type=int, default=None,
        help="serving_fleet experiment: closed-loop requests to drive "
        "through the fleet (spanning the rolling weight reload)",
    )
    parser.add_argument(
        "--fleet-interactive-pct", metavar="PCT", type=float, default=None,
        help="serving_fleet experiment: percentage of requests in the "
        "interactive SLO class (the rest are batch)",
    )
    parser.add_argument(
        "--save", action="store_true", help="persist to results/<id>.json"
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        rows = [
            {"id": exp_id, "description": desc}
            for exp_id, (_, desc) in sorted(EXPERIMENTS.items())
        ]
        print(format_table(rows, title="Available experiments"))
        return 0

    warnings.filterwarnings("ignore", category=RuntimeWarning)
    np.seterr(all="ignore")
    scale = get_scale(args.scale) if args.scale else None
    overrides = {}
    if args.schedule is not None:
        overrides["schedule"] = args.schedule
    if args.runtime is not None:
        overrides["runtime"] = args.runtime
    if args.replicas is not None:
        overrides["replicas"] = args.replicas
    if args.checkpoint is not None:
        overrides["checkpoint"] = args.checkpoint
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if args.resume is not None:
        overrides["resume"] = args.resume
    if args.serve_backend is not None:
        overrides["serve_backend"] = args.serve_backend
    if args.serve_requests is not None:
        overrides["serve_requests"] = args.serve_requests
    if args.serve_max_batch is not None:
        overrides["serve_max_batch"] = args.serve_max_batch
    if args.serve_deadline_ms is not None:
        overrides["serve_deadline_ms"] = args.serve_deadline_ms
    if args.serve_concurrency is not None:
        overrides["serve_concurrency"] = args.serve_concurrency
    if args.fleet_replicas is not None:
        overrides["fleet_replicas"] = args.fleet_replicas
    if args.fleet_backend is not None:
        overrides["fleet_backend"] = args.fleet_backend
    if args.fleet_requests is not None:
        overrides["fleet_requests"] = args.fleet_requests
    if args.fleet_interactive_pct is not None:
        overrides["fleet_interactive_pct"] = args.fleet_interactive_pct
    payload = run_experiment(args.experiment, scale, **overrides)
    _print_payload(args.experiment, payload)
    if args.save:
        path = ResultStore().save(args.experiment, payload)
        print(f"\nsaved: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
