"""Experiment registry: id -> (callable, description)."""

from __future__ import annotations

from typing import Callable

from repro.experiments import extensions, figures, tables
from repro.experiments.scale import Scale

EXPERIMENTS: dict[str, tuple[Callable[..., dict], str]] = {
    "fig02": (
        figures.fig02_utilization,
        "Figure 2 / eq. 1 — pipeline utilization: fill-drain vs PB",
    ),
    "fig04": (
        figures.fig04_root_heatmaps,
        "Figure 4 — dominant-root heatmaps over (eta*lambda, momentum)",
    ),
    "fig05": (
        figures.fig05_condition_sweep,
        "Figure 5 — min half-life vs condition number (D=1)",
    ),
    "fig06": (
        figures.fig06_delay_sweep,
        "Figure 6 — min half-life vs delay (kappa=1e3)",
    ),
    "fig07": (
        figures.fig07_horizon_momentum,
        "Figure 7 — half-life vs momentum for LWP horizons (D=5)",
    ),
    "fig08": (
        figures.fig08_cifar_resnet20,
        "Figure 8 — CIFAR RN20 PB training with mitigations",
    ),
    "fig09": (
        figures.fig09_imagenet_resnet50,
        "Figure 9 — ImageNet RN50 PB training with mitigations",
    ),
    "fig10": (
        figures.fig10_inconsistency,
        "Figure 10 — consistent vs forward-only delay",
    ),
    "fig12": (
        figures.fig12_prediction_scale_quadratic,
        "Figure 12 — prediction-scale sweep on the quadratic",
    ),
    "fig13": (
        figures.fig13_prediction_scale_nn,
        "Figure 13 — prediction-scale sweep on a network (D=4)",
    ),
    "fig14": (
        figures.fig14_momentum_effects,
        "Figure 14 — momentum effects under delay",
    ),
    "fig16": (
        figures.fig16_executor_validation,
        "Figure 16 — executor validation (fill&drain == batch SGD)",
    ),
    "fig17": (
        figures.fig17_hparam_scaling,
        "Figure 17 — eq. 9 hyperparameter scaling validation",
    ),
    "table1": (
        tables.table1_cifar_suite,
        "Table 1/5 — CIFAR suite: SGDM vs PB vs PB+LWPv_D+SC_D",
    ),
    "table2": (
        tables.table2_weight_stashing,
        "Table 2 — weight stashing ablation",
    ),
    "table3": (
        tables.table3_spectrain,
        "Table 3 — SpecTrain comparison",
    ),
    "table4": (
        tables.table4_overcompensation,
        "Table 4 — overcompensation (LWP_2D / SC_2D)",
    ),
    "table6": (
        tables.table6_lwpv_vs_lwpw,
        "Table 6 — LWPv vs LWPw combined forms",
    ),
    "ablation_bn_vs_gn": (
        extensions.ablation_bn_vs_gn,
        "Extension — BN vs GN delay tolerance (§5 exploratory claim)",
    ),
    "ablation_warmup": (
        extensions.ablation_warmup,
        "Extension — LR warmup as a delay stabilizer (§5)",
    ),
    "ablation_gradient_shrinking": (
        extensions.ablation_gradient_shrinking,
        "Extension — gradient shrinking (Zhuang et al.) vs SC/LWP",
    ),
    "schedule_comparison": (
        extensions.schedule_comparison,
        "Extension — PB vs fill-drain vs GPipe vs 1F1B: steps-to-loss "
        "and utilization per schedule",
    ),
    "runtime_comparison": (
        extensions.runtime_comparison,
        "Extension — discrete-time simulator vs concurrent multi-worker "
        "runtime: lockstep bit-exactness + free-running wall-clock",
    ),
    "durable_training": (
        extensions.durable_training,
        "Extension — checkpoint/resume durability: interrupted runs "
        "resume to hex-identical weights (supports --resume / "
        "--checkpoint / --checkpoint-every)",
    ),
    "hybrid_parallelism": (
        extensions.hybrid_parallelism,
        "Extension — hybrid parallelism: R data-parallel pipeline "
        "replicas vs one pipeline at R*U (bit-exact for synchronous "
        "schedules; eq.-5 staleness per replica for pb/1f1b; supports "
        "--schedule / --replicas)",
    ),
    "serving": (
        extensions.serving,
        "Extension — pipelined inference serving vs sequential forward: "
        "closed-loop throughput + p50/p95/p99 latency with dynamic "
        "micro-batching (supports --serve-backend / --serve-requests / "
        "--serve-max-batch / --serve-deadline-ms / --serve-concurrency)",
    ),
    "serving_fleet": (
        extensions.serving_fleet,
        "Extension — multi-replica serving fleet: SLO-class admission "
        "(interactive vs batch), least-loaded dispatch, and a rolling "
        "zero-downtime weight hot-swap under live mixed load (supports "
        "--fleet-replicas / --fleet-backend / --fleet-requests / "
        "--fleet-interactive-pct)",
    ),
}


def run_experiment(
    exp_id: str, scale: Scale | None = None, **overrides
) -> dict:
    """Run a registered experiment and return its payload.

    ``overrides`` are forwarded to the experiment callable (e.g.
    ``schedule="gpipe"`` for ``schedule_comparison``); passing one an
    experiment does not accept raises :class:`ValueError`.
    """
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    fn, _ = EXPERIMENTS[exp_id]
    if overrides:
        import inspect

        params = inspect.signature(fn).parameters
        unsupported = sorted(set(overrides) - set(params))
        if unsupported:
            raise ValueError(
                f"experiment {exp_id!r} does not accept "
                f"{', '.join(unsupported)}"
            )
        return fn(scale, **overrides)
    return fn(scale)
