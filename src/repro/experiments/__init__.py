"""One entry point per paper table/figure.

Every function returns a JSON-serializable payload with the regenerated
rows/series plus a ``meta`` block recording what the paper reports for the
same experiment.  The benchmark harness in ``benchmarks/`` wraps these,
prints the result, persists it under ``results/``, and asserts the paper's
qualitative claims.

``REPRO_SCALE=bench`` (default) runs seconds-scale versions —
width-reduced models with the paper's exact per-network stage counts, and
coarser analysis grids.  ``REPRO_SCALE=paper`` runs the full
configurations.
"""

from repro.experiments.scale import Scale, get_scale
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["Scale", "get_scale", "EXPERIMENTS", "run_experiment"]
