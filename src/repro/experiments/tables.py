"""Table reproductions (Tables 1-6; Table 5 = Table 1 with run stats)."""

from __future__ import annotations

import numpy as np

from repro.core.mitigation import MitigationConfig
from repro.experiments.common import (
    NETS,
    dataset_for,
    mean_std,
    run_pb_executor,
    run_pb_simulated,
    run_sgdm_baseline,
)
from repro.experiments.scale import Scale, get_scale
from repro.models.registry import PAPER_STAGE_COUNTS

#: Paper values for Table 1 (final CIFAR10 validation accuracy, %).
PAPER_TABLE1 = {
    "vgg11": {"stages": 29, "SGDM": 91.2, "PB": 90.8, "PB+LWPv_D+SC_D": 91.1},
    "vgg13": {"stages": 33, "SGDM": 92.6, "PB": 92.6, "PB+LWPv_D+SC_D": 92.6},
    "vgg16": {"stages": 39, "SGDM": 92.2, "PB": 92.1, "PB+LWPv_D+SC_D": 92.4},
    "rn20": {"stages": 34, "SGDM": 90.6, "PB": 90.4, "PB+LWPv_D+SC_D": 90.9},
    "rn32": {"stages": 52, "SGDM": 91.7, "PB": 91.5, "PB+LWPv_D+SC_D": 92.0},
    "rn44": {"stages": 70, "SGDM": 92.2, "PB": 91.7, "PB+LWPv_D+SC_D": 92.2},
    "rn56": {"stages": 88, "SGDM": 92.4, "PB": 91.9, "PB+LWPv_D+SC_D": 92.5},
    "rn110": {"stages": 169, "SGDM": 92.8, "PB": 91.8, "PB+LWPv_D+SC_D": 92.4},
}

#: Bench-scale network subsets (full list at paper scale).
_BENCH_T1_NETS = ["vgg11", "rn20", "rn32", "rn56", "rn110"]
_BENCH_SMALL = ["vgg11", "rn20", "rn110"]


def _table_nets(scale: Scale, subset: list[str]) -> list[str]:
    if scale.name == "paper":
        return list(PAPER_TABLE1.keys())
    return subset


#: Bench-scale engine assignment: the cycle-accurate executor for a core
#: subset (true fine-grained PB), the Appendix-G.2 flat emulation for the
#: rest.  Paper scale runs everything through the executor.
_BENCH_EXECUTOR_NETS = {"rn20", "rn56"}


def _engine_for(key: str, scale: Scale) -> str:
    if scale.name == "paper" or key in _BENCH_EXECUTOR_NETS:
        return "executor"
    return "sim"


def table1_cifar_suite(scale: Scale | None = None) -> dict:
    """Table 1/5: SGDM vs PB vs PB+LWPv_D+SC_D across the CIFAR nets.

    At paper scale every network runs true fine-grained PB through the
    cycle-accurate executor; at bench scale the executor covers a core
    subset and the remaining networks use the paper's own flat emulation
    (Appendix G.2) with per-stage delay profiles.  Width-reduced models
    keep the paper's exact stage counts either way.
    """
    scale = scale or get_scale()
    nets = _table_nets(scale, _BENCH_T1_NETS)
    methods = {
        "PB": MitigationConfig.none(),
        "PB+LWPv_D+SC_D": MitigationConfig.lwp_plus_sc(),
    }
    rows = []
    for key in nets:
        spec = NETS[key]
        engine = _engine_for(key, scale)
        row: dict = {
            "net": key,
            "stages": PAPER_STAGE_COUNTS[key],
            "engine": engine,
        }
        accs_by_method: dict[str, list[float]] = {"SGDM": []}
        for name in methods:
            accs_by_method[name] = []
        for seed in range(scale.seeds):
            ds = dataset_for(spec, scale, seed=seed)
            model = spec.model(scale, ds.num_classes, seed)
            accs_by_method["SGDM"].append(
                run_sgdm_baseline(model, ds, scale, seed=seed)["val_acc"]
            )
            for name, mit in methods.items():
                model = spec.model(scale, ds.num_classes, seed)
                if engine == "executor":
                    acc = run_pb_executor(model, ds, mit, scale, seed=seed)[
                        "val_acc"
                    ]
                else:
                    acc = run_pb_simulated(model, ds, mit, scale, seed=seed)[
                        "val_acc"
                    ]
                accs_by_method[name].append(acc)
        for name, accs in accs_by_method.items():
            mean, std = mean_std(accs)
            row[name] = mean
            if scale.seeds > 1:
                row[f"{name}_std"] = std
        rows.append(row)
    return {
        "rows": rows,
        "paper_rows": PAPER_TABLE1,
        "meta": {
            "paper": "Table 1/5: PB loses accuracy as pipelines deepen "
            "(RN110: -1.0); PB+LWPv_D+SC_D recovers most or all of it.",
            "note": "bench scale: width-reduced nets, paper stage counts, "
            "synthetic data; compare orderings/gaps, not absolute values.",
        },
    }


def table2_weight_stashing(scale: Scale | None = None) -> dict:
    """Table 2: weight stashing does not help fine-grained PB.

    Uses the flat Appendix-G.2 emulation (per-stage delay profile) so all
    networks run quickly; PB = inconsistent weights, PB+WS = consistent.
    """
    scale = scale or get_scale()
    nets = _table_nets(scale, _BENCH_SMALL)
    rows = []
    for key in nets:
        spec = NETS[key]
        row: dict = {"net": key}
        for name, consistent in (("PB", False), ("PB+WS", True)):
            accs = []
            for seed in range(scale.seeds):
                ds = dataset_for(spec, scale, seed=seed)
                model = spec.model(scale, ds.num_classes, seed)
                accs.append(
                    run_pb_simulated(
                        model, ds, MitigationConfig.none(), scale,
                        consistent=consistent, seed=seed,
                    )["val_acc"]
                )
            row[name], _ = mean_std(accs)
        rows.append(row)
    return {
        "rows": rows,
        "meta": {
            "paper": "Table 2: PB and PB+WS accuracies are statistically "
            "indistinguishable (weight inconsistency is not the problem at "
            "these delays); VGG16+WS was unstable in the paper."
        },
    }


def table3_spectrain(scale: Scale | None = None) -> dict:
    """Table 3: SpecTrain vs our combined mitigation (executor runs)."""
    scale = scale or get_scale()
    nets = (
        ["vgg13", "rn20", "rn56", "rn50"]
        if scale.name == "paper"
        else ["rn20", "rn56"]
    )
    methods = {
        "PB": MitigationConfig.none(),
        "PB+LWPv_D+SC_D": MitigationConfig.lwp_plus_sc(),
        "PB+SpecTrain": MitigationConfig.spectrain(),
    }
    rows = []
    for key in nets:
        spec = NETS[key]
        row: dict = {"net": key}
        ds = dataset_for(spec, scale, seed=0)
        model = spec.model(scale, ds.num_classes, 0)
        row["SGDM"] = run_sgdm_baseline(model, ds, scale, seed=0)["val_acc"]
        for name, mit in methods.items():
            model = spec.model(scale, ds.num_classes, 0)
            row[name] = run_pb_executor(model, ds, mit, scale, seed=0)[
                "val_acc"
            ]
        rows.append(row)
    return {
        "rows": rows,
        "meta": {
            "paper": "Table 3: SpecTrain is competitive on CIFAR but loses "
            "0.4 on ImageNet RN50 where LWPv_D+SC_D recovers full accuracy."
        },
    }


def table4_overcompensation(scale: Scale | None = None) -> dict:
    """Table 4: 2x horizons/spikes (LWP_2D, SC_2D) vs the defaults."""
    scale = scale or get_scale()
    nets = _table_nets(scale, _BENCH_SMALL)
    methods = {
        "PB": MitigationConfig.none(),
        "PB+LWP_D": MitigationConfig.lwp(),
        "PB+LWP_2D": MitigationConfig.lwp(scale=2.0),
        "PB+SC_D": MitigationConfig.sc(),
        "PB+SC_2D": MitigationConfig.sc(scale=2.0),
    }
    rows = []
    for key in nets:
        spec = NETS[key]
        row: dict = {"net": key}
        for name, mit in methods.items():
            accs = []
            for seed in range(scale.seeds):
                ds = dataset_for(spec, scale, seed=seed)
                model = spec.model(scale, ds.num_classes, seed)
                accs.append(
                    run_pb_simulated(model, ds, mit, scale, seed=seed)[
                        "val_acc"
                    ]
                )
            row[name], _ = mean_std(accs)
        rows.append(row)
    return {
        "rows": rows,
        "meta": {
            "paper": "Table 4: overcompensating (2D) helps most nets but "
            "destabilizes very deep pipelines (RN110 + LWP_2D collapsed)."
        },
    }


def table6_lwpv_vs_lwpw(scale: Scale | None = None) -> dict:
    """Table 6: velocity-form vs weight-difference-form LWP in the combo."""
    scale = scale or get_scale()
    nets = _table_nets(scale, _BENCH_SMALL)
    methods = {
        "PB": MitigationConfig.none(),
        "PB+LWPv_D+SC_D": MitigationConfig.lwp_plus_sc("v"),
        "PB+LWPw_D+SC_D": MitigationConfig.lwp_plus_sc("w"),
    }
    rows = []
    for key in nets:
        spec = NETS[key]
        engine = _engine_for(key, scale)
        row: dict = {"net": key, "engine": engine}
        for name, mit in methods.items():
            accs = []
            for seed in range(scale.seeds):
                ds = dataset_for(spec, scale, seed=seed)
                model = spec.model(scale, ds.num_classes, seed)
                if engine == "executor":
                    acc = run_pb_executor(model, ds, mit, scale, seed=seed)[
                        "val_acc"
                    ]
                else:
                    acc = run_pb_simulated(model, ds, mit, scale, seed=seed)[
                        "val_acc"
                    ]
                accs.append(acc)
            row[name], _ = mean_std(accs)
        rows.append(row)
    return {
        "rows": rows,
        "meta": {
            "paper": "Table 6: LWPv_D+SC_D generally outperforms "
            "LWPw_D+SC_D (the weight form's velocity estimate is noisier); "
            "the gap is largest for RN110."
        },
    }
