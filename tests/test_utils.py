"""Utility modules: rendering, result store, rng derivation."""

import numpy as np
import pytest

from repro.utils import ResultStore, ascii_heatmap, format_table
from repro.utils.render import format_series
from repro.utils.rng import derive_seed, new_rng, spawn_rngs


class TestRender:
    def test_format_table_alignment(self):
        rows = [
            {"net": "RN20", "SGDM": 90.63, "PB": 90.44},
            {"net": "RN110", "SGDM": 92.77, "PB": 91.81},
        ]
        text = format_table(rows, title="Table 1")
        assert "Table 1" in text
        assert "RN110" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 2 + 1  # title + header + rule + 2 rows

    def test_format_table_missing_key(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_empty_table(self):
        assert "empty" in format_table([])

    def test_heatmap_levels(self):
        m = np.array([[0.0, 0.5, 1.0]])
        text = ascii_heatmap(m, vmin=0.0, vmax=1.0)
        assert text[0] == " " and text[-1] == "@"

    def test_heatmap_invalid_cells(self):
        m = np.array([[0.0, np.nan, np.inf]])
        text = ascii_heatmap(m, vmin=0, vmax=1)
        assert text.count("X") == 2

    def test_heatmap_labels(self):
        m = np.zeros((2, 3))
        text = ascii_heatmap(m, row_labels=["m=0.9", "m=0"], title="fig")
        assert "m=0.9" in text and text.startswith("fig")

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3))

    def test_format_series(self):
        text = format_series([1, 2], {"gdm": [0.5, 0.6], "sc": [0.4, 0.3]},
                             x_name="delay")
        assert "delay" in text and "gdm" in text and "0.3" in text


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {
            "rows": [{"a": np.float64(1.5), "b": np.int64(2)}],
            "series": np.array([1.0, 2.0]),
            "nested": {"x": np.bool_(True)},
        }
        store.save("exp1", payload)
        assert store.exists("exp1")
        loaded = store.load("exp1")
        assert loaded["rows"][0]["a"] == 1.5
        assert loaded["series"] == [1.0, 2.0]
        assert loaded["nested"]["x"] is True

    def test_missing_is_not_exists(self, tmp_path):
        assert not ResultStore(tmp_path).exists("nope")

    def test_inf_encoded(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("inf", {"v": float("inf")})
        assert store.load("inf")["v"] == "inf"


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_spawn_rngs_independent(self):
        r1, r2 = spawn_rngs(0, 2)
        assert r1.normal() != r2.normal()

    def test_new_rng_reproducible(self):
        assert new_rng(5).normal() == new_rng(5).normal()
