"""Replica parity: R data-parallel pipeline replicas vs one at ``R*U``.

The :class:`~repro.pipeline.runtime.ReplicatedPipelineRunner` promises
that for the synchronous schedules (``fill_drain``, ``gpipe``) data
parallelism is *mathematically invisible*: ``R`` replicas at per-replica
update size ``U``, each streaming a disjoint block-cyclic shard and
chain-reducing per-packet gradient segments in rank order, compute
exactly what one :class:`PipelineExecutor` at update size ``R*U``
computes — same per-sample losses (to the bit), same final weights,
same per-stage update counts.  Any divergence is a reduce-plane bug
(reordered fold, lost segment, miscounted flush), never float noise.

For the asynchronous schedules (``pb``, ``1f1b``) there is no global
batch to pin against; instead each replica must independently obey the
paper's eq.-5 staleness ceiling ``D_s = 2(S-1-s)`` on its own shard,
and the end-of-train rank-order delta-average merge must be
deterministic under lockstep.

Coverage: replica counts {2, 3} × pipeline depths {1, 2, 4} stages ×
micro-batch widths {1, 4, tail-remainder}, uneven shards (n not
divisible by ``R*U``, including replicas that miss the last global
round entirely), engine-facade wiring, and constructor validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.arch import StageDef, StageGraphModel
from repro.models.simple import small_cnn
from repro.nn import Flatten, Linear, Sequential
from repro.pipeline import (
    PipelineExecutor,
    ReplicatedPipelineRunner,
    make_pipeline_engine,
)
from repro.utils.rng import new_rng

from test_schedules_golden import LR, MOMENTUM, WEIGHT_DECAY

pytestmark = pytest.mark.concurrency


# -- model zoo: pipelines of 1, 2 and 4 stages (factories, spawn-safe) -------


def _loss_only(seed: int = 0) -> StageGraphModel:
    """1 stage: the degenerate pipeline (loss only, no parameters)."""
    return StageGraphModel([StageDef("loss", kind="loss")], name="loss_only")


def _two_stage(seed: int = 0) -> StageGraphModel:
    """2 stages: one linear head + loss."""
    return StageGraphModel(
        [
            StageDef(
                "head",
                module=Sequential(
                    Flatten(), Linear(3 * 8 * 8, 4, rng=new_rng(seed))
                ),
            ),
            StageDef("loss", kind="loss"),
        ],
        name="two_stage",
    )


def _four_stage(seed: int = 0) -> StageGraphModel:
    """4 stages: conv, pool, fc, loss (``small_cnn`` with one width)."""
    return small_cnn(num_classes=4, widths=(4,), seed=seed)


MODELS = {1: _loss_only, 2: _two_stage, 4: _four_stage}

#: (schedule mode, per-replica schedule kwargs) — per-replica update 2
#: for fill_drain and 4 for gpipe at micro widths 4 and 1.
SYNC_CONFIGS = [
    ("fill_drain", dict(update_size=2)),
    ("gpipe", dict(update_size=4, micro_batch_size=4)),
    ("gpipe", dict(update_size=4, micro_batch_size=1)),
]


def _hex_losses(stats) -> list[str]:
    return [float(l).hex() for l in stats.losses]


def _weight_fingerprint(model) -> tuple[str, str]:
    wsum = float(np.sum([float(p.data.sum()) for p in model.parameters()]))
    wabs = float(
        np.sum([float(np.abs(p.data).sum()) for p in model.parameters()])
    )
    return wsum.hex(), wabs.hex()


def _stream(n: int, seed: int = 99):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)


def _run_both(depth: int, replicas: int, mode: str, kw: dict, n: int,
              lockstep: bool = False):
    """Train twin models: simulator at ``R*U`` vs R replicas at ``U``."""
    X, Y = _stream(n)
    factory = MODELS[depth]
    global_kw = dict(kw, update_size=kw["update_size"] * replicas)
    m_sim = factory(seed=2024)
    m_rep = factory(seed=2024)
    common = dict(lr=LR, momentum=MOMENTUM, weight_decay=WEIGHT_DECAY)
    sim = PipelineExecutor(m_sim, mode=mode, **common, **global_kw).train(X, Y)
    runner = ReplicatedPipelineRunner(
        m_rep, mode=mode, replicas=replicas, model_factory=factory,
        lockstep=lockstep, **common, **kw,
    )
    rep = runner.train(X, Y)
    return sim, rep, m_sim, m_rep, runner


class TestReplicaParitySync:
    @pytest.mark.parametrize("depth", sorted(MODELS))
    @pytest.mark.parametrize("replicas", [2, 3])
    @pytest.mark.parametrize("mode,kw", SYNC_CONFIGS)
    def test_losses_weights_and_update_counts(
        self, depth, replicas, mode, kw
    ):
        sim, rep, m_sim, m_rep, runner = _run_both(
            depth, replicas, mode, kw, n=12
        )
        tag = f"{mode} x {depth} stages x {replicas} replicas"
        assert _hex_losses(sim) == _hex_losses(rep), (
            f"{tag}: per-sample losses drifted"
        )
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_rep), tag
        assert sim.updates_per_stage == rep.updates_per_stage, tag
        assert rep.samples == 12
        assert runner.samples_completed == 12

    @pytest.mark.parametrize("replicas", [2, 3])
    @pytest.mark.parametrize("mode,kw", SYNC_CONFIGS)
    def test_tail_remainder_and_uneven_shards(self, replicas, mode, kw):
        """n=11: uneven block-cyclic shards, a partial last global round
        (some replicas contribute short batches or miss it entirely and
        join the reduce with a zero flush), and tail micro-packets —
        still bit-exact."""
        sim, rep, m_sim, m_rep, _ = _run_both(4, replicas, mode, kw, n=11)
        assert _hex_losses(sim) == _hex_losses(rep)
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_rep)
        assert sim.updates_per_stage == rep.updates_per_stage

    def test_lockstep_replicas_match_too(self):
        """Lockstep mode drives each replica on the per-step barrier;
        the reduce plane must behave identically."""
        sim, rep, m_sim, m_rep, _ = _run_both(
            2, 2, "fill_drain", dict(update_size=2), n=12, lockstep=True
        )
        assert _hex_losses(sim) == _hex_losses(rep)
        assert _weight_fingerprint(m_sim) == _weight_fingerprint(m_rep)

    def test_runtime_stats_merge_replicas(self):
        """Merged RuntimeStats carry the replica count and per-stage op
        totals over all replicas without double-counting capacity."""
        _, rep, _, _, runner = _run_both(
            4, 2, "fill_drain", dict(update_size=2), n=12
        )
        rt = rep.runtime
        assert rt.replicas == 2
        assert rep.replicas == 2
        assert rt.num_stages == runner.num_stages
        # every sample crosses every stage exactly once, summed over
        # both replicas
        for s in range(rt.num_stages):
            assert rt.stages[s].forward_samples == 12
            assert rt.stages[s].backward_samples == 12
        # busy fractions stay normalized against R * wall
        for s in range(rt.num_stages):
            assert 0.0 <= rt.busy_fraction(s) <= 1.0


class TestReplicaStalenessAsync:
    @pytest.mark.parametrize("mode", ["pb", "1f1b"])
    def test_eq5_ceiling_holds_per_replica(self, mode):
        """Each replica runs the asynchronous schedule on its own shard;
        the observed forward version of that replica's sample i at stage
        s must satisfy eq. 5: ``v_fwd >= i - 2(S-1-s)`` (clamped at the
        cold start)."""
        X, Y = _stream(9)
        factory = MODELS[4]
        runner = ReplicatedPipelineRunner(
            factory(seed=2024), lr=LR, momentum=MOMENTUM, mode=mode,
            replicas=2, model_factory=factory, record_versions=True,
        )
        runner.train(X, Y)
        S = runner.num_stages
        checked = 0
        for r, rep in enumerate(runner.replica_runners):
            for s, st in enumerate(rep.stages):
                for (i, v_fwd, _v_bwd) in st.version_trace:
                    floor = max(0, i - 2 * (S - 1 - s))
                    assert v_fwd >= floor, (
                        f"{mode}: replica {r} stage {s} sample {i} saw "
                        f"version {v_fwd} < eq.-5 floor {floor}"
                    )
                    checked += 1
        assert checked > 0, "no version traces recorded"

    @pytest.mark.parametrize("mode", ["pb", "1f1b"])
    def test_lockstep_merge_is_deterministic(self, mode):
        """The end-of-train rank-order delta-average merge must be a
        pure function of the (lockstep-deterministic) replica
        trajectories: two identical runs land on identical weights."""

        def run():
            factory = MODELS[4]
            m = factory(seed=2024)
            runner = ReplicatedPipelineRunner(
                m, lr=LR, momentum=MOMENTUM, mode=mode, replicas=2,
                model_factory=factory, lockstep=True,
            )
            stats = runner.train(*_stream(9))
            return _hex_losses(stats), _weight_fingerprint(m)

        losses_a, fp_a = run()
        losses_b, fp_b = run()
        assert losses_a == losses_b
        assert fp_a == fp_b


class TestReplicatedEngineWiring:
    def test_make_pipeline_engine_dispatches_replicas(self):
        factory = MODELS[2]
        engine = make_pipeline_engine(
            "process", factory(seed=1), lr=LR, mode="fill_drain",
            update_size=2, replicas=2, model_factory=factory,
        )
        assert isinstance(engine, ReplicatedPipelineRunner)
        assert engine.replicas == 2
        # synchronous: the engine-facing update size is the global one,
        # so DurableRun aligns checkpoints to global drain barriers
        assert engine.update_size == 4

    def test_replicas_one_falls_back_to_plain_runner(self):
        from repro.pipeline import ProcessPipelineRunner

        factory = MODELS[2]
        engine = make_pipeline_engine(
            "process", factory(seed=1), lr=LR, mode="fill_drain",
            update_size=2, replicas=1, model_factory=factory,
        )
        assert isinstance(engine, ProcessPipelineRunner)
        assert not isinstance(engine, ReplicatedPipelineRunner)

    @pytest.mark.parametrize("runtime", ["sim", "threaded"])
    def test_replicas_require_process_runtime(self, runtime):
        factory = MODELS[2]
        with pytest.raises(ValueError, match="process"):
            make_pipeline_engine(
                runtime, factory(seed=1), lr=LR, mode="fill_drain",
                update_size=2, replicas=2, model_factory=factory,
            )

    def test_constructor_validation(self):
        factory = MODELS[2]
        with pytest.raises(ValueError, match="replicas"):
            ReplicatedPipelineRunner(
                factory(seed=1), lr=LR, mode="fill_drain", update_size=2,
                replicas=1, model_factory=factory,
            )
        with pytest.raises(ValueError, match="model_factory"):
            ReplicatedPipelineRunner(
                factory(seed=1), lr=LR, mode="fill_drain", update_size=2,
                replicas=2,
            )
        from repro.pipeline.schedule import make_schedule

        with pytest.raises(ValueError, match="schedule"):
            ReplicatedPipelineRunner(
                factory(seed=1), lr=LR,
                schedule=make_schedule("fill_drain", update_size=4),
                replicas=2, model_factory=factory,
            )

    def test_async_engine_keeps_per_replica_update_size(self):
        factory = MODELS[2]
        engine = make_pipeline_engine(
            "process", factory(seed=1), lr=LR, mode="pb", replicas=2,
            model_factory=factory,
        )
        assert isinstance(engine, ReplicatedPipelineRunner)
        assert engine.update_size == 1
