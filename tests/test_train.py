"""Trainers, evaluation, history records."""

import numpy as np
import pytest

from repro.core import DelayedSGDM, MitigationConfig
from repro.data import PadCropFlip
from repro.models import small_cnn
from repro.optim import SGDM, HE_CIFAR_REFERENCE, StepSchedule
from repro.train import PipelinedTrainer, Trainer, TrainingHistory, accuracy, evaluate


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_evaluate_restores_training_mode(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        m.train()
        evaluate(m, tiny_dataset.x_val, tiny_dataset.y_val)
        assert m.training

    def test_evaluate_matches_manual(self, tiny_dataset):
        from repro.tensor import Tensor, cross_entropy, no_grad

        m = small_cnn(num_classes=4, seed=0)
        loss, acc = evaluate(m, tiny_dataset.x_val, tiny_dataset.y_val,
                             batch_size=7)
        with no_grad():
            logits = m(Tensor(tiny_dataset.x_val))
            ref_loss = float(cross_entropy(logits, tiny_dataset.y_val).data)
        assert loss == pytest.approx(ref_loss, rel=1e-9)
        assert acc == pytest.approx(
            accuracy(logits.data, tiny_dataset.y_val), abs=1e-12
        )

    def test_evaluate_bit_exact_with_pre_vectorization_loop(
        self, tiny_dataset
    ):
        """The vectorized evaluate() (fused NumPy loss pass per batch)
        reproduces the historical Tensor-cross_entropy loop hex for hex
        at every chunking — the refactor changed zero bits."""
        from repro.tensor import Tensor, cross_entropy, no_grad

        def old_evaluate(model, x, y, batch_size):
            was_training = model.training
            n = x.shape[0]
            model.eval()
            losses = []
            correct = 0
            with no_grad():
                for start in range(0, n, batch_size):
                    xb = x[start : start + batch_size]
                    yb = y[start : start + batch_size]
                    logits = model(Tensor(xb))
                    losses.append(
                        float(cross_entropy(logits, yb).data) * len(yb)
                    )
                    correct += int((logits.data.argmax(axis=1) == yb).sum())
            model.train(was_training)
            return float(np.sum(losses) / n), correct / n

        m = small_cnn(num_classes=4, seed=0)
        x, y = tiny_dataset.x_val, tiny_dataset.y_val
        for bs in (1, 7, 64, x.shape[0]):
            new_loss, new_acc = evaluate(m, x, y, batch_size=bs)
            old_loss, old_acc = old_evaluate(m, x, y, batch_size=bs)
            assert new_loss.hex() == old_loss.hex()
            assert new_acc == old_acc

    def test_evaluate_rejects_nonpositive_batch_size(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            evaluate(m, tiny_dataset.x_val, tiny_dataset.y_val,
                     batch_size=0)

    def test_batch_nll_matches_tensor_cross_entropy(self, rng):
        from repro.tensor import cross_entropy
        from repro.train.metrics import batch_nll

        logits = rng.normal(size=(17, 5))
        labels = rng.integers(0, 5, size=17)
        nll = batch_nll(logits, labels)
        ref = float(cross_entropy(logits, labels).data)
        assert float(nll.mean()).hex() == ref.hex()

    def test_evaluate_empty_split_returns_nan_nan(self):
        """Regression: an empty split used to ZeroDivisionError on
        ``np.sum(losses) / n``; the no-data answer is (nan, nan)."""
        m = small_cnn(num_classes=4, seed=0)
        loss, acc = evaluate(
            m, np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=np.int64)
        )
        assert np.isnan(loss) and np.isnan(acc)

    def test_evaluate_empty_split_keeps_training_mode(self):
        m = small_cnn(num_classes=4, seed=0)
        m.train()
        evaluate(m, np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=np.int64))
        assert m.training

    def test_history_properties(self):
        h = TrainingHistory(label="x")
        h.record(10, 1.0, 1.2, 0.5)
        h.record(20, 0.8, 1.0, 0.7)
        assert h.final_val_acc == 0.7
        assert h.best_val_acc == 0.7
        assert h.final_train_loss == 0.8
        assert h.as_dict()["samples_seen"] == [10, 20]


class TestTrainer:
    def test_learns_above_chance(self, tiny_dataset):
        m = small_cnn(num_classes=4, widths=(8, 16), seed=0)
        opt = SGDM(m.parameters(), lr=0.05, momentum=0.9)
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0)
        hist = tr.train_epochs(8)
        assert hist.final_val_acc > 0.4  # chance = 0.25

    def test_delayed_optimizer_supported(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        opt = DelayedSGDM(m, lr=0.05, momentum=0.9, delay=2,
                          mitigation=MitigationConfig.sc(), consistent=True)
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0)
        hist = tr.train_epochs(2)
        assert len(hist.val_acc) == 2
        assert np.isfinite(hist.final_train_loss)

    def test_lr_schedule_applied(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        opt = SGDM(m.parameters(), lr=1.0)
        sched = StepSchedule(0.5, milestones=[0])  # 0.05 from step 0... 0.5*0.1
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0,
                     lr_schedule=sched)
        tr.train_epochs(1)
        assert opt.lr == pytest.approx(0.05)

    def test_augmentation_path(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        opt = SGDM(m.parameters(), lr=0.05, momentum=0.9)
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0,
                     augment=PadCropFlip(pad=1))
        hist = tr.train_epochs(1)
        assert np.isfinite(hist.final_train_loss)

    def test_reproducible_runs(self, tiny_dataset):
        accs = []
        for _ in range(2):
            m = small_cnn(num_classes=4, seed=0)
            opt = SGDM(m.parameters(), lr=0.05, momentum=0.9)
            tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=11)
            accs.append(tr.train_epochs(2).final_val_acc)
        assert accs[0] == accs[1]

    @pytest.mark.parametrize("eval_every", [0, -1])
    def test_eval_every_zero_raises_not_modulo_crash(
        self, tiny_dataset, eval_every
    ):
        """Regression: ``train_epochs(eval_every=0)`` used to die with
        ZeroDivisionError at the ``(epoch + 1) % eval_every`` check;
        now it is rejected up front with a clear message."""
        m = small_cnn(num_classes=4, seed=0)
        opt = SGDM(m.parameters(), lr=0.05)
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0)
        with pytest.raises(ValueError, match="eval_every"):
            tr.train_epochs(1, eval_every=eval_every)

    def test_eval_every_larger_than_epochs_evaluates_once(
        self, tiny_dataset
    ):
        m = small_cnn(num_classes=4, seed=0)
        opt = SGDM(m.parameters(), lr=0.05)
        tr = Trainer(m, opt, tiny_dataset, batch_size=16, seed=0)
        hist = tr.train_epochs(2, eval_every=100)
        assert len(hist.val_acc) == 1  # the always-on final evaluation


class TestPipelinedTrainer:
    def test_scales_hyperparams_to_batch_one(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, seed=0)
        assert pt.hyperparams.batch_size == 1
        assert pt.hyperparams.momentum == pytest.approx(0.9 ** (1 / 128))

    def test_trains_and_records(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(
            m, tiny_dataset, mitigation=MitigationConfig.lwp_plus_sc(), seed=0
        )
        hist = pt.train_epochs(1)
        assert len(hist.val_acc) == 1
        assert hist.label == "PB+LWPv_D+SC_D"

    def test_train_samples_partial_epoch(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, seed=0)
        hist = pt.train_samples(50)
        assert hist.samples_seen == [50]

    def test_eval_every_zero_raises(self, tiny_dataset):
        """Same regression pin as the batch trainer: the pipelined
        trainer validates eval_every instead of modulo-crashing."""
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, seed=0)
        with pytest.raises(ValueError, match="eval_every"):
            pt.train_epochs(1, eval_every=0)

    def test_train_samples_rejects_nonpositive(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, seed=0)
        with pytest.raises(ValueError, match="num_samples"):
            pt.train_samples(0)

    def test_multi_epoch_stream_is_lazy(self, tiny_dataset):
        """The trainers consume the resumable lazy stream: sequences
        match the eager helper for the same trainer seed."""
        from repro.data.loader import sample_stream
        from repro.utils.rng import derive_seed, new_rng

        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, seed=4)
        captured = {}
        orig_train = pt.executor.train

        def spy(xs, ys):
            captured.setdefault("chunks", []).append((xs, ys))
            return orig_train(xs, ys)

        pt.executor.train = spy
        pt.train_epochs(2)
        rng = new_rng(derive_seed(4, "pb_trainer"))
        e_xs, e_ys = sample_stream(
            tiny_dataset.x_train, tiny_dataset.y_train, 2, rng
        )
        got_xs = np.concatenate([c[0] for c in captured["chunks"]])
        got_ys = np.concatenate([c[1] for c in captured["chunks"]])
        np.testing.assert_array_equal(e_xs, got_xs)
        np.testing.assert_array_equal(e_ys, got_ys)

    def test_fill_drain_mode_uses_reference_scaling(self, tiny_dataset):
        m = small_cnn(num_classes=4, seed=0)
        pt = PipelinedTrainer(m, tiny_dataset, mode="fill_drain",
                              update_size=32, seed=0)
        assert pt.hyperparams.batch_size == 32
