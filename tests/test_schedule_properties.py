"""Semantic properties of the four pipeline schedules.

* ``pb`` — forward weight versions follow eq. 5, and the whole run is
  *exactly* the flat delay simulator with the pipeline profile and
  ``consistent=False`` (forward stale, backward current).
* ``1f1b`` — same staleness, zero inconsistency: equals the flat
  simulator with ``consistent=True`` (weight stashing), and every
  sample's backward reuses its forward weights.
* ``gpipe`` — identical to sequential mini-batch SGDM for any micro-batch
  size dividing the update (the Figure-16 check extended to micro-batched
  packets), with slot utilization ``M/(M + 2S - 2)``.
* ``fill_drain`` — covered by the Figure-16 tests and the goldens; here
  only its equivalence with ``gpipe`` at micro-batch one is asserted (see
  also the bit-exact version in ``test_schedules_golden.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delayed_sgd import DelayedSGDM, delayed_train_step
from repro.models import resnet_tiny, small_cnn
from repro.optim import SGDM
from repro.pipeline import (
    PipelineExecutor,
    fill_drain_utilization,
    gpipe_utilization,
    make_schedule,
    pipeline_delay_profile,
)
from repro.tensor import Tensor, cross_entropy


@pytest.fixture
def stream(rng):
    return rng.normal(size=(12, 3, 8, 8)), rng.integers(0, 10, size=12)


def max_param_diff(m1, m2):
    return max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )


def _run_flat_simulator(model, X, Y, consistent: bool):
    """Per-sample DelayedSGDM with the pipeline's staleness profile."""
    profile = pipeline_delay_profile(model, sim_batch_size=1)
    opt = DelayedSGDM(
        model, lr=0.05, momentum=0.9, weight_decay=1e-4,
        delay=profile, consistent=consistent,
    )
    return [
        delayed_train_step(opt, model, X[i : i + 1], Y[i : i + 1])
        for i in range(X.shape[0])
    ]


class TestPBStaleness:
    def test_version_lag_follows_eq5(self, stream):
        """Forward version of sample i at stage s is max(0, i - 2(S-1-s));
        backward sees the current weights (version i)."""
        X, Y = stream
        m = small_cnn(seed=5)
        ex = PipelineExecutor(
            m, lr=0.01, momentum=0.9, mode="pb", record_versions=True
        )
        ex.train(X, Y)
        S = m.num_stages
        for s, stage in enumerate(ex.stages):
            if stage.spec.kind != "compute":
                continue
            D = 2 * (S - 1 - s)
            assert stage.version_trace
            for sid, v_fwd, v_bwd in stage.version_trace:
                assert v_fwd == max(0, sid - D)
                assert v_bwd == sid

    def test_pb_equals_flat_simulator_forward_delay_only(self, stream):
        """The executor's pb schedule IS the Appendix-G.2 simulator with
        the eq.-5 profile and consistent=False — losses and final weights
        match to float round-off."""
        X, Y = stream
        m1 = small_cnn(seed=5)
        m2 = small_cnn(seed=5)
        stats = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4, mode="pb"
        ).train(X, Y)
        losses_flat = _run_flat_simulator(m2, X, Y, consistent=False)
        np.testing.assert_allclose(stats.losses, losses_flat, atol=1e-9)
        assert max_param_diff(m1, m2) < 1e-9


class TestOneFOneB:
    def test_zero_inconsistency_equals_consistent_simulator(self, stream):
        """1f1b (PipeDream weight stashing) == flat simulator with
        consistent=True: forward staleness unchanged, but forward and
        backward of each sample share the same weights."""
        X, Y = stream
        m1 = small_cnn(seed=5)
        m2 = small_cnn(seed=5)
        stats = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4, mode="1f1b"
        ).train(X, Y)
        losses_flat = _run_flat_simulator(m2, X, Y, consistent=True)
        np.testing.assert_allclose(stats.losses, losses_flat, atol=1e-9)
        assert max_param_diff(m1, m2) < 1e-9

    def test_forward_staleness_still_follows_eq5(self, stream):
        """Stashing removes inconsistency, not staleness."""
        X, Y = stream
        m = small_cnn(seed=5)
        ex = PipelineExecutor(
            m, lr=0.01, momentum=0.9, mode="1f1b", record_versions=True
        )
        ex.train(X, Y)
        S = m.num_stages
        for s, stage in enumerate(ex.stages):
            if stage.spec.kind != "compute":
                continue
            assert stage.always_stash
            D = 2 * (S - 1 - s)
            for sid, v_fwd, _ in stage.version_trace:
                assert v_fwd == max(0, sid - D)

    def test_differs_from_pb(self, stream):
        X, Y = stream
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        PipelineExecutor(m1, lr=0.05, momentum=0.9, mode="pb").train(X, Y)
        PipelineExecutor(m2, lr=0.05, momentum=0.9, mode="1f1b").train(X, Y)
        assert max_param_diff(m1, m2) > 1e-12

    def test_stash_drains(self, stream):
        X, Y = stream
        m = resnet_tiny(widths=(4, 8, 8), seed=0)
        ex = PipelineExecutor(m, lr=0.01, momentum=0.9, mode="1f1b")
        ex.train(X, Y)
        assert all(s.in_flight == 0 for s in ex.stages)


class TestGPipe:
    """Extends the Figure-16 executor validation to micro-batched packets."""

    @pytest.mark.parametrize("micro", [1, 2, 4])
    def test_equals_sequential_minibatch_sgdm(self, rng, micro):
        n, N = 16, 8
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        PipelineExecutor(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4,
            mode="gpipe", update_size=N, micro_batch_size=micro,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        for b in range(n // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-8

    def test_skip_path_topology(self, rng):
        """Micro-batched packets must route the residual skip stack
        exactly like per-sample payloads do."""
        n, N, micro = 12, 6, 3
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m1 = resnet_tiny(widths=(4, 8, 8), seed=2)
        m2 = resnet_tiny(widths=(4, 8, 8), seed=2)
        PipelineExecutor(
            m1, lr=0.02, momentum=0.9, mode="gpipe",
            update_size=N, micro_batch_size=micro,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.02, momentum=0.9)
        for b in range(n // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-8

    def test_tail_micro_batch_and_tail_batch(self, rng):
        """n not divisible by N, N not divisible by B: tail packets carry
        the remainder and the tail batch averages over its own size."""
        n, N, micro = 11, 4, 3  # batches 4,4,3; packets 3+1 / 3+1 / 3
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m1, m2 = small_cnn(seed=7), small_cnn(seed=7)
        ex = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="gpipe",
            update_size=N, micro_batch_size=micro,
        )
        stats = ex.train(X, Y)
        assert stats.samples == n
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9)
        for start in range(0, n, N):
            xb, yb = X[start : start + N], Y[start : start + N]
            loss = cross_entropy(m2(Tensor(xb)), yb)
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-8

    @pytest.mark.parametrize("micro", [2, 4])
    def test_utilization_closed_form(self, rng, micro):
        """Sample-level utilization equals the micro-batch eq. 1 form
        M/(M + 2S - 2) when B divides N and N divides n."""
        n, N = 16, 8
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m = small_cnn(seed=5)
        stats = PipelineExecutor(
            m, lr=0.01, mode="gpipe", update_size=N, micro_batch_size=micro
        ).train(X, Y)
        M = N // micro
        assert stats.utilization == pytest.approx(
            gpipe_utilization(m.num_stages, M), abs=1e-9
        )
        # fewer, fatter packets: micro-batching shortens the run
        per_sample = PipelineExecutor(
            small_cnn(seed=5), lr=0.01, mode="fill_drain", update_size=N
        ).train(X, Y)
        assert stats.time_steps < per_sample.time_steps

    def test_micro_batch_counts_samples_not_ops(self, rng):
        """The utilization fix: a batched op of B samples counts B sample
        transformations against a capacity scaled by B — not one op."""
        n, N, micro = 8, 8, 4
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m = small_cnn(seed=5)
        stats = PipelineExecutor(
            m, lr=0.01, mode="gpipe", update_size=N, micro_batch_size=micro
        ).train(X, Y)
        S = m.num_stages
        assert stats.forward_ops == S * (n // micro)
        assert stats.forward_samples == S * n
        assert stats.backward_samples == S * n
        assert stats.micro_batch == micro
        # the old formula (ops / 2ST) would claim M/(M+2S-2) only by
        # accident of B dividing everything; the sample form is exact
        assert stats.utilization == pytest.approx(
            (2 * S * n) / (2 * S * stats.time_steps * micro), abs=1e-12
        )


class TestScheduleFactory:
    def test_names_round_trip(self):
        from repro.pipeline import SCHEDULE_NAMES

        for name in SCHEDULE_NAMES:
            assert make_schedule(name, update_size=2).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_schedule("pipedream-2bw")

    def test_bad_sizes_raise(self):
        with pytest.raises(ValueError):
            make_schedule("fill_drain", update_size=0)
        with pytest.raises(ValueError):
            make_schedule("gpipe", update_size=4, micro_batch_size=0)

    def test_gpipe_update_never_below_micro_batch(self):
        # update_size=1 is the "unset" sentinel: one micro-batch/update
        sched = make_schedule("gpipe", update_size=1, micro_batch_size=8)
        assert sched.update_size == 8
        assert sched.micro_batch == 8
        # an explicitly inconsistent configuration is rejected
        with pytest.raises(ValueError):
            make_schedule("gpipe", update_size=2, micro_batch_size=8)

    def test_per_gradient_schedules_have_update_size_one(self):
        assert make_schedule("pb", update_size=64).update_size == 1
        assert make_schedule("1f1b", update_size=64).update_size == 1

    @pytest.mark.parametrize(
        "mode,kw",
        [
            ("pb", {}),
            ("1f1b", {}),
            ("fill_drain", dict(update_size=4)),
            ("gpipe", dict(update_size=4, micro_batch_size=3)),
            ("gpipe", dict(update_size=6, micro_batch_size=2)),
        ],
    )
    def test_drain_span_matches_executor(self, rng, mode, kw):
        """Schedule.drain_span(n, S) is exact: it equals the executor's
        observed time_steps for a full run, including partial tail
        batches and tail micro-batches."""
        for n in (1, 7, 10, 12):
            X = rng.normal(size=(n, 3, 8, 8))
            Y = rng.integers(0, 10, size=n)
            m = small_cnn(seed=5)
            sched = make_schedule(mode, **kw)
            stats = PipelineExecutor(m, lr=0.01, schedule=sched).train(X, Y)
            assert sched.drain_span(n, m.num_stages) == stats.time_steps, (
                mode, kw, n,
            )

    def test_fill_drain_per_slot_utilization_unchanged(self, rng):
        """Per-sample schedules keep the original utilization numbers."""
        n, N = 16, 4
        X = rng.normal(size=(n, 3, 8, 8))
        Y = rng.integers(0, 10, size=n)
        m = small_cnn(seed=5)
        stats = PipelineExecutor(
            m, lr=0.01, mode="fill_drain", update_size=N
        ).train(X, Y)
        assert stats.utilization == pytest.approx(
            fill_drain_utilization(m.num_stages, N), abs=1e-9
        )
