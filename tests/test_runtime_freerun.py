"""Semantic properties of the free-running threaded runtime.

Without the lockstep barrier the pb/1f1b trajectories depend on thread
timing, so bit-exactness is off the table; what the runtime *does*
guarantee — and what these tests pin — is:

* **eq. 5 as an inequality.**  The per-stage in-flight cap
  (``D_s + 1`` packets, PipeDream's bound) means the forward pass of
  sample ``i`` at stage ``s`` sees at least ``max(0, i - 2(S-1-s))``
  and at most ``i`` updates: never *staler* than the discrete-time
  model, possibly fresher.  Backward still sees exactly ``i`` updates
  (per-gradient schedules update once per backward, FIFO).
* **occupancy accounting.**  The measured ``RuntimeStats`` busy-step
  counts per stage equal the modeled occupancy-grid row totals of
  :mod:`repro.pipeline.occupancy` — the wall-clock runtime does exactly
  the work the paper's timing model says it does, no more, no less.
* **synchronous schedules stay exact.**  fill_drain/gpipe apply their
  averaged update only after the batch fully drains, when the pipeline
  is empty — so their update math is identical to sequential mini-batch
  SGDM even free-running (only mid-flight loss *logging* could differ,
  and with batch-gated injection it does not).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.simple import small_cnn
from repro.optim import SGDM
from repro.pipeline import ConcurrentPipelineRunner
from repro.pipeline.occupancy import (
    BWD,
    FWD,
    fill_drain_occupancy,
    gpipe_occupancy,
    pb_occupancy,
)
from repro.tensor import Tensor, cross_entropy

pytestmark = pytest.mark.concurrency


def _stream(n: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 10, size=n)


def max_param_diff(m1, m2):
    return max(
        float(np.abs(a.data - b.data).max())
        for a, b in zip(m1.parameters(), m2.parameters())
    )


class TestEq5Inequality:
    @pytest.mark.parametrize("jitter_seed", [0, 1, 2])
    @pytest.mark.parametrize("mode", ["pb", "1f1b"])
    def test_forward_lag_bounded_by_pipeline_delay(self, mode, jitter_seed):
        """max(0, i - 2(S-1-s)) <= v_fwd(i) <= i at every compute stage,
        under randomized worker interleavings."""
        n = 24
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(
            m, lr=0.01, momentum=0.9, mode=mode, lockstep=False,
            record_versions=True, jitter=0.001, jitter_seed=jitter_seed,
        )
        runner.train(X, Y)
        S = m.num_stages
        for s, stage in enumerate(runner.stages):
            if stage.spec.kind != "compute":
                continue
            D = 2 * (S - 1 - s)
            assert len(stage.version_trace) == n
            for sid, v_fwd, v_bwd in stage.version_trace:
                assert max(0, sid - D) <= v_fwd <= sid, (
                    f"stage {s}: sample {sid} saw version {v_fwd}, "
                    f"outside [{max(0, sid - D)}, {sid}]"
                )
                # per-gradient schedules: backward of sample i is always
                # the (i+1)-th event at the stage, so it sees i updates
                assert v_bwd == sid

    def test_last_stage_has_zero_lag(self):
        """D_{S-1} = 0: the stage before the loss is always current —
        the in-flight cap forces strict alternation there."""
        n = 16
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(
            m, lr=0.01, momentum=0.9, mode="pb", lockstep=False,
            record_versions=True,
        )
        runner.train(X, Y)
        compute = [st for st in runner.stages if st.spec.kind == "compute"]
        # small_cnn's last compute stage is followed only by zero-delay
        # pool/fc/loss plumbing; check the deepest *parametrized* stage
        # whose delay is smallest
        deepest = compute[-1]
        D = deepest.delay
        for sid, v_fwd, _ in deepest.version_trace:
            assert v_fwd >= max(0, sid - D)


class TestOccupancyAccounting:
    def test_pb_busy_steps_match_occupancy_rows(self):
        n = 20
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(m, lr=0.01, mode="pb",
                                          lockstep=False)
        stats = runner.train(X, Y)
        occ = pb_occupancy(m.num_stages, n)
        for s, st in enumerate(stats.runtime.stages):
            assert st.forward_ops == int(
                np.count_nonzero(occ.grid[s] & FWD)
            )
            assert st.backward_ops == int(
                np.count_nonzero(occ.grid[s] & BWD)
            )

    def test_gpipe_busy_steps_match_occupancy_rows(self):
        """Micro-batch granularity: the runtime's packet ops equal the
        grid's micro-batch cells."""
        n, N, B = 16, 8, 4
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(
            m, lr=0.01, mode="gpipe", update_size=N, micro_batch_size=B,
            lockstep=False,
        )
        stats = runner.train(X, Y)
        occ = gpipe_occupancy(m.num_stages, N // B, num_batches=n // N)
        for s, st in enumerate(stats.runtime.stages):
            assert st.forward_ops == int(
                np.count_nonzero(occ.grid[s] & FWD)
            )
            assert st.backward_ops == int(
                np.count_nonzero(occ.grid[s] & BWD)
            )

    def test_fill_drain_busy_steps_match_occupancy_rows(self):
        n, N = 12, 4
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(
            m, lr=0.01, mode="fill_drain", update_size=N, lockstep=False
        )
        stats = runner.train(X, Y)
        occ = fill_drain_occupancy(m.num_stages, N, num_batches=n // N)
        for s, st in enumerate(stats.runtime.stages):
            assert st.forward_ops == int(
                np.count_nonzero(occ.grid[s] & FWD)
            )
            assert st.backward_ops == int(
                np.count_nonzero(occ.grid[s] & BWD)
            )

    def test_runtime_stats_shape(self):
        n = 10
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        runner = ConcurrentPipelineRunner(m, lr=0.01, mode="pb",
                                          lockstep=False)
        stats = runner.train(X, Y)
        rt = stats.runtime
        assert rt.mode == "free_running"
        assert len(rt.stages) == m.num_stages
        assert rt.wall_seconds > 0.0
        assert rt.busy_seconds > 0.0
        for s in range(m.num_stages):
            assert 0.0 <= rt.busy_fraction(s) <= 1.0
            assert rt.idle_seconds(s) >= 0.0
        rows = rt.summary_rows()
        assert len(rows) == m.num_stages
        assert {"stage", "fwd_ops", "bwd_ops", "busy_s", "busy_frac"} <= set(
            rows[0]
        )


class TestSynchronousSchedulesStayExact:
    @pytest.mark.parametrize("jitter_seed", [0, 1])
    def test_free_gpipe_equals_sequential_sgdm(self, jitter_seed):
        n, N, B = 16, 8, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        ConcurrentPipelineRunner(
            m1, lr=0.05, momentum=0.9, weight_decay=1e-4, mode="gpipe",
            update_size=N, micro_batch_size=B, lockstep=False,
            jitter=0.001, jitter_seed=jitter_seed,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        for b in range(n // N):
            loss = cross_entropy(
                m2(Tensor(X[b * N : (b + 1) * N])), Y[b * N : (b + 1) * N]
            )
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-8

    def test_free_fill_drain_tail_batch(self):
        """n not divisible by N: the tail still averages over its own
        size when free-running."""
        n, N = 10, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=7), small_cnn(seed=7)
        ConcurrentPipelineRunner(
            m1, lr=0.05, momentum=0.9, mode="fill_drain", update_size=N,
            lockstep=False,
        ).train(X, Y)
        ref = SGDM(m2.parameters(), lr=0.05, momentum=0.9)
        for start in range(0, n, N):
            xb, yb = X[start : start + N], Y[start : start + N]
            loss = cross_entropy(m2(Tensor(xb)), yb)
            ref.zero_grad()
            loss.backward()
            ref.step()
        assert max_param_diff(m1, m2) < 1e-10

    def test_free_gpipe_losses_bit_match_simulator(self):
        """With batch-gated injection the synchronous schedules compute
        every loss on fully-flushed weights, so even the recorded losses
        are reproducible free-running."""
        from repro.pipeline import PipelineExecutor

        n, N, B = 16, 8, 4
        X, Y = _stream(n)
        m1, m2 = small_cnn(seed=5), small_cnn(seed=5)
        sim = PipelineExecutor(
            m1, lr=0.05, momentum=0.9, mode="gpipe", update_size=N,
            micro_batch_size=B,
        ).train(X, Y)
        free = ConcurrentPipelineRunner(
            m2, lr=0.05, momentum=0.9, mode="gpipe", update_size=N,
            micro_batch_size=B, lockstep=False,
        ).train(X, Y)
        assert np.array_equal(sim.losses, free.losses)


class TestModeledTimeSteps:
    def test_free_running_reports_drain_span(self):
        """Free-running has no global clock; ``time_steps`` reports the
        modeled span (identical to what lockstep measures) so
        utilization stays comparable across engines."""
        from repro.pipeline import make_schedule

        n = 14
        X, Y = _stream(n)
        m = small_cnn(seed=5)
        sched = make_schedule("pb")
        runner = ConcurrentPipelineRunner(m, lr=0.01, schedule=sched,
                                          lockstep=False)
        stats = runner.train(X, Y)
        assert stats.time_steps == sched.drain_span(n, m.num_stages)
