"""Dynamic micro-batcher + serving stats: coalescing, deadlines,
bounded admission, explicit backpressure, monotone ids."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import DynamicBatcher, Overloaded
from repro.serve.stats import RequestTiming, ServingStats


def _x(i: int) -> np.ndarray:
    return np.full((2,), float(i))


class TestCoalescing:
    def test_full_batch_dispatches_immediately(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=64)
        for i in range(4):
            b.submit(_x(i))
        t0 = time.monotonic()
        batch = b.next_batch(timeout=5.0)
        assert time.monotonic() - t0 < 1.0  # did not wait for max_wait
        assert [r.request_id for r in batch] == [0, 1, 2, 3]

    def test_deadline_flushes_partial_batch(self):
        b = DynamicBatcher(max_batch=8, max_wait=0.01, max_queue=64)
        b.submit(_x(0))
        b.submit(_x(1))
        batch = b.next_batch(timeout=5.0)
        assert len(batch) == 2  # partial, released by the deadline

    def test_zero_wait_means_no_coalescing_delay(self):
        b = DynamicBatcher(max_batch=8, max_wait=0.0, max_queue=64)
        b.submit(_x(0))
        batch = b.next_batch(timeout=1.0)
        assert len(batch) == 1

    def test_oversize_queue_split_into_batches(self):
        b = DynamicBatcher(max_batch=3, max_wait=0.0, max_queue=64)
        for i in range(7):
            b.submit(_x(i))
        sizes = []
        ids = []
        while True:
            batch = b.next_batch(timeout=0.05)
            if not batch:
                break
            sizes.append(len(batch))
            ids.extend(r.request_id for r in batch)
        assert sizes == [3, 3, 1]
        assert ids == sorted(ids)  # FIFO slices => monotone ids

    def test_timeout_returns_empty(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=4)
        t0 = time.monotonic()
        assert b.next_batch(timeout=0.05) == []
        assert time.monotonic() - t0 < 1.0


class TestBackpressure:
    def test_overloaded_at_max_queue(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=3)
        for i in range(3):
            b.submit(_x(i))
        with pytest.raises(Overloaded, match="full"):
            b.submit(_x(99))
        assert b.rejected == 1
        assert b.admitted == 3

    def test_queue_reopens_after_drain(self):
        b = DynamicBatcher(max_batch=2, max_wait=0.0, max_queue=2)
        b.submit(_x(0))
        b.submit(_x(1))
        with pytest.raises(Overloaded):
            b.submit(_x(2))
        assert len(b.next_batch(timeout=0.1)) == 2
        b.submit(_x(3))  # admitted again — backpressure, not a latch
        assert b.pending == 1

    def test_closed_rejects_submits_but_drains_queue(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=8)
        b.submit(_x(0))
        b.close()
        with pytest.raises(Overloaded, match="shutting down"):
            b.submit(_x(1))
        # close() never drops: the queued request still dispatches
        batch = b.next_batch(timeout=0.5)
        assert [r.request_id for r in batch] == [0]
        assert b.next_batch(timeout=0.0) == []

    def test_ids_monotone_across_threads(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=1000)
        seen = []
        lock = threading.Lock()

        def submit_some():
            for _ in range(50):
                req = b.submit(_x(0))
                with lock:
                    seen.append(req.request_id)

        threads = [threading.Thread(target=submit_some) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(200))  # unique, gap-free

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(max_queue=0)


class TestServingStats:
    def _timing(self, rid: int, latency: float) -> RequestTiming:
        return RequestTiming(
            request_id=rid,
            queue_wait=latency / 4,
            pipeline_time=3 * latency / 4,
            latency=latency,
            batch_size=2,
        )

    def test_percentiles(self):
        stats = ServingStats()
        now = time.monotonic()
        for i, lat in enumerate([0.01] * 98 + [0.5, 1.0]):
            stats.record(self._timing(i, lat), now + i * 1e-3)
        snap = stats.snapshot()
        assert snap["completed"] == 100
        assert snap["latency_s"]["p50"] == pytest.approx(0.01)
        assert snap["latency_s"]["p99"] >= 0.5
        assert snap["queue_wait_s"]["p50"] == pytest.approx(0.0025)
        assert snap["mean_batch_size"] == 2.0
        assert snap["throughput_rps"] is not None

    def test_empty_snapshot(self):
        snap = ServingStats().snapshot()
        assert snap["completed"] == 0
        assert snap["latency_s"]["p99"] is None
        assert snap["throughput_rps"] is None

    def test_counters(self):
        stats = ServingStats()
        stats.record_rejected()
        stats.record_rejected()
        stats.record_failed()
        snap = stats.snapshot()
        assert snap["rejected"] == 2
        assert snap["failed"] == 1

    def test_timings_window_is_bounded(self):
        """A long-lived server keeps cumulative counters but only a
        sliding window of per-request timings — memory stays bounded
        and the truncation is visible in the snapshot."""
        stats = ServingStats(window=10)
        now = time.monotonic()
        for i in range(25):
            stats.record(self._timing(i, 0.01 * (i + 1)), now + i)
        snap = stats.snapshot()
        assert snap["completed"] == 25  # cumulative, not truncated
        assert snap["window"] == 10 and snap["window_filled"] == 10
        retained = [t.request_id for t in stats.timings()]
        assert retained == list(range(15, 25))  # most recent only
        # percentiles cover the window, not the evicted history
        assert snap["latency_s"]["p50"] == pytest.approx(0.205)
