"""Dynamic micro-batcher + serving stats: coalescing, deadlines,
bounded admission, explicit backpressure, monotone ids."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import DynamicBatcher, Overloaded
from repro.serve.stats import RequestTiming, ServingStats


def _x(i: int) -> np.ndarray:
    return np.full((2,), float(i))


class TestCoalescing:
    def test_full_batch_dispatches_immediately(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=64)
        for i in range(4):
            b.submit(_x(i))
        t0 = time.monotonic()
        batch = b.next_batch(timeout=5.0)
        assert time.monotonic() - t0 < 1.0  # did not wait for max_wait
        assert [r.request_id for r in batch] == [0, 1, 2, 3]

    def test_deadline_flushes_partial_batch(self):
        b = DynamicBatcher(max_batch=8, max_wait=0.01, max_queue=64)
        b.submit(_x(0))
        b.submit(_x(1))
        batch = b.next_batch(timeout=5.0)
        assert len(batch) == 2  # partial, released by the deadline

    def test_zero_wait_means_no_coalescing_delay(self):
        b = DynamicBatcher(max_batch=8, max_wait=0.0, max_queue=64)
        b.submit(_x(0))
        batch = b.next_batch(timeout=1.0)
        assert len(batch) == 1

    def test_oversize_queue_split_into_batches(self):
        b = DynamicBatcher(max_batch=3, max_wait=0.0, max_queue=64)
        for i in range(7):
            b.submit(_x(i))
        sizes = []
        ids = []
        while True:
            batch = b.next_batch(timeout=0.05)
            if not batch:
                break
            sizes.append(len(batch))
            ids.extend(r.request_id for r in batch)
        assert sizes == [3, 3, 1]
        assert ids == sorted(ids)  # FIFO slices => monotone ids

    def test_timeout_returns_empty(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=4)
        t0 = time.monotonic()
        assert b.next_batch(timeout=0.05) == []
        assert time.monotonic() - t0 < 1.0


class TestBackpressure:
    def test_overloaded_at_max_queue(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=3)
        for i in range(3):
            b.submit(_x(i))
        with pytest.raises(Overloaded, match="full"):
            b.submit(_x(99))
        assert b.rejected == 1
        assert b.admitted == 3

    def test_queue_reopens_after_drain(self):
        b = DynamicBatcher(max_batch=2, max_wait=0.0, max_queue=2)
        b.submit(_x(0))
        b.submit(_x(1))
        with pytest.raises(Overloaded):
            b.submit(_x(2))
        assert len(b.next_batch(timeout=0.1)) == 2
        b.submit(_x(3))  # admitted again — backpressure, not a latch
        assert b.pending == 1

    def test_closed_rejects_submits_but_drains_queue(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=8)
        b.submit(_x(0))
        b.close()
        with pytest.raises(Overloaded, match="shutting down"):
            b.submit(_x(1))
        # close() never drops: the queued request still dispatches
        batch = b.next_batch(timeout=0.5)
        assert [r.request_id for r in batch] == [0]
        assert b.next_batch(timeout=0.0) == []

    def test_ids_monotone_across_threads(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=1000)
        seen = []
        lock = threading.Lock()

        def submit_some():
            for _ in range(50):
                req = b.submit(_x(0))
                with lock:
                    seen.append(req.request_id)

        threads = [threading.Thread(target=submit_some) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(200))  # unique, gap-free

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(max_queue=0)
        b = DynamicBatcher()
        with pytest.raises(ValueError):
            b.submit(_x(0), max_wait=-0.5)


class TestPerRequestDeadlines:
    """Per-request ``max_wait`` overrides: the fleet's SLO-class slack
    pricing rides on the flush point being the *minimum* deadline over
    the queue, not the oldest request's age."""

    def test_zero_wait_request_flushes_queued_batch_traffic(self):
        """An interactive request (max_wait=0) arriving behind
        long-deadline batch requests forces the whole packet out
        immediately — batch yields its coalescing slack."""
        b = DynamicBatcher(max_batch=8, max_wait=60.0, max_queue=64)
        b.submit(_x(0), slo_class="batch")
        b.submit(_x(1), slo_class="batch")
        b.submit(_x(2), max_wait=0.0, slo_class="interactive")
        t0 = time.monotonic()
        batch = b.next_batch(timeout=5.0)
        assert time.monotonic() - t0 < 1.0  # did not wait for max_wait
        # ... and it pulled the earlier batch requests along, FIFO
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert [r.slo_class for r in batch] == [
            "batch", "batch", "interactive",
        ]

    def test_long_override_defers_flush(self):
        """A request may also *grant* more slack than the batcher
        default; alone in the queue it is not flushed early."""
        b = DynamicBatcher(max_batch=8, max_wait=0.0, max_queue=64)
        b.submit(_x(0), max_wait=60.0)
        assert b.next_batch(timeout=0.05) == []  # still coalescing
        b.submit(_x(1))  # default max_wait=0 => flush now
        batch = b.next_batch(timeout=5.0)
        assert [r.request_id for r in batch] == [0, 1]


class TestDraining:
    def test_draining_rejects_submits_but_keeps_dispatching(self):
        b = DynamicBatcher(max_batch=4, max_wait=60.0, max_queue=8)
        b.submit(_x(0))
        b.set_draining(True)
        assert b.draining
        with pytest.raises(Overloaded, match="draining"):
            b.submit(_x(1))
        # already-admitted work still dispatches — draining gates
        # admission only, never the consumer side
        b.close()
        assert [r.request_id for r in b.next_batch(timeout=0.5)] == [0]

    def test_draining_is_reversible(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=8)
        b.set_draining(True)
        with pytest.raises(Overloaded):
            b.submit(_x(0))
        b.set_draining(False)
        req = b.submit(_x(0))  # admission re-opened
        assert req.request_id == 0  # the rejected submit burned no id
        assert not b.draining


class TestShutdownRaces:
    """submit racing close: every id is either admitted exactly once
    (and dispatched exactly once) or rejected loudly — never lost,
    never duplicated."""

    def test_submit_racing_close_never_loses_or_duplicates(self):
        b = DynamicBatcher(max_batch=4, max_wait=0.0, max_queue=10_000)
        admitted: list[int] = []
        rejected = [0]
        lock = threading.Lock()
        start = threading.Event()

        def submitter():
            start.wait()
            for _ in range(200):
                try:
                    req = b.submit(_x(0))
                except Overloaded:
                    with lock:
                        rejected[0] += 1
                else:
                    with lock:
                        admitted.append(req.request_id)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        start.set()
        time.sleep(0.002)  # let some submits land before the close
        b.close()
        for t in threads:
            t.join()
        # drain everything the batcher admitted
        dispatched: list[int] = []
        while True:
            batch = b.next_batch(timeout=0.0)
            if not batch:
                break
            dispatched.extend(r.request_id for r in batch)
        assert sorted(admitted) == list(range(len(admitted)))  # gap-free
        assert len(admitted) + rejected[0] == 800  # every submit accounted
        assert b.admitted == len(admitted)
        assert b.rejected == rejected[0]
        # ids admitted before the close that were not drained would be
        # lost requests; ids appearing twice would be duplicates
        assert dispatched == sorted(admitted)

    def test_zero_timeout_drain_after_close_is_fifo(self):
        """``next_batch(timeout=0.0)`` after close never blocks and
        returns the backlog as consecutive FIFO slices."""
        b = DynamicBatcher(max_batch=3, max_wait=60.0, max_queue=64)
        for i in range(8):
            b.submit(_x(i))
        b.close()
        slices = []
        t0 = time.monotonic()
        while True:
            batch = b.next_batch(timeout=0.0)
            if not batch:
                break
            slices.append([r.request_id for r in batch])
        assert time.monotonic() - t0 < 1.0  # non-blocking drain
        assert slices == [[0, 1, 2], [3, 4, 5], [6, 7]]
        assert b.next_batch(timeout=0.0) == []  # stays empty, stays fast


class TestServingStats:
    def _timing(self, rid: int, latency: float) -> RequestTiming:
        return RequestTiming(
            request_id=rid,
            queue_wait=latency / 4,
            pipeline_time=3 * latency / 4,
            latency=latency,
            batch_size=2,
        )

    def test_percentiles(self):
        stats = ServingStats()
        now = time.monotonic()
        for i, lat in enumerate([0.01] * 98 + [0.5, 1.0]):
            stats.record(self._timing(i, lat), now + i * 1e-3)
        snap = stats.snapshot()
        assert snap["completed"] == 100
        assert snap["latency_s"]["p50"] == pytest.approx(0.01)
        assert snap["latency_s"]["p99"] >= 0.5
        assert snap["queue_wait_s"]["p50"] == pytest.approx(0.0025)
        assert snap["mean_batch_size"] == 2.0
        assert snap["throughput_rps"] is not None

    def test_empty_snapshot(self):
        snap = ServingStats().snapshot()
        assert snap["completed"] == 0
        assert snap["latency_s"]["p99"] is None
        assert snap["throughput_rps"] is None

    def test_counters(self):
        stats = ServingStats()
        stats.record_rejected()
        stats.record_rejected()
        stats.record_failed()
        snap = stats.snapshot()
        assert snap["rejected"] == 2
        assert snap["failed"] == 1

    def test_gauges_need_a_source(self):
        """Snapshot gauges are ``None`` until an owning server wires a
        gauge source, then report its live readings."""
        stats = ServingStats()
        snap = stats.snapshot()
        assert snap["pending"] is None and snap["in_flight"] is None
        readings = {"pending": 3, "in_flight": 2}
        stats.set_gauge_source(lambda: dict(readings))
        snap = stats.snapshot()
        assert snap["pending"] == 3 and snap["in_flight"] == 2
        readings["pending"] = 7  # gauges are instantaneous, not cached
        assert stats.snapshot()["pending"] == 7

    def test_per_class_accounting(self):
        stats = ServingStats()
        now = time.monotonic()
        for i in range(6):
            t = self._timing(i, 0.01 if i % 2 else 0.2)
            t.slo_class = "interactive" if i % 2 else "batch"
            stats.record(t, now + i * 1e-3)
        stats.record_rejected("interactive")
        stats.record_rejected("interactive")
        stats.record_rejected("batch")
        stats.record_rejected()  # untagged: counted, not classed
        snap = stats.snapshot()
        assert snap["completed_by_class"] == {"batch": 3, "interactive": 3}
        assert snap["rejected_by_class"] == {"batch": 1, "interactive": 2}
        assert snap["rejected"] == 4
        per = snap["per_class"]
        assert per["interactive"]["latency_s"]["p50"] == pytest.approx(0.01)
        assert per["batch"]["latency_s"]["p50"] == pytest.approx(0.2)
        assert per["batch"]["window_filled"] == 3

    def test_recent_queue_wait_p95(self):
        stats = ServingStats()
        assert stats.recent_queue_wait_p95() is None
        now = time.monotonic()
        for i in range(20):
            stats.record(self._timing(i, 0.04), now)
        # queue_wait is latency/4 = 0.01 in _timing
        assert stats.recent_queue_wait_p95() == pytest.approx(0.01)
        # the window argument bounds how far back the signal looks
        stats.record(self._timing(99, 4.0), now)  # queue_wait = 1.0
        assert stats.recent_queue_wait_p95(last=1) == pytest.approx(1.0)

    def test_recent_queue_wait_p95_expires_stale_readings(self):
        """The pressure signal decays by wall clock: a turbulence spike
        must not latch admission rejection forever once traffic stops
        completing (rejected requests produce no fresh completions, so
        a count-only window would never refresh)."""
        stats = ServingStats()
        stale = time.monotonic() - 60.0
        for i in range(10):
            stats.record(self._timing(i, 4.0), stale)  # queue_wait = 1.0
        assert stats.recent_queue_wait_p95() is None  # expired
        assert stats.recent_queue_wait_p95(
            horizon_s=None
        ) == pytest.approx(1.0)  # raw count window still sees it
        stats.record(self._timing(99, 0.04), time.monotonic())
        assert stats.recent_queue_wait_p95() == pytest.approx(0.01)

    def test_timings_window_is_bounded(self):
        """A long-lived server keeps cumulative counters but only a
        sliding window of per-request timings — memory stays bounded
        and the truncation is visible in the snapshot."""
        stats = ServingStats(window=10)
        now = time.monotonic()
        for i in range(25):
            stats.record(self._timing(i, 0.01 * (i + 1)), now + i)
        snap = stats.snapshot()
        assert snap["completed"] == 25  # cumulative, not truncated
        assert snap["window"] == 10 and snap["window_filled"] == 10
        retained = [t.request_id for t in stats.timings()]
        assert retained == list(range(15, 25))  # most recent only
        # percentiles cover the window, not the evicted history
        assert snap["latency_s"]["p50"] == pytest.approx(0.205)
